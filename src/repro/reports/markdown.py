"""Markdown rendering (for EXPERIMENTS.md-style output)."""

from __future__ import annotations

from typing import Sequence

from repro.analysis.tables import ClassificationTable


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table.

    Raises:
        ValueError: if a row's width differs from the header's.
    """
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
    lines = [
        "| " + " | ".join(str(header) for header in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines.extend("| " + " | ".join(str(cell) for cell in row) + " |" for row in rows)
    return "\n".join(lines)


def markdown_classification_table(table: ClassificationTable) -> str:
    """Render a Table 1/2/3-style classification table in markdown."""
    rows: list[list[object]] = [[name, count] for name, count in table.rows()]
    rows.append(["**total**", f"**{table.total}**"])
    heading = f"**Classification of faults for {table.application.display_name}**"
    return heading + "\n\n" + markdown_table(["Class", "# Faults"], rows)
