"""Plain-text figure rendering: stacked horizontal bars for Figures 1-3."""

from __future__ import annotations

from repro.analysis.distributions import FigureSeries
from repro.bugdb.enums import FaultClass

#: One glyph per class, in stacking order.
_GLYPHS = {
    FaultClass.ENV_INDEPENDENT: "#",
    FaultClass.ENV_DEP_NONTRANSIENT: "o",
    FaultClass.ENV_DEP_TRANSIENT: "+",
}


def render_figure(series: FigureSeries, *, width: int = 40) -> str:
    """Render a stacked-bar chart of a fault distribution.

    Args:
        series: the distribution to draw.
        width: bar width (in characters) of the largest bucket.

    Returns:
        A multi-line string: title, legend, one bar per bucket with its
        total and environment-independent share.
    """
    if width < 1:
        raise ValueError("width must be positive")
    totals = series.totals()
    peak = max(totals) if totals else 0
    label_width = max((len(label) for label in series.labels), default=0)

    lines = [series.title]
    legend = "  ".join(
        f"{glyph} {fault_class.value}" for fault_class, glyph in _GLYPHS.items()
    )
    lines.append(f"legend: {legend}")
    for index, label in enumerate(series.labels):
        bar = ""
        for fault_class, glyph in _GLYPHS.items():
            count = series.counts[fault_class][index]
            cells = round(count / peak * width) if peak else 0
            # Every non-zero class gets at least one glyph.
            if count > 0 and cells == 0:
                cells = 1
            bar += glyph * cells
        total = totals[index]
        share = series.env_independent_fraction(index)
        lines.append(
            f"{label.rjust(label_width)} |{bar.ljust(width)}| "
            f"n={total:<3d} env-indep={share:.0%}"
        )
    return "\n".join(lines)
