"""CSV export of tables and figure series (for external plotting)."""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.analysis.distributions import FigureSeries
from repro.analysis.tables import ClassificationTable
from repro.bugdb.enums import FaultClass


def classification_table_csv(table: ClassificationTable) -> str:
    """Render a Table 1/2/3 as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["application", "class", "faults"])
    for name, count in table.rows():
        writer.writerow([table.application.value, name, count])
    return buffer.getvalue()


def figure_series_csv(series: FigureSeries) -> str:
    """Render a Figure 1-3 series as CSV text (one row per bucket)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["bucket"]
        + [fault_class.value for fault_class in FaultClass]
        + ["total", "env_independent_fraction"]
    )
    for index, label in enumerate(series.labels):
        writer.writerow(
            [label]
            + [series.counts[fault_class][index] for fault_class in FaultClass]
            + [series.total(index), f"{series.env_independent_fraction(index):.4f}"]
        )
    return buffer.getvalue()


def write_csv(text: str, path: str | Path) -> None:
    """Write CSV text to a file."""
    Path(path).write_text(text, encoding="utf-8")
