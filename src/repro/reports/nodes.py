"""Study-graph adapters for the top-level reports.

The full study report and the 139-fault catalog are leaf experiments:
they consume the curated corpora and (optionally, for ``--with-replay``)
run the recovery replay inline, exactly as the classic CLI commands do.
"""

from __future__ import annotations

from typing import Any, Mapping, TYPE_CHECKING

from repro.recovery import CheckpointRollback, ProcessPairs, RestartFresh, replay_study
from repro.reports.catalog import render_fault_catalog
from repro.reports.studyreport import (
    render_study_report,
    render_study_report_markdown,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.studygraph.context import StudyContext

#: The three techniques ``repro report --with-replay`` includes.
REPORT_REPLAY_FACTORIES = (ProcessPairs, CheckpointRollback, RestartFresh)


def report_text(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Experiment: the full study report.

    Params:
        format: ``text | markdown``.
        with_replay: include the recovery replay section.
    """
    replays = []
    if params["with_replay"]:
        for factory in REPORT_REPLAY_FACTORIES:
            replays.append(replay_study(ctx.study, factory))
    if params["format"] == "markdown":
        text = render_study_report_markdown(ctx.study, replay_reports=replays)
    else:
        text = render_study_report(ctx.study, replay_reports=replays)
    return {
        "format": params["format"],
        "with_replay": bool(params["with_replay"]),
        "text": text,
    }


def catalog_text(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Experiment: the 139-fault markdown catalog."""
    return {"text": render_fault_catalog(ctx.study)}
