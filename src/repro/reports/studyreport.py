"""Full study report generation.

Renders the complete reproduction -- Tables 1-3, Figures 1-3, the
Section 5.4 aggregate, the Lee & Iyer reconciliation, mitigation
coverage, and (optionally) the recovery replay -- as one text or
markdown document.  This is what the CLI's ``report`` command emits.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.aggregate import aggregate_summary
from repro.analysis.distributions import release_distribution, time_distribution
from repro.analysis.leeiyer import lee_iyer_reconciliation
from repro.analysis.mitigations import assess_study
from repro.analysis.related import related_work_comparison
from repro.analysis.stats import proportion_invariance_chi2, wilson_interval
from repro.analysis.tables import classification_table
from repro.bugdb.enums import Application, FaultClass
from repro.corpus.apache import RELEASES as APACHE_RELEASES
from repro.corpus.loader import StudyData
from repro.corpus.mysql import RELEASES as MYSQL_RELEASES
from repro.recovery.driver import ReplayReport
from repro.reports.figures import render_figure
from repro.reports.tableformat import format_table, render_classification_table

_SECTION_RULE = "=" * 72


def _figure_for(study: StudyData, application: Application):
    if application is Application.APACHE:
        order = tuple(version for version, _ in APACHE_RELEASES)
        return release_distribution(study.corpus(application), release_order=order)
    if application is Application.MYSQL:
        order = tuple(version for version, _ in MYSQL_RELEASES)
        return release_distribution(study.corpus(application), release_order=order)
    return time_distribution(study.corpus(application), granularity="month")


def render_study_report(
    study: StudyData,
    *,
    replay_reports: Sequence[ReplayReport] = (),
) -> str:
    """Render the full study as a plain-text report.

    Args:
        study: the curated study.
        replay_reports: optional per-technique replay results to include
            as the future-work section.
    """
    sections: list[str] = [
        "Whither Generic Recovery from Application Faults? -- reproduction report",
        _SECTION_RULE,
    ]

    # Tables 1-3.
    for application in Application:
        table = classification_table(study.corpus(application))
        sections.append(render_classification_table(table))
        sections.append("")

    # Figures 1-3, with the invariance statistic where releases apply.
    for application in Application:
        series = _figure_for(study, application)
        sections.append(render_figure(series))
        if application is not Application.GNOME:
            invariance = proportion_invariance_chi2(series)
            sections.append(
                f"class-proportion invariance: chi2={invariance.statistic:.2f}, "
                f"dof={invariance.degrees_of_freedom}, p={invariance.p_value:.3f} "
                f"({'invariant' if invariance.invariant_at_5pct else 'varies'})"
            )
        sections.append("")

    # Section 5.4 aggregate.
    summary = aggregate_summary(study)
    ei_low, ei_high = summary.fraction_range(FaultClass.ENV_INDEPENDENT)
    edt_low, edt_high = summary.fraction_range(FaultClass.ENV_DEP_TRANSIENT)
    ci_low, ci_high = wilson_interval(summary.counts[FaultClass.ENV_DEP_TRANSIENT],
                                      summary.total_faults)
    sections.append("Aggregate (Section 5.4)")
    sections.append(
        format_table(
            ["quantity", "value"],
            [
                ["total unique faults", summary.total_faults],
                [
                    "environment-dependent-nontransient",
                    f"{summary.counts[FaultClass.ENV_DEP_NONTRANSIENT]} "
                    f"({summary.fraction(FaultClass.ENV_DEP_NONTRANSIENT):.0%})",
                ],
                [
                    "environment-dependent-transient",
                    f"{summary.counts[FaultClass.ENV_DEP_TRANSIENT]} "
                    f"({summary.fraction(FaultClass.ENV_DEP_TRANSIENT):.0%})",
                ],
                ["environment-independent range", f"{ei_low:.0%}-{ei_high:.0%}"],
                ["transient range", f"{edt_low:.0%}-{edt_high:.0%}"],
                ["transient share 95% CI (Wilson)", f"{ci_low:.1%}-{ci_high:.1%}"],
            ],
        )
    )
    sections.append("")

    # Section 7: Lee & Iyer.
    reconciliation = lee_iyer_reconciliation()
    sections.append("Lee & Iyer reconciliation (Section 7)")
    sections.append(
        format_table(
            ["step", "recovery rate"],
            [[description, f"{rate:.2f}"] for description, rate in reconciliation.steps()],
        )
    )
    sections.append("")

    # Section 7: prior fault studies.
    comparison = related_work_comparison(summary)
    sections.append("Prior fault studies (Section 7)")
    sections.append(
        format_table(["study", "systems", "transient fraction"], comparison.rows())
    )
    sections.append(
        "consistency with prior studies: "
        + ("all roughly match" if comparison.all_consistent() else "MISMATCH")
    )
    sections.append("")

    # Section 6: mitigation coverage.
    coverage = assess_study(study)
    sections.append("Mitigation coverage (Section 6)")
    rows = sorted(
        coverage.counts_by_mitigation().items(),
        key=lambda item: item[1],
        reverse=True,
    )
    sections.append(
        format_table(
            ["technique", "faults covered"],
            [[kind.value, count] for kind, count in rows],
        )
    )
    sections.append(
        f"generic recovery (process pairs / rollback) coverage: "
        f"{coverage.generic_recovery_coverage():.0%} of {coverage.total} faults"
    )
    sections.append("")

    # Future work: the replay.
    if replay_reports:
        sections.append("Generic-recovery replay (Section 8 future work)")
        sections.append(
            format_table(
                ["technique", "EI", "EDN", "EDT", "overall"],
                [
                    [
                        report.technique,
                        f"{report.survival_rate(FaultClass.ENV_INDEPENDENT):.0%}",
                        f"{report.survival_rate(FaultClass.ENV_DEP_NONTRANSIENT):.0%}",
                        f"{report.survival_rate(FaultClass.ENV_DEP_TRANSIENT):.0%}",
                        f"{report.survival_rate():.1%}",
                    ]
                    for report in replay_reports
                ],
            )
        )
        sections.append("")

    sections.append(
        "Conclusion: only the environment-dependent-transient slice "
        f"({edt_low:.0%}-{edt_high:.0%} of faults) is survivable by "
        "application-generic recovery; surviving the rest requires "
        "application-specific knowledge."
    )
    return "\n".join(sections)


def render_study_report_markdown(
    study: StudyData,
    *,
    replay_reports: Sequence[ReplayReport] = (),
) -> str:
    """Render the full study as a markdown document.

    Covers the same content as :func:`render_study_report`, formatted
    for publishing: headings, markdown tables, and fenced figure blocks.
    """
    from repro.reports.markdown import markdown_classification_table, markdown_table

    parts: list[str] = [
        "# Whither Generic Recovery from Application Faults? — reproduction report",
        "",
    ]

    parts.append("## Tables 1–3")
    for application in Application:
        table = classification_table(study.corpus(application))
        parts.append("")
        parts.append(markdown_classification_table(table))
    parts.append("")

    parts.append("## Figures 1–3")
    for application in Application:
        series = _figure_for(study, application)
        parts.append("")
        parts.append("```")
        parts.append(render_figure(series))
        parts.append("```")
    parts.append("")

    summary = aggregate_summary(study)
    ei_low, ei_high = summary.fraction_range(FaultClass.ENV_INDEPENDENT)
    edt_low, edt_high = summary.fraction_range(FaultClass.ENV_DEP_TRANSIENT)
    parts.append("## Aggregate (Section 5.4)")
    parts.append("")
    parts.append(
        markdown_table(
            ["quantity", "value"],
            [
                ["total unique faults", summary.total_faults],
                [
                    "environment-dependent-nontransient",
                    f"{summary.counts[FaultClass.ENV_DEP_NONTRANSIENT]} "
                    f"({summary.fraction(FaultClass.ENV_DEP_NONTRANSIENT):.0%})",
                ],
                [
                    "environment-dependent-transient",
                    f"{summary.counts[FaultClass.ENV_DEP_TRANSIENT]} "
                    f"({summary.fraction(FaultClass.ENV_DEP_TRANSIENT):.0%})",
                ],
                ["environment-independent range", f"{ei_low:.0%}–{ei_high:.0%}"],
                ["transient range", f"{edt_low:.0%}–{edt_high:.0%}"],
            ],
        )
    )
    parts.append("")

    reconciliation = lee_iyer_reconciliation()
    parts.append("## Lee & Iyer reconciliation (Section 7)")
    parts.append("")
    parts.append(
        markdown_table(
            ["step", "recovery rate"],
            [[description, f"{rate:.2f}"] for description, rate in reconciliation.steps()],
        )
    )
    parts.append("")

    if replay_reports:
        parts.append("## Generic-recovery replay (Section 8 future work)")
        parts.append("")
        parts.append(
            markdown_table(
                ["technique", "EI", "EDN", "EDT", "overall"],
                [
                    [
                        report.technique,
                        f"{report.survival_rate(FaultClass.ENV_INDEPENDENT):.0%}",
                        f"{report.survival_rate(FaultClass.ENV_DEP_NONTRANSIENT):.0%}",
                        f"{report.survival_rate(FaultClass.ENV_DEP_TRANSIENT):.0%}",
                        f"{report.survival_rate():.1%}",
                    ]
                    for report in replay_reports
                ],
            )
        )
        parts.append("")

    parts.append(
        f"**Conclusion:** only the transient slice ({edt_low:.0%}–{edt_high:.0%}) "
        "is survivable by application-generic recovery."
    )
    return "\n".join(parts)
