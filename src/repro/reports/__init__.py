"""Rendering: the paper's tables and figures as text and markdown."""

from repro.reports.tableformat import format_table, render_classification_table
from repro.reports.figures import render_figure
from repro.reports.markdown import markdown_table, markdown_classification_table
from repro.reports.studyreport import render_study_report
from repro.reports.csvexport import (
    classification_table_csv,
    figure_series_csv,
    write_csv,
)

__all__ = [
    "classification_table_csv",
    "figure_series_csv",
    "format_table",
    "markdown_classification_table",
    "markdown_table",
    "render_classification_table",
    "render_figure",
    "render_study_report",
    "write_csv",
]
