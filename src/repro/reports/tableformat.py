"""Plain-text table rendering."""

from __future__ import annotations

from typing import Sequence

from repro.analysis.tables import ClassificationTable


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render an ASCII table with column alignment.

    Args:
        headers: column headers.
        rows: row cell values (stringified).
        title: optional title line above the table.

    Raises:
        ValueError: if a row's width differs from the header's.
    """
    string_rows = [[str(cell) for cell in row] for row in rows]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
    widths = [
        max(len(str(headers[column])), *(len(row[column]) for row in string_rows))
        if string_rows
        else len(str(headers[column]))
        for column in range(len(headers))
    ]
    separator = "-+-".join("-" * width for width in widths)

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt([str(header) for header in headers]))
    lines.append(separator)
    lines.extend(fmt(row) for row in string_rows)
    return "\n".join(lines)


def render_classification_table(table: ClassificationTable) -> str:
    """Render a Table 1/2/3-style classification table."""
    rows = [[name, count] for name, count in table.rows()]
    rows.append(["total", table.total])
    return format_table(
        ["Class", "# Faults"],
        rows,
        title=f"Classification of faults for {table.application.display_name}",
    )
