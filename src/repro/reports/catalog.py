"""Fault-catalog rendering: the 139 study faults as a browsable document.

The paper can only describe "several representative" environment-
independent faults in its page budget; the reproduction carries all 139
and can list them.  The catalog groups faults by application and class,
one line each, with the trigger and the workload operation the replay
uses.
"""

from __future__ import annotations

from repro.bugdb.enums import Application, FaultClass, TriggerKind
from repro.corpus.loader import StudyData

#: The environment-independent examples the paper itemises in Section 5
#: (the first five of each corpus, by construction).
PAPER_EXAMPLE_IDS = frozenset(
    f"{app}-EI-{index:02d}"
    for app in ("APACHE", "GNOME", "MYSQL")
    for index in range(1, 6)
)


def render_fault_catalog(study: StudyData) -> str:
    """Render the full study catalog as markdown."""
    lines = [
        "# Fault catalog",
        "",
        "All 139 study faults, grouped by application and class.  The",
        "environment-dependent faults are the paper's own itemised list",
        "(Section 5); environment-independent faults marked `(paper)` are",
        "the examples the paper describes, the rest are synthesized to the",
        "published per-release counts.",
    ]
    for application in Application:
        corpus = study.corpus(application)
        lines.append("")
        lines.append(f"## {application.display_name} ({corpus.total} faults)")
        for fault_class in FaultClass:
            faults = corpus.by_class(fault_class)
            if not faults:
                continue
            lines.append("")
            lines.append(f"### {fault_class.value} ({len(faults)})")
            lines.append("")
            for fault in faults:
                trigger = (
                    "" if fault.trigger is TriggerKind.NONE else f" — trigger: `{fault.trigger.value}`"
                )
                provenance = " (paper)" if fault.fault_id in PAPER_EXAMPLE_IDS else ""
                lines.append(
                    f"- **{fault.fault_id}**{provenance} ({fault.version}, {fault.component}): "
                    f"{fault.synopsis}{trigger} — replay op `{fault.workload_op}`"
                )
    lines.append("")
    return "\n".join(lines)
