"""MySQL mining: ~44,000 mailing-list messages -> 44 unique study bugs.

Section 4: "we use all the messages from the archives that matched one of
the following keywords: 'crash', 'segmentation', 'race', and 'died' ...
We then narrowed these messages to 44 unique bugs."

The miner keyword-filters messages, reconstructs threads, extracts one
candidate bug per *reporting* thread (a thread whose root message matched
the keywords -- threads where only a follow-up mentions a crash are
discussions, not reports), and reduces candidates to unique bugs.
"""

from __future__ import annotations

import re

from repro.bugdb.enums import Application, Resolution, Severity, Status, Symptom
from repro.bugdb.mbox import MailMessage
from repro.bugdb.textindex import TextIndex
from repro.bugdb.model import BugReport, Comment
from repro.mining.dedup import Deduplicator
from repro.mining.keywords import KeywordMatcher, MYSQL_STUDY_KEYWORDS
from repro.mining.pipeline import MiningResult, NarrowingTrace
from repro.mining.threads import Thread, group_threads

_VERSION_PATTERN = re.compile(r"mysql version:\s*([\w.]+)", re.IGNORECASE)
_COMPONENT_PATTERN = re.compile(r"component:\s*([\w-]+)", re.IGNORECASE)
_REPEAT_MARKER = "How-To-Repeat:"
_FIX_MARKER = re.compile(r"\bfixed\b", re.IGNORECASE)

_SYMPTOM_BY_STEM = {
    "crash": Symptom.CRASH,
    "segmentation": Symptom.CRASH,
    "died": Symptom.CRASH,
    "race": Symptom.CRASH,
}

#: The study matcher, hoisted to module level: mining constructs one per
#: reporting thread otherwise, and the archive holds tens of them.
_STUDY_MATCHER = KeywordMatcher(MYSQL_STUDY_KEYWORDS)


def message_search_text(message: MailMessage) -> str:
    """The text keyword filtering runs over: subject plus body."""
    return message.subject + "\n" + message.body


def build_message_index(messages: list[MailMessage]) -> TextIndex[int]:
    """Inverted index over an archive, keyed by message position.

    Positional ids (not message ids) keep the index mergeable across
    contiguous shards: a shard indexes its messages under their global
    archive positions and the merged index is identical to indexing the
    whole archive serially.
    """
    index: TextIndex[int] = TextIndex()
    for position, message in enumerate(messages):
        index.add(position, message_search_text(message))
    return index


def keyword_matching_messages(
    messages: list[MailMessage],
    matcher: KeywordMatcher,
    *,
    index: TextIndex[int] | None = None,
) -> list[MailMessage]:
    """Messages whose subject+body match ``matcher``, in archive order.

    With a positional ``index``, the inverted index narrows the archive
    to candidate positions first and only candidates are regex-confirmed
    -- the confirm step guarantees the hit set equals the linear scan's
    even where tokenization is looser than regex word boundaries (the
    index splits ``my_race`` into ``my``/``race``; ``\\b`` does not).
    """
    if index is None:
        return [
            message for message in messages
            if matcher.matches(message_search_text(message))
        ]
    candidates = index.search_any(matcher.keywords)
    return [
        message
        for position, message in enumerate(messages)
        if position in candidates and matcher.matches(message_search_text(message))
    ]


def report_from_thread(
    thread: Thread, *, matcher: KeywordMatcher = _STUDY_MATCHER
) -> BugReport:
    """Build a candidate bug report from a reporting thread."""
    root = thread.root
    body = root.body
    description, how_to_repeat = body, ""
    if _REPEAT_MARKER in body:
        description, _, how_to_repeat = body.partition(_REPEAT_MARKER)

    version_match = _VERSION_PATTERN.search(body)
    component_match = _COMPONENT_PATTERN.search(body)

    stems = matcher.matched_stems(root.subject + "\n" + body)
    symptom = next(
        (_SYMPTOM_BY_STEM[stem] for stem in MYSQL_STUDY_KEYWORDS if stem in stems),
        Symptom.CRASH,
    )

    comments = []
    fix_summary = ""
    for message in thread.messages:
        if message is root:
            continue
        comments.append(
            Comment(author=message.sender, date=message.date, text=message.body)
        )
        if not fix_summary and _FIX_MARKER.search(message.body):
            fix_summary = message.body

    return BugReport(
        report_id=root.message_id,
        application=Application.MYSQL,
        component=component_match.group(1) if component_match else "mysqld",
        version=version_match.group(1) if version_match else "unknown",
        date=root.date,
        reporter=root.sender,
        synopsis=root.normalized_subject,
        severity=Severity.CRITICAL,
        status=Status.CLOSED if fix_summary else Status.OPEN,
        resolution=Resolution.FIXED if fix_summary else Resolution.UNRESOLVED,
        symptom=symptom,
        description=description.strip("\n"),
        how_to_repeat=how_to_repeat.strip("\n"),
        comments=comments,
        fix_summary=fix_summary,
    )


def mine_mysql(
    messages: list[MailMessage],
    *,
    keywords: tuple[str, ...] = MYSQL_STUDY_KEYWORDS,
    deduplicator: Deduplicator | None = None,
    index: TextIndex[int] | None = None,
    use_index: bool = True,
) -> MiningResult[BugReport]:
    """Narrow a raw mailing-list archive to the unique study bugs.

    The keyword stage is index-backed by default: an inverted
    :class:`~repro.bugdb.textindex.TextIndex` prefilters the archive to
    candidate messages, and only candidates are confirmed against the
    compiled matcher, so the hit set is identical to a linear scan (the
    linear path is kept as the verification oracle in the tests).

    Args:
        messages: the parsed mbox archive.
        keywords: keyword stems to filter messages with (ablatable).
        deduplicator: duplicate-reduction strategy.
        index: prebuilt positional index over ``messages`` (as built by
            :func:`build_message_index`, possibly merged from parallel
            shards); built here when omitted.
        use_index: set False to force the linear reference scan.
    """
    dedup = deduplicator or Deduplicator()
    matcher = KeywordMatcher(keywords)
    trace = NarrowingTrace()
    trace.record("raw messages", len(messages))

    if index is None and use_index:
        index = build_message_index(messages)
    matching = keyword_matching_messages(
        messages, matcher, index=index if use_index else None
    )
    trace.record("keyword-matching messages", len(matching))

    # Threads are rebuilt over the *full* archive so replies that matched
    # a keyword still attach to their (non-matching) root.
    threads = group_threads(messages)
    trace.record("threads", len(threads))

    matching_ids = {message.message_id for message in matching}
    reporting_threads = [
        thread for thread in threads if thread.root.message_id in matching_ids
    ]
    trace.record("reporting threads (root matches keywords)", len(reporting_threads))

    candidates = [report_from_thread(thread) for thread in reporting_threads]
    unique = dedup.unique(candidates)
    trace.record("unique bugs", len(unique))

    # Keep stable, archive-independent ordering: by date then synopsis.
    unique.sort(key=lambda report: (report.date, report.synopsis))
    return MiningResult(items=unique, trace=trace)
