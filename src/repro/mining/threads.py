"""Mailing-list thread reconstruction.

Messages are grouped into threads by following ``In-Reply-To`` chains,
falling back to normalized-subject equality for mailers that drop the
header (common in 1999-era archives).  The thread root is the earliest
message that is not a reply.
"""

from __future__ import annotations

import dataclasses

from repro.bugdb.mbox import MailMessage


@dataclasses.dataclass(frozen=True)
class Thread:
    """One reconstructed discussion thread.

    Attributes:
        messages: all messages in the thread, sorted by (date, id).
    """

    messages: tuple[MailMessage, ...]

    @property
    def root(self) -> MailMessage:
        """The thread's root: the earliest non-reply, else the earliest message."""
        for message in self.messages:
            if not message.is_reply:
                return message
        return self.messages[0]

    @property
    def subject(self) -> str:
        """The normalized root subject."""
        return self.root.normalized_subject

    @property
    def size(self) -> int:
        """Number of messages in the thread."""
        return len(self.messages)

    @property
    def full_text(self) -> str:
        """All message bodies and the subject, for keyword search."""
        parts = [self.subject]
        parts.extend(message.body for message in self.messages)
        return "\n".join(parts)


def group_threads(messages: list[MailMessage]) -> list[Thread]:
    """Group messages into threads.

    Uses union-find over two relations: reply edges (``in_reply_to``) and
    normalized-subject equality.  Returns threads ordered by their root
    date.
    """
    parent: dict[str, str] = {}

    def find(node: str) -> str:
        root = node
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def union(left: str, right: str) -> None:
        left_root, right_root = find(left), find(right)
        if left_root != right_root:
            parent[right_root] = left_root

    by_id = {message.message_id: message for message in messages}
    subject_anchor: dict[str, str] = {}
    for message in messages:
        find(message.message_id)
        if message.in_reply_to and message.in_reply_to in by_id:
            union(message.in_reply_to, message.message_id)
        subject_key = message.normalized_subject.lower()
        if subject_key:
            anchor = subject_anchor.setdefault(subject_key, message.message_id)
            union(anchor, message.message_id)

    clusters: dict[str, list[MailMessage]] = {}
    for message in messages:
        clusters.setdefault(find(message.message_id), []).append(message)

    threads = [
        Thread(messages=tuple(sorted(cluster, key=lambda m: (m.date, m.message_id))))
        for cluster in clusters.values()
    ]
    threads.sort(key=lambda thread: (thread.root.date, thread.root.message_id))
    return threads
