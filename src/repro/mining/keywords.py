"""Keyword matching for mailing-list mining.

The paper (Section 4): "we use all the messages from the archives that
matched one of the following keywords: 'crash', 'segmentation', 'race',
and 'died' (we looked at a few hundred messages and found that these
keywords were the ones commonly used to describe serious bugs)".

Matching is case-insensitive on word boundaries with suffix stemming
("crash" also matches "crashes", "crashed"), but never inside another
word -- "trace" must not match "race".
"""

from __future__ import annotations

import functools
import re
from typing import Iterable

#: The paper's MySQL study keywords.
MYSQL_STUDY_KEYWORDS: tuple[str, ...] = ("crash", "segmentation", "race", "died")


@functools.lru_cache(maxsize=128)
def _compile_keywords(keywords: tuple[str, ...]) -> re.Pattern[str]:
    """Compile the word-boundary pattern for ``keywords`` once per set.

    Matchers are constructed freely at call sites (one per mined thread,
    one per archive); caching by keyword tuple makes repeat construction
    a dict lookup instead of a regex compilation.
    """
    alternatives = "|".join(re.escape(keyword) + r"\w*" for keyword in keywords)
    return re.compile(rf"\b(?:{alternatives})\b", re.IGNORECASE)


class KeywordMatcher:
    """Compiled word-boundary keyword matcher.

    Args:
        keywords: keyword stems; each matches itself plus any suffix of
            word characters (``crash`` -> ``crashes``), anchored at a word
            boundary on the left.
    """

    def __init__(self, keywords: Iterable[str]):
        self.keywords = tuple(keywords)
        if not self.keywords:
            raise ValueError("at least one keyword is required")
        self._pattern = _compile_keywords(self.keywords)
        self._lowered_stems = tuple((stem, stem.lower()) for stem in self.keywords)

    def matches(self, text: str) -> bool:
        """Whether any keyword occurs in ``text``."""
        return self._pattern.search(text) is not None

    def find_all(self, text: str) -> list[str]:
        """All (lowercased) keyword occurrences, in order."""
        return [match.lower() for match in self._pattern.findall(text)]

    def matched_stems(self, text: str) -> set[str]:
        """Which keyword stems matched ``text`` at least once.

        Single streaming pass: each occurrence credits every stem that
        prefixes it (overlapping stems such as ``crash``/``crashes`` can
        share one hit), and the scan stops as soon as every stem has been
        seen -- no per-call hit-list materialisation.
        """
        stems: set[str] = set()
        total = len({stem for stem, _ in self._lowered_stems})
        for match in self._pattern.finditer(text):
            hit = match.group().lower()
            for stem, lowered in self._lowered_stems:
                if stem not in stems and hit.startswith(lowered):
                    stems.add(stem)
            if len(stems) == total:
                break
        return stems
