"""Keyword matching for mailing-list mining.

The paper (Section 4): "we use all the messages from the archives that
matched one of the following keywords: 'crash', 'segmentation', 'race',
and 'died' (we looked at a few hundred messages and found that these
keywords were the ones commonly used to describe serious bugs)".

Matching is case-insensitive on word boundaries with suffix stemming
("crash" also matches "crashes", "crashed"), but never inside another
word -- "trace" must not match "race".
"""

from __future__ import annotations

import re
from typing import Iterable

#: The paper's MySQL study keywords.
MYSQL_STUDY_KEYWORDS: tuple[str, ...] = ("crash", "segmentation", "race", "died")


class KeywordMatcher:
    """Compiled word-boundary keyword matcher.

    Args:
        keywords: keyword stems; each matches itself plus any suffix of
            word characters (``crash`` -> ``crashes``), anchored at a word
            boundary on the left.
    """

    def __init__(self, keywords: Iterable[str]):
        self.keywords = tuple(keywords)
        if not self.keywords:
            raise ValueError("at least one keyword is required")
        alternatives = "|".join(re.escape(keyword) + r"\w*" for keyword in self.keywords)
        self._pattern = re.compile(rf"\b(?:{alternatives})\b", re.IGNORECASE)

    def matches(self, text: str) -> bool:
        """Whether any keyword occurs in ``text``."""
        return self._pattern.search(text) is not None

    def find_all(self, text: str) -> list[str]:
        """All (lowercased) keyword occurrences, in order."""
        return [match.lower() for match in self._pattern.findall(text)]

    def matched_stems(self, text: str) -> set[str]:
        """Which keyword stems matched ``text`` at least once."""
        stems: set[str] = set()
        lowered_hits = self.find_all(text)
        for stem in self.keywords:
            if any(hit.startswith(stem.lower()) for hit in lowered_hits):
                stems.add(stem)
        return stems
