"""Duplicate-report reduction ("narrowed to N *unique* bugs").

Two stages, both ablatable:

1. **Exact keying** -- reports whose normalized synopses are identical
   are the same bug.
2. **Fuzzy merging** -- remaining reports whose content-token Jaccard
   similarity exceeds a threshold merge into the earlier report
   (re-reports reword the synopsis but reuse its content words).

The earliest report of each group becomes the *primary*; classification
runs on primaries, matching the paper's per-unique-bug analysis.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.bugdb.dedup_keys import content_tokens, jaccard_similarity, normalize_synopsis
from repro.bugdb.model import BugReport


@dataclasses.dataclass(frozen=True)
class DedupGroup:
    """One group of reports judged to be the same underlying bug."""

    primary: BugReport
    duplicates: tuple[BugReport, ...]

    @property
    def size(self) -> int:
        """Total reports in the group, primary included."""
        return 1 + len(self.duplicates)


@dataclasses.dataclass(frozen=True)
class DedupResult:
    """The outcome of duplicate reduction."""

    groups: tuple[DedupGroup, ...]

    @property
    def primaries(self) -> list[BugReport]:
        """One report per unique bug."""
        return [group.primary for group in self.groups]

    @property
    def duplicate_count(self) -> int:
        """Reports merged away as duplicates."""
        return sum(len(group.duplicates) for group in self.groups)


class Deduplicator:
    """Configurable duplicate reduction.

    Args:
        use_fuzzy: enable the Jaccard fuzzy-merge stage (stage 2).
        fuzzy_threshold: minimum similarity for a fuzzy merge.
        key_fn: exact-key function over a report (defaults to the
            normalized synopsis).
    """

    def __init__(
        self,
        *,
        use_fuzzy: bool = True,
        fuzzy_threshold: float = 0.6,
        key_fn: Callable[[BugReport], str] | None = None,
    ):
        if not 0.0 < fuzzy_threshold <= 1.0:
            raise ValueError("fuzzy_threshold must be in (0, 1]")
        self.use_fuzzy = use_fuzzy
        self.fuzzy_threshold = fuzzy_threshold
        self._key_fn = key_fn or (lambda report: normalize_synopsis(report.synopsis))

    def dedup(self, reports: list[BugReport]) -> DedupResult:
        """Reduce ``reports`` to unique bugs."""
        # Stage 1: exact keys.  Insertion order of groups follows first
        # appearance; within a group the earliest-dated report is primary.
        by_key: dict[str, list[BugReport]] = {}
        for report in reports:
            by_key.setdefault(self._key_fn(report), []).append(report)

        clusters: list[list[BugReport]] = [
            sorted(group, key=lambda r: (r.date, r.report_id)) for group in by_key.values()
        ]

        # Stage 2: fuzzy merging of cluster primaries.  Greedy: each
        # cluster merges into the first earlier cluster whose primary is
        # similar enough.
        if self.use_fuzzy:
            clusters.sort(key=lambda group: (group[0].date, group[0].report_id))
            merged: list[list[BugReport]] = []
            merged_tokens: list[frozenset[str]] = []
            for cluster in clusters:
                tokens = content_tokens(cluster[0].synopsis)
                target = None
                for index, existing_tokens in enumerate(merged_tokens):
                    if jaccard_similarity(tokens, existing_tokens) >= self.fuzzy_threshold:
                        target = index
                        break
                if target is None:
                    merged.append(cluster)
                    merged_tokens.append(tokens)
                else:
                    merged[target].extend(cluster)
            clusters = merged

        groups = tuple(
            DedupGroup(
                primary=min(cluster, key=lambda r: (r.date, r.report_id)),
                duplicates=tuple(
                    report
                    for report in cluster
                    if report is not min(cluster, key=lambda r: (r.date, r.report_id))
                ),
            )
            for cluster in clusters
        )
        return DedupResult(groups=groups)

    def unique(self, reports: list[BugReport]) -> list[BugReport]:
        """Just the unique primaries (convenience for pipelines)."""
        return self.dedup(reports).primaries
