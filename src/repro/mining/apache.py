"""Apache mining: 5220 GNATS problem reports -> 50 unique study bugs.

Section 4: "Of all the bugs reported, we consider bugs on production
versions of the software that were categorized as severe or critical ...
we narrow these to 50 unique bug reports meeting these criteria."
"""

from __future__ import annotations

from repro.bugdb.enums import Severity
from repro.bugdb.model import BugReport
from repro.mining.dedup import Deduplicator
from repro.mining.pipeline import MiningResult, Narrower


def mine_apache(
    reports: list[BugReport],
    *,
    min_severity: Severity = Severity.SERIOUS,
    deduplicator: Deduplicator | None = None,
) -> MiningResult[BugReport]:
    """Narrow a raw Apache archive to the unique study bugs.

    Stages: production versions only; severity at least serious
    ("severe or critical"); high-impact symptoms only (crash, hang,
    error return, security, leak, corruption); drop triager-marked
    duplicates; reduce the rest to unique bugs.
    """
    dedup = deduplicator or Deduplicator()
    narrower = Narrower(reports, initial_stage="raw reports")
    narrower.keep("production versions", lambda r: r.is_production_version)
    narrower.keep(f"severity>={min_severity.name.lower()}", lambda r: r.severity >= min_severity)
    narrower.keep("high-impact symptom", lambda r: r.is_high_impact)
    narrower.keep("not marked duplicate", lambda r: not r.is_duplicate)
    narrower.transform("unique bugs", dedup.unique)
    return narrower.result()
