"""Mining pipeline plumbing: narrowing traces and results.

A miner is a sequence of narrowing stages; the trace records the
candidate count after each stage so "5220 reports ... narrowed to 50
unique bug reports" becomes inspectable data.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Generic, Sequence, TypeVar

T = TypeVar("T")


@dataclasses.dataclass(frozen=True)
class NarrowingStage:
    """One stage of a narrowing trace.

    Attributes:
        name: short stage name (e.g. ``"severity>=serious"``).
        survivors: number of candidates remaining after the stage.
    """

    name: str
    survivors: int


@dataclasses.dataclass
class NarrowingTrace:
    """Candidate counts through a mining pipeline."""

    stages: list[NarrowingStage] = dataclasses.field(default_factory=list)

    def record(self, name: str, survivors: int) -> None:
        """Append a stage to the trace."""
        self.stages.append(NarrowingStage(name=name, survivors=survivors))

    @property
    def initial(self) -> int:
        """Candidate count before any narrowing (first recorded stage)."""
        return self.stages[0].survivors if self.stages else 0

    @property
    def final(self) -> int:
        """Candidate count after all narrowing."""
        return self.stages[-1].survivors if self.stages else 0

    def as_rows(self) -> list[tuple[str, int]]:
        """(stage name, survivors) rows for reporting."""
        return [(stage.name, stage.survivors) for stage in self.stages]


@dataclasses.dataclass
class MiningResult(Generic[T]):
    """The outcome of mining one application's archive.

    Attributes:
        items: the unique study candidates that survived narrowing.
        trace: per-stage survivor counts.
    """

    items: list[T]
    trace: NarrowingTrace


class Narrower(Generic[T]):
    """Applies named narrowing stages to a candidate list, keeping a trace."""

    def __init__(self, candidates: Sequence[T], *, initial_stage: str = "raw"):
        self._items: list[T] = list(candidates)
        self.trace = NarrowingTrace()
        self.trace.record(initial_stage, len(self._items))

    @property
    def items(self) -> list[T]:
        """Current surviving candidates."""
        return self._items

    def keep(self, name: str, predicate: Callable[[T], bool]) -> "Narrower[T]":
        """Keep only candidates satisfying ``predicate``."""
        self._items = [item for item in self._items if predicate(item)]
        self.trace.record(name, len(self._items))
        return self

    def transform(self, name: str, fn: Callable[[list[T]], list[T]]) -> "Narrower[T]":
        """Replace the candidate list wholesale (e.g. deduplication)."""
        self._items = fn(self._items)
        self.trace.record(name, len(self._items))
        return self

    def result(self) -> MiningResult[T]:
        """Finish, returning items plus the trace."""
        return MiningResult(items=self._items, trace=self.trace)
