"""Narrowing-funnel statistics over mining traces.

The paper's Section 4 is a funnel: thousands of raw reports in, tens of
unique study bugs out.  This module quantifies the funnel — per-stage
reduction rates, overall selectivity, and a capture-recapture estimate
of the true duplicate rate from the dedup stage — so mining behaviour
can be compared across archives and ablations.
"""

from __future__ import annotations

import dataclasses

from repro.mining.dedup import DedupResult
from repro.mining.pipeline import NarrowingTrace


@dataclasses.dataclass(frozen=True)
class StageReduction:
    """One stage's effect on the candidate population.

    Attributes:
        name: the stage name.
        before: candidates entering the stage.
        after: candidates surviving it.
    """

    name: str
    before: int
    after: int

    @property
    def kept_fraction(self) -> float:
        """Fraction of candidates surviving (1.0 for an empty stage)."""
        if self.before == 0:
            return 1.0
        return self.after / self.before

    @property
    def removed(self) -> int:
        """Candidates eliminated by the stage."""
        return self.before - self.after


@dataclasses.dataclass(frozen=True)
class FunnelSummary:
    """The whole funnel, stage by stage."""

    stages: tuple[StageReduction, ...]

    @property
    def overall_selectivity(self) -> float:
        """Final survivors as a fraction of the raw input."""
        if not self.stages or self.stages[0].before == 0:
            return 1.0
        return self.stages[-1].after / self.stages[0].before

    def most_selective_stage(self) -> StageReduction:
        """The stage that removed the largest fraction of its input.

        Raises:
            ValueError: for an empty funnel.
        """
        if not self.stages:
            raise ValueError("empty funnel")
        return min(self.stages, key=lambda stage: stage.kept_fraction)

    def rows(self) -> list[tuple[str, int, int, str]]:
        """(stage, before, after, kept%) rows for reporting."""
        return [
            (stage.name, stage.before, stage.after, f"{stage.kept_fraction:.1%}")
            for stage in self.stages
        ]


def funnel_from_trace(trace: NarrowingTrace) -> FunnelSummary:
    """Build a funnel summary from a mining trace."""
    rows = trace.as_rows()
    stages = tuple(
        StageReduction(name=rows[index][0], before=rows[index - 1][1], after=rows[index][1])
        for index in range(1, len(rows))
    )
    return FunnelSummary(stages=stages)


def duplicate_rate(result: DedupResult) -> float:
    """Observed duplicate fraction among the deduplicated reports.

    The paper narrows to "unique bugs"; this is the fraction of incoming
    reports that were re-reports of another bug (0.0 when no reports).
    """
    total = sum(group.size for group in result.groups)
    if total == 0:
        return 0.0
    return result.duplicate_count / total


def mean_reports_per_bug(result: DedupResult) -> float:
    """Average archive reports per unique bug (>= 1.0; 0.0 when empty)."""
    if not result.groups:
        return 0.0
    total = sum(group.size for group in result.groups)
    return total / len(result.groups)
