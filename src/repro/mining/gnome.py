"""GNOME mining: ~500 debbugs reports -> 45 unique study bugs.

Section 4: "We look at faults in the core files and libraries and four
commonly used GNOME applications: panel ..., gnome-pim ..., gnumeric ...,
and gmc ... We looked at about 500 bug reports and narrowed them to 45
unique bugs meeting our criteria."
"""

from __future__ import annotations

from repro.bugdb.enums import Severity
from repro.bugdb.model import BugReport
from repro.mining.dedup import Deduplicator
from repro.mining.pipeline import MiningResult, Narrower

#: Core files and libraries plus the four studied applications.
GNOME_STUDY_COMPONENTS: tuple[str, ...] = (
    "gnome-core",
    "gnome-libs",
    "panel",
    "gnome-pim",
    "gnumeric",
    "gmc",
)


def mine_gnome(
    reports: list[BugReport],
    *,
    components: tuple[str, ...] = GNOME_STUDY_COMPONENTS,
    min_severity: Severity = Severity.SERIOUS,
    deduplicator: Deduplicator | None = None,
) -> MiningResult[BugReport]:
    """Narrow a raw GNOME archive to the unique study bugs.

    Stages: studied components only; severity at least serious;
    high-impact symptoms only; drop triager-marked duplicates; reduce to
    unique bugs.
    """
    dedup = deduplicator or Deduplicator()
    component_set = set(components)
    narrower = Narrower(reports, initial_stage="raw reports")
    narrower.keep("studied components", lambda r: r.component in component_set)
    narrower.keep(f"severity>={min_severity.name.lower()}", lambda r: r.severity >= min_severity)
    narrower.keep("high-impact symptom", lambda r: r.is_high_impact)
    narrower.keep("not marked duplicate", lambda r: not r.is_duplicate)
    narrower.transform("unique bugs", dedup.unique)
    return narrower.result()
