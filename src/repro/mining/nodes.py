"""Study-graph adapters for the mining layer (M1 and its artifacts).

Three artifact stages per application, mirroring the paper's Section 4
methodology as explicit graph edges::

    corpus.<app>  ->  parsed.<app>  ->  mined.<app>  ->  mine.<app> (text)
                                               \\->  funnel.<app> (text)

plus the Section 6 mining ablations (keyword subsets over the parsed
MySQL archive, dedup strategies over the parsed Apache archive).  All
payloads use the :mod:`repro.pipeline` record codecs, so graph entries
and the fast-archive-path cache speak the same JSON.
"""

from __future__ import annotations

from typing import Any, Mapping, TYPE_CHECKING

from repro.analysis.tables import classify_and_tabulate
from repro.bugdb.enums import Application
from repro.mining.apache import mine_apache
from repro.mining.dedup import Deduplicator
from repro.mining.funnel import funnel_from_trace
from repro.mining.mysql import mine_mysql
from repro.pipeline import records as _records
from repro.pipeline.formats import format_for
from repro.reports.tableformat import format_table, render_classification_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.studygraph.context import StudyContext

#: Section 6 dedup-strategy ablation points (label -> deduplicator args).
DEDUP_STRATEGIES: tuple[tuple[str, bool, float], ...] = (
    ("exact-only", False, 0.6),
    ("exact+fuzzy-0.6", True, 0.6),
    ("exact+fuzzy-0.9", True, 0.9),
)


def _single_input(inputs: Mapping[str, Any]) -> dict[str, Any]:
    """The payload of a node's only dependency."""
    (payload,) = inputs.values()
    return payload


def parsed_archive(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Artifact: one application's raw archive, rendered and parsed.

    Uses the serial reference parse (`ArchiveFormat.parse`), which the
    sharded fast path is asserted bit-identical to, so graph outputs
    match the per-command paths by construction.

    Params:
        application: ``apache | gnome | mysql``.
        scale: raw archive size (None = the paper's full scale).
    """
    application = Application(params["application"])
    fmt = format_for(application)
    corpus = ctx.study.corpus(application)
    text = fmt.render(corpus, params.get("scale"))
    records = fmt.parse(text)
    return {
        "application": application.value,
        "scale": params.get("scale"),
        "parser_version": fmt.parser_version,
        "record_count": len(records),
        "records": [fmt.record_to_dict(record) for record in records],
    }


def _decode_records(application: Application, parsed: Mapping[str, Any]) -> list[Any]:
    fmt = format_for(application)
    return [fmt.record_from_dict(data) for data in parsed["records"]]


def mined_result(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Artifact: the mined study set (items plus narrowing trace).

    Params:
        application: ``apache | gnome | mysql``.
    """
    application = Application(params["application"])
    fmt = format_for(application)
    records = _decode_records(application, _single_input(inputs))
    result = fmt.mine(records, None)
    payload = _records.result_to_payload(result, fmt.item_to_dict)
    payload["application"] = application.value
    payload["miner_version"] = fmt.miner_version
    return payload


def mine_report_text(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Experiment text: the ``repro mine <app>`` narrowing report.

    Renders the narrowing-trace table followed by the classification
    table of the mined, classified bugs -- exactly the per-command
    output.
    """
    application = Application(params["application"])
    fmt = format_for(application)
    mined = _single_input(inputs)
    result = _records.result_from_payload(mined, fmt.item_from_dict)
    trace_table = format_table(
        ["stage", "survivors"],
        result.trace.as_rows(),
        title=f"Mining narrowing for {application.display_name}",
    )
    class_table = render_classification_table(
        classify_and_tabulate(application, result.items)
    )
    return {
        "application": application.value,
        "unique_bugs": len(result.items),
        "text": f"{trace_table}\n\n{class_table}",
    }


def m1_narrowing(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Experiment M1: the Section 4 narrowing across all three archives."""
    sections = []
    unique = {}
    for name in ("mine.apache", "mine.gnome", "mine.mysql"):
        payload = inputs[name]
        sections.append(payload["text"])
        unique[payload["application"]] = payload["unique_bugs"]
    return {
        "unique_bugs": unique,
        "text": "\n\n".join(sections),
    }


def funnel_text(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Experiment text: the ``repro funnel <app>`` selectivity report."""
    application = Application(params["application"])
    mined = _single_input(inputs)
    funnel = funnel_from_trace(_records.trace_from_rows(mined["trace"]))
    table = format_table(
        ["stage", "before", "after", "kept"],
        funnel.rows(),
        title=f"Narrowing funnel for {application.display_name}",
    )
    lines = [
        table,
        f"overall selectivity: {funnel.overall_selectivity:.2%}",
        f"most selective stage: {funnel.most_selective_stage().name}",
    ]
    return {
        "application": application.value,
        "overall_selectivity": funnel.overall_selectivity,
        "text": "\n".join(lines),
    }


def ablate_keywords(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Section 6 ablation: one MySQL keyword subset's recall.

    Params:
        keywords: comma-joined keyword subset (order preserved).
    """
    keywords = tuple(params["keywords"].split(","))
    messages = _decode_records(
        Application.MYSQL, _single_input(inputs)
    )
    result = mine_mysql(messages, keywords=keywords)
    recall = len(result.items) / 44
    text = format_table(
        ["quantity", "value"],
        [
            ["keywords", " ".join(keywords)],
            ["unique bugs found", len(result.items)],
            ["recall vs paper's 44", f"{recall:.1%}"],
        ],
        title="Keyword-set ablation (Section 4 mining)",
    )
    return {
        "keywords": list(keywords),
        "unique_bugs": len(result.items),
        "recall": recall,
        "text": text,
    }


def ablate_dedup(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Section 6 ablation: dedup strategies over the Apache archive."""
    reports = _decode_records(Application.APACHE, _single_input(inputs))
    rows = []
    counts = {}
    for label, use_fuzzy, threshold in DEDUP_STRATEGIES:
        dedup = Deduplicator(use_fuzzy=use_fuzzy, fuzzy_threshold=threshold)
        result = mine_apache(reports, deduplicator=dedup)
        counts[label] = len(result.items)
        rows.append([label, len(result.items)])
    text = format_table(
        ["strategy", "unique bugs"],
        rows,
        title="Dedup-strategy ablation (paper: 50 unique Apache bugs)",
    )
    return {"unique_bugs": counts, "text": text}
