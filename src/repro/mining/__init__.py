"""Bug-report mining: the paper's Section 4 methodology, mechanised.

Each application has a miner that narrows its raw archive to the study
set exactly the way the paper describes:

* **Apache** (:mod:`repro.mining.apache`): of 5220 problem reports, keep
  bugs on production versions categorised severe or critical, then reduce
  to unique bugs (50).
* **GNOME** (:mod:`repro.mining.gnome`): of ~500 reports, keep
  high-impact reports against the core files and libraries and the four
  studied applications, then reduce to unique bugs (45).
* **MySQL** (:mod:`repro.mining.mysql`): of ~44,000 mailing-list
  messages, keep messages matching the keywords "crash", "segmentation",
  "race", "died"; group into threads; extract one candidate bug per
  reporting thread; reduce to unique bugs (44).

Every miner returns a :class:`~repro.mining.pipeline.MiningResult` whose
:class:`~repro.mining.pipeline.NarrowingTrace` records how many candidates
survived each stage -- the paper's "we narrowed these to N" sentences, as
data.
"""

from repro.mining.pipeline import MiningResult, NarrowingTrace
from repro.mining.dedup import Deduplicator, DedupResult
from repro.mining.funnel import (
    FunnelSummary,
    duplicate_rate,
    funnel_from_trace,
    mean_reports_per_bug,
)
from repro.mining.keywords import KeywordMatcher, MYSQL_STUDY_KEYWORDS
from repro.mining.threads import Thread, group_threads
from repro.mining.apache import mine_apache
from repro.mining.gnome import mine_gnome, GNOME_STUDY_COMPONENTS
from repro.mining.mysql import mine_mysql

__all__ = [
    "Deduplicator",
    "DedupResult",
    "FunnelSummary",
    "duplicate_rate",
    "funnel_from_trace",
    "mean_reports_per_bug",
    "GNOME_STUDY_COMPONENTS",
    "KeywordMatcher",
    "MYSQL_STUDY_KEYWORDS",
    "MiningResult",
    "NarrowingTrace",
    "Thread",
    "group_threads",
    "mine_apache",
    "mine_gnome",
    "mine_mysql",
]
