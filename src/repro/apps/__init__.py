"""Miniature fault-injectable applications.

The paper's future work (Section 8): "we hope to implement applications
like Apache and MySQL using various fault-tolerant techniques and test
how well they recover from the bugs reported in error logs."  This
package does that for the reproduction: three small applications with the
same *environmental dependence structure* as the studied ones -- a
forking HTTP server, a SQL database, and a desktop session -- plus a
fault-injection layer that maps every curated study fault onto a defect
triggered by the same workload/environment condition the bug report
describes.
"""

from repro.apps.base import AppCheckpoint, MiniApplication
from repro.apps.faults import FaultInjector, InjectedDefect
from repro.apps.httpserver import MiniHttpServer
from repro.apps.sqldb import MiniSqlDatabase
from repro.apps.desktop import MiniDesktop
from repro.apps.registry import make_application
from repro.apps.workload import Workload, workload_for_fault

__all__ = [
    "AppCheckpoint",
    "FaultInjector",
    "InjectedDefect",
    "MiniApplication",
    "MiniDesktop",
    "MiniHttpServer",
    "MiniSqlDatabase",
    "Workload",
    "make_application",
    "workload_for_fault",
]
