"""MiniDesktop: a GNOME-shaped desktop session.

Implements the slice of desktop behaviour the GNOME study faults depend
on: a panel with applets, windows opened against a display authenticated
with the boot-time hostname, sound events holding descriptors, and file
property editing over external (on-disk) metadata.
"""

from __future__ import annotations

from repro.apps.base import MiniApplication
from repro.envmodel.environment import Environment
from repro.errors import ApplicationCrash, SimulationError


class MiniDesktop(MiniApplication):
    """A small desktop session over the simulated environment."""

    def __init__(self, env: Environment):
        super().__init__(env, name="mini-desktop")

    def _init_state(self) -> None:
        self.state.setdefault("applets", [])
        self.state.setdefault("windows", [])
        self.state.setdefault("events_handled", 0)

    # ------------------------------------------------------------------ #
    # panel
    # ------------------------------------------------------------------ #

    def add_applet(self, name: str) -> None:
        """Add an applet to the panel."""
        if name in self.state["applets"]:
            raise SimulationError(f"applet already present: {name}")
        self.state["applets"].append(name)

    def remove_applet(self, name: str) -> None:
        """Remove an applet from the panel."""
        try:
            self.state["applets"].remove(name)
        except ValueError:
            raise SimulationError(f"no such applet: {name}") from None

    def dispatch_event(self, applet: str) -> None:
        """Deliver an action event to an applet.

        Raises:
            SimulationError: if the applet is gone (the removal race's
                failure surface, when not injected as a defect).
        """
        if applet not in self.state["applets"]:
            raise SimulationError(f"event for destroyed applet: {applet}")
        self.state["events_handled"] += 1

    # ------------------------------------------------------------------ #
    # windows / display
    # ------------------------------------------------------------------ #

    def open_window(self, title: str) -> None:
        """Open a window against the display.

        The display connection was authenticated with the boot-time
        hostname; a renamed machine makes new connections fail.

        Raises:
            ApplicationCrash: when the hostname changed since boot.
        """
        if self.env.hostname != self.boot_hostname:
            raise ApplicationCrash("display-auth-failure", symptom="crash")
        self.open_descriptor()
        self.state["windows"].append(title)

    def close_window(self, title: str) -> None:
        """Close a window."""
        try:
            self.state["windows"].remove(title)
        except ValueError:
            raise SimulationError(f"no such window: {title}") from None
        self.close_descriptor()

    # ------------------------------------------------------------------ #
    # sound + files
    # ------------------------------------------------------------------ #

    def play_sound_event(self, *, utility_leaks_socket: bool = False) -> None:
        """Play a sound event through the sound utilities.

        Args:
            utility_leaks_socket: reproduce the studied leak -- the
                utility exits leaving its socket (a descriptor) open.
        """
        self.open_descriptor(leaked=utility_leaks_socket)
        if not utility_leaks_socket:
            self.close_descriptor()

    def edit_file_properties(self, path: str) -> None:
        """Open the property editor on a file stored in the environment.

        Raises:
            ApplicationCrash: when the file's owner field is illegal (the
                curated corrupt-metadata fault's surface).
        """
        if self.env.disk.file_size("file-with-illegal-owner") > 0 and path == "file-with-illegal-owner":
            raise ApplicationCrash("illegal-owner-field", symptom="crash")
        self.state["events_handled"] += 1

    def _do_op(self, op: str):
        if op == "open-window":
            return self.open_window("untitled")
        if op == "play-sound":
            return self.play_sound_event()
        if op == "edit-properties":
            return self.edit_file_properties("file-with-illegal-owner")
        if op == "applet-action":
            if "clock" not in self.state["applets"]:
                self.add_applet("clock")
            return self.dispatch_event("clock")
        if op == "startup":
            return None
        return None
