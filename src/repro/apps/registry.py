"""Application factory: study application -> mini application."""

from __future__ import annotations

from repro.apps.base import MiniApplication
from repro.apps.desktop import MiniDesktop
from repro.apps.httpserver import MiniHttpServer
from repro.apps.sqldb import MiniSqlDatabase
from repro.bugdb.enums import Application
from repro.envmodel.environment import Environment


def make_application(application: Application, env: Environment) -> MiniApplication:
    """Build the mini application standing in for a studied application.

    Args:
        application: which studied application.
        env: the environment the instance runs in.
    """
    if application is Application.APACHE:
        return MiniHttpServer(env)
    if application is Application.GNOME:
        return MiniDesktop(env)
    if application is Application.MYSQL:
        return MiniSqlDatabase(env)
    raise ValueError(f"unknown application: {application!r}")  # pragma: no cover
