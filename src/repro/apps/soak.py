"""Soak testing: realistic generated workloads for the mini applications.

The recovery replay drives each application with a short, fixed workload
around the faulty operation.  Soak testing is the complement: long,
randomly generated (but seed-deterministic) workloads over the healthy
application, checking that its state and its environment footprint stay
consistent.  This is how the mini applications earn the right to stand
in for Apache/GNOME/MySQL in the replay.
"""

from __future__ import annotations

import dataclasses
import random

from repro.apps.desktop import MiniDesktop
from repro.apps.httpserver import MiniHttpServer
from repro.apps.sqldb import MiniSqlDatabase
from repro.envmodel.environment import Environment
from repro.rng import DEFAULT_SEED, make_rng


@dataclasses.dataclass(frozen=True)
class SoakResult:
    """The outcome of one soak run.

    Attributes:
        operations: operations performed.
        failures: operations that raised (should be zero on a healthy app).
        final_descriptors_in_use: environment descriptors held at the end.
    """

    operations: int
    failures: int
    final_descriptors_in_use: int

    @property
    def clean(self) -> bool:
        """No failures and no descriptor leak."""
        return self.failures == 0 and self.final_descriptors_in_use == 0


def soak_http_server(
    *,
    operations: int = 500,
    seed: int = DEFAULT_SEED,
    env: Environment | None = None,
) -> SoakResult:
    """Soak a healthy :class:`MiniHttpServer` with generated requests."""
    environment = env or Environment(seed=seed)
    environment.dns.add_record("client.example.net", "10.0.0.5")
    server = MiniHttpServer(environment)
    rng = make_rng(seed, "soak-http")
    for index in range(20):
        server.add_document(f"/page-{index}", f"<html>page {index}</html>")
    failures = 0
    for _ in range(operations):
        path = f"/page-{rng.randrange(25)}"  # some requests will 404
        try:
            response = server.handle_request(path)
            assert response.status in (200, 404)
        except Exception:  # noqa: BLE001 - soak counts any failure
            failures += 1
    return SoakResult(
        operations=operations,
        failures=failures,
        final_descriptors_in_use=environment.file_descriptors.in_use,
    )


_SOAK_NAMES = ("ada", "grace", "alan", "edsger", "barbara", "tony")


def soak_sql_database(
    *,
    operations: int = 500,
    seed: int = DEFAULT_SEED,
    env: Environment | None = None,
) -> SoakResult:
    """Soak a healthy :class:`MiniSqlDatabase` with generated statements."""
    environment = env or Environment(seed=seed)
    db = MiniSqlDatabase(environment)
    rng = make_rng(seed, "soak-sql")
    db.execute("CREATE TABLE people (id, name, age)")
    next_id = 0
    failures = 0
    live_rows = 0
    for _ in range(operations):
        choice = rng.random()
        try:
            if choice < 0.45 or live_rows == 0:
                db.execute(
                    f"INSERT INTO people VALUES ({next_id}, "
                    f"'{rng.choice(_SOAK_NAMES)}', {rng.randrange(18, 90)})"
                )
                next_id += 1
                live_rows += 1
            elif choice < 0.75:
                rows = db.execute("SELECT * FROM people ORDER BY age")
                assert len(rows) == live_rows
            elif choice < 0.9:
                changed = db.execute(
                    f"UPDATE people SET age = {rng.randrange(18, 90)} "
                    f"WHERE name = '{rng.choice(_SOAK_NAMES)}'"
                )
                assert changed >= 0
            else:
                removed = db.execute(f"DELETE FROM people WHERE id = {rng.randrange(next_id)}")
                live_rows -= removed
            count = db.execute("SELECT COUNT(*) FROM people")[0]["count"]
            assert count == live_rows
        except Exception:  # noqa: BLE001
            failures += 1
    return SoakResult(
        operations=operations,
        failures=failures,
        final_descriptors_in_use=environment.file_descriptors.in_use,
    )


def soak_desktop(
    *,
    operations: int = 500,
    seed: int = DEFAULT_SEED,
    env: Environment | None = None,
) -> SoakResult:
    """Soak a healthy :class:`MiniDesktop` with generated UI events."""
    environment = env or Environment(seed=seed)
    desktop = MiniDesktop(environment)
    rng = make_rng(seed, "soak-desktop")
    applets = ["clock", "pager", "tasklist", "mailcheck"]
    for applet in applets:
        desktop.add_applet(applet)
    window_counter = 0
    failures = 0
    for _ in range(operations):
        choice = rng.random()
        try:
            if choice < 0.4:
                desktop.dispatch_event(rng.choice(desktop.state["applets"]))
            elif choice < 0.6:
                title = f"window-{window_counter}"
                window_counter += 1
                desktop.open_window(title)
            elif choice < 0.8 and desktop.state["windows"]:
                desktop.close_window(rng.choice(desktop.state["windows"]))
            else:
                desktop.play_sound_event()
        except Exception:  # noqa: BLE001
            failures += 1
    # Close remaining windows so descriptor accounting can be checked.
    for title in list(desktop.state["windows"]):
        desktop.close_window(title)
    return SoakResult(
        operations=operations,
        failures=failures,
        final_descriptors_in_use=environment.file_descriptors.in_use,
    )
