"""Base machinery shared by the mini applications.

A :class:`MiniApplication` owns mutable in-memory *state* (what a generic
recovery system checkpoints and restores) and a live
:class:`~repro.envmodel.perturb.ResourceFootprint` (what it currently
holds in the operating environment -- deliberately *not* part of a
checkpoint: a truly generic recovery system preserves application memory,
while the environment-side footprint changes only through the
environment, e.g. when recovery kills the application's processes).
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Any

from repro.apps.faults import FaultInjector
from repro.envmodel.environment import Environment
from repro.envmodel.perturb import ResourceFootprint
from repro.errors import ApplicationCrash


@dataclasses.dataclass(frozen=True)
class AppCheckpoint:
    """A checkpoint of an application's full in-memory state.

    Attributes:
        state: deep copy of the application state at checkpoint time.
        boot_hostname: the hostname the application started under (part
            of application memory -- e.g. cached display authentication).
    """

    state: dict[str, Any]
    boot_hostname: str


class MiniApplication:
    """Base class for the fault-injectable mini applications.

    Args:
        env: the operating environment the application runs in.
        name: application name for logs and errors.
    """

    def __init__(self, env: Environment, *, name: str):
        self.env = env
        self.name = name
        self.state: dict[str, Any] = {}
        self.footprint = ResourceFootprint()
        self.injector = FaultInjector()
        self.boot_hostname = env.hostname
        self.crashed = False
        self._init_state()

    def _init_state(self) -> None:
        """Initialise application-specific state (overridden by apps)."""

    # ------------------------------------------------------------------ #
    # checkpoint / restore (what generic recovery manipulates)
    # ------------------------------------------------------------------ #

    def snapshot(self) -> AppCheckpoint:
        """Capture all application memory."""
        return AppCheckpoint(
            state=copy.deepcopy(self.state),
            boot_hostname=self.boot_hostname,
        )

    def restore(self, checkpoint: AppCheckpoint) -> None:
        """Restore application memory from a checkpoint."""
        self.state = copy.deepcopy(checkpoint.state)
        self.boot_hostname = checkpoint.boot_hostname
        self.crashed = False

    def reset_fresh(self) -> None:
        """Discard all state and reinitialise (restart-from-scratch)."""
        self.state = {}
        self.boot_hostname = self.env.hostname
        self.crashed = False
        self._init_state()

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run_op(self, op: str) -> Any:
        """Execute one workload operation.

        The injector decides first whether an armed defect fires for this
        operation under the current environment; if so the application
        crashes.  Otherwise the operation is performed normally.

        Raises:
            ApplicationCrash: when an injected defect fires.
        """
        self.injector.check(op, self.env, self)
        try:
            return self._do_op(op)
        except ApplicationCrash:
            self.crashed = True
            raise

    def _do_op(self, op: str) -> Any:
        """Perform an operation normally (overridden by apps; default no-op)."""
        return None

    # ------------------------------------------------------------------ #
    # environment interaction helpers
    # ------------------------------------------------------------------ #

    def open_descriptor(self, *, leaked: bool = False) -> None:
        """Acquire one file descriptor from the environment.

        Args:
            leaked: mark the descriptor as no longer used but never
                closed (reclaimable by an OS-resource garbage collector).
        """
        self.env.file_descriptors.acquire()
        self.footprint.descriptors += 1
        if leaked:
            self.footprint.leaked_descriptors += 1

    def close_descriptor(self) -> None:
        """Release one (non-leaked) descriptor."""
        if self.footprint.descriptors - self.footprint.leaked_descriptors <= 0:
            raise ValueError(f"{self.name}: no live descriptor to close")
        self.env.file_descriptors.release()
        self.footprint.descriptors -= 1

    def fork_child(self) -> None:
        """Fork a child process (one process-table slot)."""
        self.env.process_table.acquire()
        self.footprint.process_slots += 1

    def reap_child(self) -> None:
        """Reap one child, freeing its slot."""
        if self.footprint.process_slots <= 0:
            raise ValueError(f"{self.name}: no child to reap")
        self.env.process_table.release()
        self.footprint.process_slots -= 1

    def bind_port(self) -> None:
        """Bind one network port."""
        self.env.ports.acquire()
        self.footprint.ports += 1

    def release_port(self) -> None:
        """Release one bound port."""
        if self.footprint.ports <= 0:
            raise ValueError(f"{self.name}: no port to release")
        self.env.ports.release()
        self.footprint.ports -= 1
