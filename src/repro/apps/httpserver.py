"""MiniHttpServer: an Apache-shaped forking web server.

Implements the slice of web-server behaviour the Apache study faults
depend on: a listening port, forked worker children, per-request file
descriptors, access logging to the environment disk, optional hostname
lookups through the environment DNS, response transfer over the
environment network, and key generation drawing from the entropy pool.
"""

from __future__ import annotations

import dataclasses

from repro.apps.base import MiniApplication
from repro.envmodel.dns import DnsLookupError
from repro.envmodel.environment import Environment
from repro.errors import ApplicationCrash, SimulationError

#: Bytes appended to the access log per request.
LOG_RECORD_BYTES = 120

#: Seconds a client waits before abandoning a request.
CLIENT_TIMEOUT_SECONDS = 10.0


@dataclasses.dataclass(frozen=True)
class HttpResponse:
    """A served response.

    Attributes:
        status: HTTP status code.
        body: response body.
        elapsed_seconds: virtual time the request took.
    """

    status: int
    body: str
    elapsed_seconds: float


class MiniHttpServer(MiniApplication):
    """A small forking HTTP server over the simulated environment.

    Args:
        env: the operating environment.
        hostname_logging: resolve client addresses through DNS per request
            (the paths the DNS faults live in).
        max_children: worker pool size.
    """

    def __init__(
        self,
        env: Environment,
        *,
        hostname_logging: bool = False,
        max_children: int = 8,
    ):
        super().__init__(env, name="mini-httpd")
        self.hostname_logging = hostname_logging
        self.max_children = max_children
        self.running = False

    def _init_state(self) -> None:
        self.state.setdefault("documents", {"/index.html": "<html>It works!</html>"})
        self.state.setdefault("requests_served", 0)
        self.state.setdefault("log_bytes", 0)
        self.state.setdefault("access_control", {})  # path prefix -> {user: password}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Bind the listening port and pre-fork the worker pool."""
        if self.running:
            raise SimulationError("server already running")
        self.bind_port()
        for _ in range(self.max_children):
            self.fork_child()
        self.running = True

    def stop(self) -> None:
        """Reap workers and release the port."""
        while self.footprint.process_slots > 0:
            self.reap_child()
        while self.footprint.ports > 0:
            self.release_port()
        self.running = False

    def generate_session_key(self, bits: int = 128) -> None:
        """Draw key material from /dev/random (blocks when drained)."""
        self.env.entropy.draw(bits)

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #

    def add_document(self, path: str, content: str) -> None:
        """Publish a document."""
        self.state["documents"][path] = content

    def protect(self, path_prefix: str, users: dict[str, str]) -> None:
        """Require basic authentication under a path prefix.

        Args:
            path_prefix: prefix (matched on whole path segments).
            users: allowed ``user -> password`` pairs.
        """
        self.state["access_control"][path_prefix] = dict(users)

    def _authorized(self, path: str, credentials: tuple[str, str] | None) -> bool:
        for prefix, users in self.state["access_control"].items():
            prefix_matches = path == prefix or path.startswith(prefix.rstrip("/") + "/")
            if prefix_matches:
                if credentials is None:
                    return False
                user, password = credentials
                return users.get(user) == password
        return True

    def handle_request(
        self,
        path: str,
        *,
        client_address: str = "10.0.0.5",
        credentials: tuple[str, str] | None = None,
    ) -> HttpResponse:
        """Serve one request end to end.

        Opens a descriptor for the connection, optionally resolves the
        client, finds the document, transfers the body over the network,
        and appends an access-log record.

        Raises:
            ApplicationCrash: if the response transfer outlives the
                client timeout (the slow-network failure mode) or DNS
                fails with hostname logging enabled.
        """
        start = self.env.clock.now
        self.open_descriptor()
        try:
            if self.hostname_logging:
                try:
                    __, latency = self.env.dns.reverse_lookup(client_address)
                except DnsLookupError as exc:
                    raise ApplicationCrash("dns-lookup-failure", symptom="crash") from exc
                self.env.clock.advance(latency)

            if not self._authorized(path, credentials):
                status, body = 401, "Authorization Required"
            else:
                document = self.state["documents"].get(path)
                if document is None:
                    status, body = 404, "Not Found"
                else:
                    status, body = 200, document

            transfer = self.env.network.transfer_seconds(len(body))
            if transfer > CLIENT_TIMEOUT_SECONDS:
                raise ApplicationCrash("client-timeout", symptom="error-return")
            self.env.clock.advance(transfer)

            self.env.disk.write("access_log", LOG_RECORD_BYTES)
            self.state["log_bytes"] += LOG_RECORD_BYTES
            self.state["requests_served"] += 1
            return HttpResponse(status=status, body=body, elapsed_seconds=self.env.clock.now - start)
        finally:
            self.close_descriptor()

    def _do_op(self, op: str):
        if op == "get-page":
            return self.handle_request("/index.html")
        if op == "get-missing-url":
            return self.handle_request("/no-such-page")
        if op in ("dns-lookup", "dns-lookup-slow"):
            return self.handle_request("/index.html")
        if op == "generate-key":
            return self.generate_session_key()
        if op == "fork-child":
            self.fork_child()
            return None
        if op == "bind-port":
            self.bind_port()
            return None
        if op in ("log-append", "log-append-fs"):
            self.env.disk.write("access_log", LOG_RECORD_BYTES)
            return None
        if op in ("accept-connection", "accept-connection-nic"):
            self.env.network.require_up()
            self.env.network.buffers.acquire()
            self.footprint.network_buffers += 1
            return None
        return None
