"""MiniSqlDatabase: a MySQL-shaped multi-session SQL server.

Implements the slice of database behaviour the MySQL study faults depend
on: tables with rows and simple indexes persisted (by size) to the
environment disk, a small SQL dialect (CREATE TABLE / INSERT / SELECT
with WHERE, ORDER BY, COUNT(*) / UPDATE / DELETE / LOCK / FLUSH /
OPTIMIZE), per-connection descriptors, and reverse-DNS checks on incoming
connections.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Any

from repro.apps.base import MiniApplication
from repro.envmodel.dns import DnsLookupError
from repro.envmodel.environment import Environment
from repro.errors import ApplicationCrash, SimulationError

#: Bytes per row charged against the data file on disk.
ROW_BYTES = 64

_CREATE = re.compile(r"^CREATE TABLE (\w+)\s*\(([^)]*)\)$", re.IGNORECASE)
_INSERT = re.compile(r"^INSERT INTO (\w+) VALUES\s*\((.*)\)$", re.IGNORECASE)
_SELECT = re.compile(
    r"^SELECT (?P<cols>.+?) FROM (?P<table>\w+)"
    r"(?: WHERE (?P<where>\w+)\s*=\s*(?P<value>\S+))?"
    r"(?: ORDER BY (?P<order>\w+))?$",
    re.IGNORECASE,
)
_DELETE = re.compile(
    r"^DELETE FROM (?P<table>\w+)(?: WHERE (?P<where>\w+)\s*=\s*(?P<value>\S+))?$",
    re.IGNORECASE,
)
_UPDATE = re.compile(
    r"^UPDATE (?P<table>\w+) SET (?P<col>\w+)\s*=\s*(?P<new>\S+)"
    r"(?: WHERE (?P<where>\w+)\s*=\s*(?P<value>\S+))?$",
    re.IGNORECASE,
)
_CREATE_INDEX = re.compile(
    r"^CREATE INDEX (?P<name>\w+) ON (?P<table>\w+)\s*\((?P<col>\w+)\)$",
    re.IGNORECASE,
)


class SqlError(SimulationError):
    """Raised for malformed or invalid SQL statements."""


@dataclasses.dataclass
class Table:
    """One table: column names, rows as dicts, and per-column indexes.

    Indexes map ``column -> value -> row list`` and are maintained on
    every insert/update/delete, the ISAM way: the famous Table 3 fault
    (updating a key to a value found later in the scan) lives exactly in
    this kind of structure.
    """

    name: str
    columns: list[str]
    rows: list[dict[str, Any]] = dataclasses.field(default_factory=list)
    indexes: dict[str, dict[Any, list[dict[str, Any]]]] = dataclasses.field(
        default_factory=dict
    )

    def build_index(self, column: str) -> None:
        """Create (or rebuild) an index on one column."""
        entries: dict[Any, list[dict[str, Any]]] = {}
        for row in self.rows:
            entries.setdefault(row[column], []).append(row)
        self.indexes[column] = entries

    def index_insert(self, row: dict[str, Any]) -> None:
        """Register a new row in every index."""
        for column, entries in self.indexes.items():
            entries.setdefault(row[column], []).append(row)

    def index_remove(self, row: dict[str, Any]) -> None:
        """Remove a row from every index."""
        for column, entries in self.indexes.items():
            bucket = entries.get(row[column], [])
            if row in bucket:
                bucket.remove(row)
                if not bucket:
                    del entries[row[column]]

    def index_update(self, row: dict[str, Any], column: str, new_value: Any) -> None:
        """Move a row between index buckets when a column changes."""
        self.index_remove(row)
        row[column] = new_value
        self.index_insert(row)


class MiniSqlDatabase(MiniApplication):
    """A small SQL server over the simulated environment.

    Args:
        env: the operating environment.
        check_reverse_dns: resolve connecting clients through reverse DNS
            (the path the misconfigured-DNS fault lives in).
    """

    def __init__(self, env: Environment, *, check_reverse_dns: bool = False):
        super().__init__(env, name="mini-mysqld")
        self.check_reverse_dns = check_reverse_dns

    def _init_state(self) -> None:
        self.state.setdefault("tables", {})
        self.state.setdefault("locks", {})
        self.state.setdefault("queries_executed", 0)

    # ------------------------------------------------------------------ #
    # connections
    # ------------------------------------------------------------------ #

    def accept_connection(self, client_address: str = "10.0.0.99") -> None:
        """Accept a client connection (a descriptor; optional PTR lookup).

        Raises:
            ApplicationCrash: when reverse DNS is required and missing.
        """
        self.open_descriptor()
        if self.check_reverse_dns:
            try:
                self.env.dns.reverse_lookup(client_address)
            except DnsLookupError as exc:
                raise ApplicationCrash("reverse-dns-failure", symptom="crash") from exc

    # ------------------------------------------------------------------ #
    # SQL execution
    # ------------------------------------------------------------------ #

    def execute(self, sql: str) -> list[dict[str, Any]] | int:
        """Execute one SQL statement.

        Returns:
            SELECT: the result rows; other statements: affected-row count.

        Raises:
            SqlError: on unknown tables/columns or unparseable SQL.
        """
        statement = sql.strip().rstrip(";").strip()
        self.state["queries_executed"] += 1
        upper = statement.upper()
        if upper.startswith("CREATE TABLE"):
            return self._create(statement)
        if upper.startswith("CREATE INDEX"):
            return self._create_index(statement)
        if upper.startswith("INSERT INTO"):
            return self._insert(statement)
        if upper.startswith("SELECT COUNT(*)"):
            return self._count(statement)
        if upper.startswith("SELECT"):
            return self._select(statement)
        if upper.startswith("DELETE"):
            return self._delete(statement)
        if upper.startswith("UPDATE"):
            return self._update(statement)
        if upper.startswith("LOCK TABLES"):
            return self._lock(statement)
        if upper.startswith("UNLOCK TABLES"):
            self.state["locks"].clear()
            return 0
        if upper.startswith("FLUSH TABLES"):
            return self._flush()
        if upper.startswith("OPTIMIZE TABLE"):
            return self._optimize(statement)
        raise SqlError(f"cannot parse statement: {sql!r}")

    def _table(self, name: str) -> Table:
        try:
            return self.state["tables"][name]
        except KeyError:
            raise SqlError(f"no such table: {name}") from None

    def _create(self, statement: str) -> int:
        match = _CREATE.match(statement)
        if match is None:
            raise SqlError(f"bad CREATE TABLE: {statement!r}")
        name, columns_text = match.groups()
        if name in self.state["tables"]:
            raise SqlError(f"table exists: {name}")
        columns = [column.strip().split()[0] for column in columns_text.split(",") if column.strip()]
        if not columns:
            raise SqlError("a table needs at least one column")
        self.state["tables"][name] = Table(name=name, columns=columns)
        return 0

    def _create_index(self, statement: str) -> int:
        match = _CREATE_INDEX.match(statement)
        if match is None:
            raise SqlError(f"bad CREATE INDEX: {statement!r}")
        table = self._table(match.group("table"))
        column = match.group("col")
        if column not in table.columns:
            raise SqlError(f"no such column: {column}")
        table.build_index(column)
        return 0

    def _insert(self, statement: str) -> int:
        match = _INSERT.match(statement)
        if match is None:
            raise SqlError(f"bad INSERT: {statement!r}")
        table = self._table(match.group(1))
        values = [self._literal(item) for item in match.group(2).split(",")]
        if len(values) != len(table.columns):
            raise SqlError(
                f"{table.name}: {len(values)} values for {len(table.columns)} columns"
            )
        row = dict(zip(table.columns, values))
        table.rows.append(row)
        table.index_insert(row)
        self.env.disk.write(f"data/{table.name}.ISD", ROW_BYTES)
        return 1

    def _count(self, statement: str) -> list[dict[str, Any]]:
        match = re.match(r"^SELECT COUNT\(\*\) FROM (\w+)$", statement, re.IGNORECASE)
        if match is None:
            raise SqlError(f"bad COUNT query: {statement!r}")
        table = self._table(match.group(1))
        return [{"count": len(table.rows)}]

    def _select(self, statement: str) -> list[dict[str, Any]]:
        match = _SELECT.match(statement)
        if match is None:
            raise SqlError(f"bad SELECT: {statement!r}")
        table = self._table(match.group("table"))
        rows = self._filter(table, match.group("where"), match.group("value"))
        order = match.group("order")
        if order:
            if order not in table.columns:
                raise SqlError(f"no such column: {order}")
            rows = sorted(rows, key=lambda row: row[order])
        columns_text = match.group("cols").strip()
        if columns_text == "*":
            return [dict(row) for row in rows]
        wanted = [column.strip() for column in columns_text.split(",")]
        for column in wanted:
            if column not in table.columns:
                raise SqlError(f"no such column: {column}")
        return [{column: row[column] for column in wanted} for row in rows]

    def _delete(self, statement: str) -> int:
        match = _DELETE.match(statement)
        if match is None:
            raise SqlError(f"bad DELETE: {statement!r}")
        table = self._table(match.group("table"))
        doomed = self._filter(table, match.group("where"), match.group("value"))
        for row in doomed:
            table.index_remove(row)
        table.rows = [row for row in table.rows if row not in doomed]
        return len(doomed)

    def _update(self, statement: str) -> int:
        match = _UPDATE.match(statement)
        if match is None:
            raise SqlError(f"bad UPDATE: {statement!r}")
        table = self._table(match.group("table"))
        column = match.group("col")
        if column not in table.columns:
            raise SqlError(f"no such column: {column}")
        new_value = self._literal(match.group("new"))
        # Collect all matching rows *first*, then update -- the fix the
        # paper records for the update-while-scanning index fault
        # ("solved by first scanning for all matching rows and then
        # updating the found rows").
        targets = self._filter(table, match.group("where"), match.group("value"))
        for row in targets:
            table.index_update(row, column, new_value)
        return len(targets)

    def _lock(self, statement: str) -> int:
        match = re.match(r"^LOCK TABLES (\w+) (READ|WRITE)$", statement, re.IGNORECASE)
        if match is None:
            raise SqlError(f"bad LOCK TABLES: {statement!r}")
        table = self._table(match.group(1))
        self.state["locks"][table.name] = match.group(2).upper()
        return 0

    def _flush(self) -> int:
        flushed = len(self.state["tables"])
        return flushed

    def _optimize(self, statement: str) -> int:
        match = re.match(r"^OPTIMIZE TABLE (\w+)$", statement, re.IGNORECASE)
        if match is None:
            raise SqlError(f"bad OPTIMIZE TABLE: {statement!r}")
        table = self._table(match.group(1))
        # Rebuild reclaims the table's deleted-row space on disk.
        self.env.disk.delete(f"data/{table.name}.ISD")
        self.env.disk.write(f"data/{table.name}.ISD", ROW_BYTES * len(table.rows))
        return 0

    def _filter(self, table: Table, where: str | None, value: str | None) -> list[dict[str, Any]]:
        if where is None:
            return list(table.rows)
        if where not in table.columns:
            raise SqlError(f"no such column: {where}")
        literal = self._literal(value or "")
        if where in table.indexes:
            return list(table.indexes[where].get(literal, ()))
        return [row for row in table.rows if row[where] == literal]

    @staticmethod
    def _literal(token: str) -> Any:
        token = token.strip()
        if token.startswith("'") and token.endswith("'") and len(token) >= 2:
            return token[1:-1]
        try:
            return int(token)
        except ValueError:
            try:
                return float(token)
            except ValueError:
                return token

    def _do_op(self, op: str):
        if op in ("insert-row", "insert-row-full"):
            if "optable" not in self.state["tables"]:
                self.execute("CREATE TABLE optable (a, b)")
            return self.execute("INSERT INTO optable VALUES (1, 2)")
        if op == "open-table":
            self.open_descriptor()
            return None
        if op == "accept-connection" or op == "login":
            return self.accept_connection()
        return None
