"""Fault injection: study faults as executable defects.

Each :class:`InjectedDefect` is derived from one curated
:class:`~repro.corpus.studyspec.StudyFault` and reproduces its
*environmental dependence structure*:

* environment-independent defects fire every time their workload
  operation runs;
* resource-triggered defects fire while the corresponding environment
  condition holds, and :meth:`InjectedDefect.arm` establishes that
  condition the way the bug report describes (filling the disk, leaking
  descriptors, degrading DNS, ...);
* timing-triggered defects (races, signal windows, workload timing) fire
  unconditionally on their first execution -- the failure did happen,
  that is why a bug was reported -- and on later executions fire only if
  the scheduler's fresh interleaving lands back in the racy window.

The replay driver (:mod:`repro.recovery.driver`) then measures whether a
generic recovery technique survives each defect -- the paper's proposed
end-to-end check.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

from repro.bugdb.enums import Symptom, TriggerKind
from repro.corpus.studyspec import StudyFault
from repro.envmodel.dns import DnsState
from repro.envmodel.environment import Environment
from repro.envmodel.network import NetworkState
from repro.errors import ApplicationCrash, ApplicationHang

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.apps.base import MiniApplication

#: Probability mass of the racy interleaving window for timing defects.
DEFAULT_RACE_WINDOW = 0.25

#: Entropy (bits) the key-generation path needs.
ENTROPY_NEEDED_BITS = 128

_TIMING_TRIGGERS = frozenset(
    {
        TriggerKind.RACE_CONDITION,
        TriggerKind.SIGNAL_TIMING,
        TriggerKind.WORKLOAD_TIMING,
        TriggerKind.UNKNOWN_TRANSIENT,
    }
)

#: In-memory objects the resource-leak defect accumulates before failing.
LEAK_LIMIT = 1000


@dataclasses.dataclass
class InjectedDefect:
    """One study fault turned into an injectable defect.

    Attributes:
        fault: the study fault this defect reproduces.
        race_window: width of the racy window for timing triggers.
        fired_once: whether the defect has fired at least once.
        executions: times the guarded operation has run.
        stream_label: optional scheduler stream label.  ``None`` (the
            single-defect default) draws timing re-fires from the shared
            scheduler stream; multi-defect scenarios set a per-defect
            label (derived from the scenario id and fault id) so armed
            defects never consume each other's draws.
    """

    fault: StudyFault
    race_window: float = DEFAULT_RACE_WINDOW
    fired_once: bool = False
    executions: int = 0
    stream_label: str | None = None

    @property
    def op(self) -> str:
        """The workload operation this defect guards."""
        return self.fault.workload_op

    # ------------------------------------------------------------------ #
    # arming: establish the triggering condition
    # ------------------------------------------------------------------ #

    def arm(self, env: Environment, app: "MiniApplication") -> None:
        """Set up the bug report's triggering condition.

        For environment-independent faults there is nothing to set up --
        the defect is in the code.  For environment-dependent faults this
        reproduces the report's environment: exhausted resources, degraded
        services, changed host configuration.
        """
        trigger = self.fault.trigger
        if trigger is TriggerKind.NONE or trigger in _TIMING_TRIGGERS:
            return
        if trigger is TriggerKind.RESOURCE_LEAK:
            # The leak is application memory: it survives state-preserving
            # recovery, which is exactly why the paper calls it
            # nontransient.
            app.state["leaked_objects"] = LEAK_LIMIT + 1
        elif trigger is TriggerKind.FILE_DESCRIPTOR_EXHAUSTION:
            while not env.file_descriptors.exhausted:
                app.open_descriptor(leaked=True)
        elif trigger is TriggerKind.DISK_FULL:
            env.disk.fill()
        elif trigger is TriggerKind.FILE_SIZE_LIMIT:
            if env.disk.max_file_bytes is not None:
                env.disk.write("growing-file", min(env.disk.max_file_bytes, env.disk.free_bytes))
        elif trigger is TriggerKind.DISK_CACHE_FULL:
            env.disk_cache.fill()
        elif trigger is TriggerKind.NETWORK_RESOURCE_EXHAUSTION:
            free = env.network.buffers.available
            env.network.buffers.acquire(free)
            app.footprint.network_buffers += free
        elif trigger is TriggerKind.HARDWARE_REMOVAL:
            env.network.remove_interface()
        elif trigger is TriggerKind.HOST_CONFIG_CHANGE:
            env.change_hostname(env.hostname + ".renamed")
        elif trigger is TriggerKind.DNS_MISCONFIGURED:
            env.dns.remove_reverse("10.0.0.99")
        elif trigger is TriggerKind.CORRUPT_EXTERNAL_STATE:
            env.disk.write("file-with-illegal-owner", 1)
        elif trigger is TriggerKind.PROCESS_TABLE_FULL:
            while not env.process_table.exhausted:
                app.fork_child()
        elif trigger is TriggerKind.PORT_IN_USE:
            while not env.ports.exhausted:
                app.bind_port()
        elif trigger is TriggerKind.DNS_ERROR:
            env.dns.degrade(DnsState.ERROR)
        elif trigger is TriggerKind.DNS_SLOW:
            env.dns.degrade(DnsState.SLOW)
        elif trigger is TriggerKind.NETWORK_SLOW:
            env.network.degrade(NetworkState.SLOW)
        elif trigger is TriggerKind.ENTROPY_EXHAUSTION:
            env.entropy.drain()
        else:  # pragma: no cover - exhaustive over TriggerKind
            raise ValueError(f"unhandled trigger: {trigger!r}")

    # ------------------------------------------------------------------ #
    # firing: does the condition hold right now?
    # ------------------------------------------------------------------ #

    def condition_holds(self, env: Environment, app: "MiniApplication") -> bool:
        """Whether the triggering condition currently holds.

        Timing triggers consult the scheduler: the first execution is
        forced (the reported failure happened), later ones re-draw.
        """
        trigger = self.fault.trigger
        if trigger is TriggerKind.NONE:
            return True
        if trigger in _TIMING_TRIGGERS:
            if not self.fired_once:
                return True
            return env.scheduler.race_fires(self.race_window, label=self.stream_label)
        if trigger is TriggerKind.RESOURCE_LEAK:
            return app.state.get("leaked_objects", 0) > LEAK_LIMIT
        if trigger is TriggerKind.FILE_DESCRIPTOR_EXHAUSTION:
            return env.file_descriptors.exhausted
        if trigger is TriggerKind.DISK_FULL:
            return env.disk.full
        if trigger is TriggerKind.FILE_SIZE_LIMIT:
            return (
                env.disk.max_file_bytes is not None
                and env.disk.file_size("growing-file") >= env.disk.max_file_bytes
            )
        if trigger is TriggerKind.DISK_CACHE_FULL:
            return env.disk_cache.full
        if trigger is TriggerKind.NETWORK_RESOURCE_EXHAUSTION:
            return env.network.buffers.exhausted
        if trigger is TriggerKind.HARDWARE_REMOVAL:
            return not env.network.interface_present
        if trigger is TriggerKind.HOST_CONFIG_CHANGE:
            return env.hostname != app.boot_hostname
        if trigger is TriggerKind.DNS_MISCONFIGURED:
            return not env.dns.has_reverse("10.0.0.99")
        if trigger is TriggerKind.CORRUPT_EXTERNAL_STATE:
            return env.disk.file_size("file-with-illegal-owner") > 0
        if trigger is TriggerKind.PROCESS_TABLE_FULL:
            return env.process_table.exhausted
        if trigger is TriggerKind.PORT_IN_USE:
            return env.ports.exhausted
        if trigger is TriggerKind.DNS_ERROR:
            return env.dns.state is DnsState.ERROR
        if trigger is TriggerKind.DNS_SLOW:
            return env.dns.state is DnsState.SLOW
        if trigger is TriggerKind.NETWORK_SLOW:
            return env.network.state is NetworkState.SLOW
        if trigger is TriggerKind.ENTROPY_EXHAUSTION:
            return env.entropy.bits < ENTROPY_NEEDED_BITS
        raise ValueError(f"unhandled trigger: {trigger!r}")  # pragma: no cover

    def fire_if_triggered(self, env: Environment, app: "MiniApplication") -> None:
        """Crash the application if the triggering condition holds.

        Raises:
            ApplicationHang: for hang-symptom faults whose condition holds.
            ApplicationCrash: for all other symptoms whose condition holds.
        """
        self.executions += 1
        if not self.condition_holds(env, app):
            return
        self.fired_once = True
        if self.fault.symptom is Symptom.HANG:
            raise ApplicationHang(self.fault.fault_id)
        raise ApplicationCrash(self.fault.fault_id, symptom=self.fault.symptom.value)


class FaultInjector:
    """Holds the defects injected into one application, keyed by operation.

    The single-fault replay path injects exactly one defect per op and
    treats a second injection on the same op as a mistake.  Multi-fault
    scenarios opt into stacking (``allow_stacking=True``), in which case
    every defect guarding an op fires in injection order.
    """

    def __init__(self):
        self._defects: dict[str, list[InjectedDefect]] = {}

    def inject(self, defect: InjectedDefect, *, allow_stacking: bool = False) -> None:
        """Register a defect.

        Args:
            defect: the defect to register.
            allow_stacking: permit more than one defect on the same op
                (scenario composition).  The default rejects duplicates,
                preserving the single-fault contract.

        Raises:
            ValueError: if the op is already guarded and stacking was not
                requested.
        """
        stack = self._defects.setdefault(defect.op, [])
        if stack and not allow_stacking:
            raise ValueError(f"a defect already guards op {defect.op!r}")
        stack.append(defect)

    def defect_for(self, op: str) -> InjectedDefect | None:
        """The first defect guarding ``op``, if any."""
        stack = self._defects.get(op)
        return stack[0] if stack else None

    def defects_for(self, op: str) -> tuple[InjectedDefect, ...]:
        """All defects guarding ``op``, in injection order."""
        return tuple(self._defects.get(op, ()))

    def all_defects(self) -> tuple[InjectedDefect, ...]:
        """Every injected defect, in op-then-injection order."""
        return tuple(d for stack in self._defects.values() for d in stack)

    def check(self, op: str, env: Environment, app: "MiniApplication") -> None:
        """Fire the defects guarding ``op`` whose conditions hold.

        Defects fire in injection order; the first one whose condition
        holds raises, so a stacked defect only gets to fire once every
        defect before it stays quiet this execution.
        """
        for defect in self._defects.get(op, ()):
            defect.fire_if_triggered(env, app)

    def __len__(self) -> int:
        return sum(len(stack) for stack in self._defects.values())
