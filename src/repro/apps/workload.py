"""Workloads: the fixed request sequences driven at an application.

Section 3: "we consider the sequence of workload requests made to the
program as part of the program ... the sequence of requests is usually
fixed for any given program task.  That is, we assume the user is not
willing to aid recovery by avoiding certain input sequences."  A
:class:`Workload` is therefore an immutable operation sequence replayed
*in full* on every recovery retry.
"""

from __future__ import annotations

import dataclasses

from repro.apps.base import MiniApplication
from repro.corpus.studyspec import StudyFault


@dataclasses.dataclass(frozen=True)
class Workload:
    """An immutable sequence of operations.

    Attributes:
        ops: the operations, replayed in order.
    """

    ops: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError("a workload needs at least one operation")

    def run(self, app: MiniApplication) -> None:
        """Drive every operation at the application, in order.

        Raises:
            ApplicationCrash: propagated from the application if an
                injected defect fires mid-workload.
        """
        for op in self.ops:
            app.run_op(op)

    def __len__(self) -> int:
        return len(self.ops)


def workload_for_fault(fault: StudyFault, *, warmup_ops: int = 2) -> Workload:
    """The workload that reproduces one study fault.

    A few harmless warm-up operations precede the triggering operation,
    modelling the requests a real task issues around the faulty one.
    """
    warmup = tuple(f"warmup-{index}" for index in range(warmup_ops))
    return Workload(ops=warmup + (fault.workload_op,))
