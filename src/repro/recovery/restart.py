"""Restart-from-scratch recovery.

Restarting the application and losing all state is *not* truly generic
recovery (Section 2 requires preserving all state; restart loses any
in-flight work), but it is the most widely deployed baseline and it
clears application-held leaks.  Included as the second comparison point.
"""

from __future__ import annotations

from repro.apps.base import MiniApplication
from repro.classify.recovery_model import RESTART_FRESH, RecoveryModel
from repro.recovery.base import RecoveryTechnique


class RestartFresh(RecoveryTechnique):
    """Kill the application and start a fresh instance.

    Args:
        model: defaults to
            :data:`~repro.classify.recovery_model.RESTART_FRESH`
            (state not preserved).
    """

    name = "restart-fresh"
    application_generic = False  # it loses state, so it is not equivalent

    def __init__(
        self,
        model: RecoveryModel = RESTART_FRESH,
        *,
        max_attempts: int = 2,
        downtime_seconds: float = 20.0,
    ):
        super().__init__(model, max_attempts=max_attempts, downtime_seconds=downtime_seconds)
        self.restarts = 0

    def _do_prepare(self, app: MiniApplication) -> None:
        return

    def _restore_state(self, app: MiniApplication, attempt: int) -> None:
        self.restarts += 1
        app.reset_fresh()
