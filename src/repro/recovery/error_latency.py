"""Error latency: why Tandem's process pairs looked so good (Section 7).

Lee & Iyer found 82% of Tandem software faults recovered by process
pairs; the paper attributes much of that to the backup *not* starting
from the failed primary's state -- its checkpoint predated the state
corruption ("memory state" and "error latency" categories).  A truly
generic mechanism that checkpoints *all* state right up to the failure
re-creates the corruption on the backup and fails again.

This module mechanises that argument with the leak archetype: an
application leaks one unit of state per operation and crashes when the
leak crosses a threshold.  A checkpoint captured ``age`` operations
before the crash restarts the application with that much less leaked
state; the retry survives iff the checkpoint is *stale enough* that the
remaining headroom covers the whole task.  Sweeping the checkpoint age
reproduces Lee & Iyer's paradox: the worse (older) the checkpoint, the
better the "recovery rate".
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class LatencyExperiment:
    """One leak-fault configuration.

    Attributes:
        leak_limit: leaked units at which the application crashes.
        task_operations: operations in the requested task, each leaking
            one unit.  Must not on its own exceed the limit (a fresh
            application can complete the task).
    """

    leak_limit: int = 100
    task_operations: int = 40

    def __post_init__(self) -> None:
        if self.leak_limit <= 0 or self.task_operations <= 0:
            raise ValueError("limit and task size must be positive")
        if self.task_operations > self.leak_limit:
            raise ValueError("a fresh application must be able to complete the task")

    @property
    def staleness_needed(self) -> int:
        """Minimum checkpoint age (in operations) for the retry to survive.

        The primary crashed with ``leak_limit`` units accumulated; a
        checkpoint taken ``age`` operations earlier restores
        ``leak_limit - age`` units.  The retry re-executes the whole task
        (``task_operations`` more units), surviving iff
        ``leak_limit - age + task_operations <= leak_limit``.
        """
        return self.task_operations


@dataclasses.dataclass(frozen=True)
class LatencyOutcome:
    """Result of one checkpoint-age replay.

    Attributes:
        checkpoint_age: operations between the checkpoint and the crash.
        restored_leak: leaked units in the restored state.
        survived: whether the retried task completed.
    """

    checkpoint_age: int
    restored_leak: int
    survived: bool


def replay_with_checkpoint_age(
    experiment: LatencyExperiment, checkpoint_age: int
) -> LatencyOutcome:
    """Replay the leak fault with a checkpoint of the given staleness.

    Args:
        experiment: the leak configuration.
        checkpoint_age: operations between the checkpoint and the crash
            (0 = the checkpoint captured the primary's full pre-crash
            state, the truly generic ideal).

    Raises:
        ValueError: if ``checkpoint_age`` is negative or older than the
            crash state itself.
    """
    if checkpoint_age < 0 or checkpoint_age > experiment.leak_limit:
        raise ValueError("checkpoint_age must be within [0, leak_limit]")

    restored_leak = experiment.leak_limit - checkpoint_age
    # Deterministic leak walk: does the re-executed task cross the limit?
    leak = restored_leak
    survived = True
    for _ in range(experiment.task_operations):
        leak += 1
        if leak > experiment.leak_limit:
            survived = False
            break
    return LatencyOutcome(
        checkpoint_age=checkpoint_age,
        restored_leak=restored_leak,
        survived=survived,
    )


def sweep_checkpoint_age(
    experiment: LatencyExperiment,
    ages: tuple[int, ...] | None = None,
) -> list[LatencyOutcome]:
    """Sweep checkpoint staleness from fresh to maximally stale."""
    if ages is None:
        step = max(1, experiment.leak_limit // 10)
        ages = tuple(range(0, experiment.leak_limit + 1, step))
    return [replay_with_checkpoint_age(experiment, age) for age in ages]


def recovery_rate_with_random_latency(
    experiment: LatencyExperiment,
) -> float:
    """Recovery rate when checkpoint age is uniform over [0, leak_limit].

    This is the field-data situation: checkpoints happen on their own
    schedule, so a crash lands at a uniformly random offset after the
    last checkpoint.  The rate is the fraction of ages that survive --
    analytically ``1 - task_operations / (leak_limit + 1)`` -- and is
    *higher* for leakier (worse-checkpointed) systems, the Section 7
    paradox.
    """
    survived = sum(
        replay_with_checkpoint_age(experiment, age).survived
        for age in range(experiment.leak_limit + 1)
    )
    return survived / (experiment.leak_limit + 1)
