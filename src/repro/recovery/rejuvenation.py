"""Software rejuvenation [Huang95].

"Software rejuvenation takes advantage of recovery code that is already
present in the application, e.g. code to re-initialize the application's
state" (Section 7).  It is therefore **application-specific**: it clears
application-held leaks by reinitialising state and killing children --
exactly what Apache's SIGHUP rejuvenation does -- but cannot fix external
conditions like a full disk.
"""

from __future__ import annotations

from repro.apps.base import MiniApplication
from repro.classify.recovery_model import PAPER_DEFAULT, RecoveryModel
from repro.envmodel.perturb import apply_recovery_perturbation
from repro.recovery.base import RecoveryTechnique


class SoftwareRejuvenation(RecoveryTechnique):
    """Reactive rejuvenation: reinitialise application state on failure.

    Not application-generic: it relies on the application's own
    reinitialisation code, so ``application_generic`` is False and the
    replay report separates its results from the generic techniques.
    """

    name = "software-rejuvenation"
    application_generic = False

    def __init__(
        self,
        model: RecoveryModel = PAPER_DEFAULT,
        *,
        max_attempts: int = 2,
        downtime_seconds: float = 10.0,
    ):
        super().__init__(model, max_attempts=max_attempts, downtime_seconds=downtime_seconds)
        self.rejuvenations = 0

    def _do_prepare(self, app: MiniApplication) -> None:
        # Rejuvenation needs no captured redundancy: the application's
        # own re-initialisation code is the redundancy.
        return

    def _restore_state(self, app: MiniApplication, attempt: int) -> None:
        self.rejuvenations += 1
        app.reset_fresh()

    def _perturb_environment(self, app: MiniApplication, attempt: int) -> None:
        # Rejuvenation kills children and releases everything the old
        # incarnation held, regardless of the surrounding model.
        app.footprint.release_everything(app.env)
        apply_recovery_perturbation(
            app.env,
            self.model,
            footprint=None,
            downtime_seconds=self.downtime_seconds,
        )
