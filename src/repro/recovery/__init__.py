"""Generic (and comparison) recovery techniques, plus the replay driver.

Section 2 of the paper defines *application-generic* recovery: no
application-specific redundant code, all application state preserved,
survival possible only when something **external** changes on retry.
This package implements the classical techniques the paper discusses and
drives them against the injected study faults:

* :class:`~repro.recovery.process_pairs.ProcessPairs` -- primary/backup
  failover onto the same code [Gray86];
* :class:`~repro.recovery.rollback.CheckpointRollback` -- checkpoint and
  rollback-retry [Elnozahy99, Huang93];
* :class:`~repro.recovery.progressive.ProgressiveRetry` -- escalating
  environment perturbation on successive retries [Wang93];
* :class:`~repro.recovery.rejuvenation.SoftwareRejuvenation` --
  proactive restart using application reinitialisation code [Huang95]
  (application-specific; included as the paper's comparison point);
* :class:`~repro.recovery.restart.RestartFresh` -- restart losing all
  state (not truly generic; the other comparison point).
"""

from repro.recovery.base import RecoveryTechnique
from repro.recovery.checkpoint import CheckpointStore
from repro.recovery.process_pairs import ProcessPairs
from repro.recovery.rollback import CheckpointRollback
from repro.recovery.progressive import ProgressiveRetry
from repro.recovery.rejuvenation import SoftwareRejuvenation
from repro.recovery.restart import RestartFresh
from repro.recovery.driver import FaultReplayOutcome, ReplayReport, replay_fault, replay_study
from repro.recovery.availability import (
    AvailabilityParameters,
    AvailabilityResult,
    simulate_availability,
)
from repro.recovery.campaign import (
    SweepPoint,
    sweep_race_window,
    sweep_retry_budget,
    timing_faults,
)
from repro.recovery.error_latency import (
    LatencyExperiment,
    LatencyOutcome,
    recovery_rate_with_random_latency,
    replay_with_checkpoint_age,
    sweep_checkpoint_age,
)
from repro.recovery.rejuvenation_schedule import (
    LeakModel,
    RejuvenationOutcome,
    RejuvenationPolicy,
    simulate_rejuvenation_schedule,
    sweep_rejuvenation_interval,
)

__all__ = [
    "AvailabilityParameters",
    "AvailabilityResult",
    "LatencyExperiment",
    "LatencyOutcome",
    "LeakModel",
    "RejuvenationOutcome",
    "recovery_rate_with_random_latency",
    "replay_with_checkpoint_age",
    "sweep_checkpoint_age",
    "RejuvenationPolicy",
    "simulate_rejuvenation_schedule",
    "sweep_rejuvenation_interval",
    "SweepPoint",
    "simulate_availability",
    "sweep_race_window",
    "sweep_retry_budget",
    "timing_faults",
    "CheckpointRollback",
    "CheckpointStore",
    "FaultReplayOutcome",
    "ProcessPairs",
    "ProgressiveRetry",
    "RecoveryTechnique",
    "ReplayReport",
    "RestartFresh",
    "SoftwareRejuvenation",
    "replay_fault",
    "replay_study",
]
