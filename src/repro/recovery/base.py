"""Recovery-technique interface.

A technique ``prepare``\\ s against a running application (capturing
whatever redundancy it relies on), and on each failure performs one
``recover`` attempt: restore application state per its semantics and
apply its environmental side effects
(:func:`~repro.envmodel.perturb.apply_recovery_perturbation` under its
:class:`~repro.classify.recovery_model.RecoveryModel`).
"""

from __future__ import annotations

import abc

from typing import TYPE_CHECKING, Any, Callable

from repro.apps.base import MiniApplication
from repro.classify.recovery_model import PAPER_DEFAULT, RecoveryModel
from repro.envmodel.perturb import apply_recovery_perturbation
from repro.errors import ApplicationCrash, RecoveryError, RecoveryExhausted

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.apps.workload import Workload


class RecoveryTechnique(abc.ABC):
    """Base class for recovery techniques.

    Args:
        model: the technique's environmental side effects.
        max_attempts: recovery attempts before giving up.
        downtime_seconds: virtual time one recovery attempt takes.

    Attributes:
        application_generic: True when the technique uses no
            application-specific information (the paper's core
            distinction).
    """

    name: str = "recovery"
    application_generic: bool = True

    def __init__(
        self,
        model: RecoveryModel = PAPER_DEFAULT,
        *,
        max_attempts: int = 3,
        downtime_seconds: float = 30.0,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.model = model
        self.max_attempts = max_attempts
        self.downtime_seconds = downtime_seconds
        self._prepared = False

    def prepare(self, app: MiniApplication) -> None:
        """Capture the technique's redundancy against a healthy application."""
        self._do_prepare(app)
        self._prepared = True

    def recover(self, app: MiniApplication, attempt: int) -> None:
        """Perform one recovery attempt after a failure.

        Args:
            app: the failed application.
            attempt: 1-based attempt number.

        Raises:
            RecoveryError: if :meth:`prepare` was never called.
        """
        if not self._prepared:
            raise RecoveryError(f"{self.name}: recover() before prepare()")
        self._restore_state(app, attempt)
        self._perturb_environment(app, attempt)

    def run_with_recovery(
        self,
        app: MiniApplication,
        workload: "Workload",
        *,
        on_recovery: Callable[[int], Any] | None = None,
    ) -> int:
        """Run a workload under this technique's protection.

        Prepares (if not already prepared), runs the workload, and on
        every :class:`~repro.errors.ApplicationCrash` performs one
        recovery attempt and re-runs the *whole* workload (Section 3: all
        requested operations must execute).

        Args:
            app: the protected application.
            workload: the operation sequence to complete.
            on_recovery: optional callback invoked with the attempt
                number after each recovery.

        Returns:
            The number of recovery attempts consumed (0 = no failure).

        Raises:
            RecoveryExhausted: when the workload still fails after
                ``max_attempts`` recoveries.
        """
        if not self._prepared:
            self.prepare(app)
        attempts = 0
        while True:
            try:
                workload.run(app)
                return attempts
            except ApplicationCrash as crash:
                if attempts >= self.max_attempts:
                    raise RecoveryExhausted(
                        attempts,
                        f"{self.name}: workload still fails after "
                        f"{attempts} recoveries (last: {crash})",
                    ) from crash
                attempts += 1
                self.recover(app, attempts)
                if on_recovery is not None:
                    on_recovery(attempts)

    @abc.abstractmethod
    def _do_prepare(self, app: MiniApplication) -> None:
        """Technique-specific preparation."""

    @abc.abstractmethod
    def _restore_state(self, app: MiniApplication, attempt: int) -> None:
        """Technique-specific state restoration."""

    def _perturb_environment(self, app: MiniApplication, attempt: int) -> None:
        """Apply the technique's environmental side effects (overridable)."""
        apply_recovery_perturbation(
            app.env,
            self.model,
            app.footprint,
            downtime_seconds=self.downtime_seconds,
        )
