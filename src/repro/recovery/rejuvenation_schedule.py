"""Proactive rejuvenation scheduling (Section 6.2, [Huang95]).

Apache's HUP rejuvenation is the paper's example of an
application-specific defence against leak-style
environment-dependent-nontransient faults: restart before the leak
crosses the failure threshold.  The knob is the rejuvenation interval —
too long and the application crashes anyway; too short and planned
downtime eats the availability the rejuvenation was meant to protect.

:func:`simulate_rejuvenation_schedule` runs that tradeoff
deterministically: a leak accumulates with the request load, an
unplanned crash costs a full repair, a planned rejuvenation costs a
short restart, and the result reports failures, downtime, and
availability for a given interval.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class RejuvenationPolicy:
    """The rejuvenation schedule and its cost model.

    Attributes:
        interval_hours: time between proactive rejuvenations; ``None``
            disables rejuvenation (the baseline).
        rejuvenation_downtime_minutes: planned downtime per rejuvenation.
        crash_repair_hours: unplanned downtime per leak-induced crash.
    """

    interval_hours: float | None
    rejuvenation_downtime_minutes: float = 2.0
    crash_repair_hours: float = 1.0

    def __post_init__(self) -> None:
        if self.interval_hours is not None and self.interval_hours <= 0:
            raise ValueError("interval_hours must be positive (or None)")
        if self.rejuvenation_downtime_minutes < 0 or self.crash_repair_hours < 0:
            raise ValueError("downtimes must be non-negative")


@dataclasses.dataclass(frozen=True)
class LeakModel:
    """How fast the application leaks toward failure.

    Attributes:
        leak_per_request: leaked units per served request.
        failure_threshold: leaked units at which the application crashes.
        requests_per_hour: request load.
    """

    leak_per_request: float = 1.0
    failure_threshold: float = 10_000.0
    requests_per_hour: float = 500.0

    def __post_init__(self) -> None:
        if min(self.leak_per_request, self.failure_threshold, self.requests_per_hour) <= 0:
            raise ValueError("all leak-model parameters must be positive")

    @property
    def hours_to_failure(self) -> float:
        """Uptime hours from a fresh start until the leak kills the app."""
        return self.failure_threshold / (self.leak_per_request * self.requests_per_hour)


@dataclasses.dataclass(frozen=True)
class RejuvenationOutcome:
    """The result of one simulated schedule.

    Attributes:
        duration_hours: simulated service lifetime.
        crashes: unplanned leak-induced failures.
        rejuvenations: planned restarts performed.
        downtime_hours: total planned + unplanned downtime.
    """

    duration_hours: float
    crashes: int
    rejuvenations: int
    downtime_hours: float

    @property
    def availability(self) -> float:
        """Uptime fraction in [0, 1]."""
        if self.duration_hours <= 0:
            return 1.0
        return max(0.0, 1.0 - self.downtime_hours / self.duration_hours)


def simulate_rejuvenation_schedule(
    policy: RejuvenationPolicy,
    leak: LeakModel | None = None,
    *,
    duration_hours: float = 24.0 * 90,
) -> RejuvenationOutcome:
    """Simulate one rejuvenation schedule against one leak model.

    The simulation walks virtual time: the leak accumulates while the
    application is up; whichever comes first — the next scheduled
    rejuvenation or the leak crossing the threshold — resets the leak
    and charges its downtime.

    Args:
        policy: the schedule and cost model.
        leak: the leak model (default: the module defaults).
        duration_hours: simulated lifetime.
    """
    model = leak or LeakModel()
    time_to_failure = model.hours_to_failure

    clock = 0.0
    crashes = 0
    rejuvenations = 0
    downtime = 0.0
    next_rejuvenation = (
        policy.interval_hours if policy.interval_hours is not None else float("inf")
    )
    uptime_since_restart = 0.0

    while clock < duration_hours:
        hours_until_crash = time_to_failure - uptime_since_restart
        hours_until_rejuvenation = next_rejuvenation - clock
        step = min(hours_until_crash, hours_until_rejuvenation, duration_hours - clock)
        clock += step
        uptime_since_restart += step
        if clock >= duration_hours:
            break
        if hours_until_crash <= hours_until_rejuvenation:
            crashes += 1
            downtime += policy.crash_repair_hours
            clock += policy.crash_repair_hours
        else:
            rejuvenations += 1
            downtime += policy.rejuvenation_downtime_minutes / 60.0
            clock += policy.rejuvenation_downtime_minutes / 60.0
        uptime_since_restart = 0.0
        if policy.interval_hours is not None:
            next_rejuvenation = clock + policy.interval_hours

    return RejuvenationOutcome(
        duration_hours=duration_hours,
        crashes=crashes,
        rejuvenations=rejuvenations,
        downtime_hours=min(downtime, duration_hours),
    )


def sweep_rejuvenation_interval(
    intervals_hours: tuple[float | None, ...],
    leak: LeakModel | None = None,
    *,
    rejuvenation_downtime_minutes: float = 2.0,
    crash_repair_hours: float = 1.0,
    duration_hours: float = 24.0 * 90,
) -> list[tuple[float | None, RejuvenationOutcome]]:
    """Sweep the rejuvenation interval, returning (interval, outcome) pairs.

    ``None`` in ``intervals_hours`` runs the no-rejuvenation baseline.
    """
    results = []
    for interval in intervals_hours:
        policy = RejuvenationPolicy(
            interval_hours=interval,
            rejuvenation_downtime_minutes=rejuvenation_downtime_minutes,
            crash_repair_hours=crash_repair_hours,
        )
        results.append(
            (interval, simulate_rejuvenation_schedule(policy, leak, duration_hours=duration_hours))
        )
    return results
