"""Process pairs [Gray86].

A primary process runs the workload while a backup on (conceptually)
another processor mirrors its state through checkpoint messages.  On
primary failure the backup takes over *with the same state* and retries
the same operation on the same code.  Survival therefore requires the
failure to be a Heisenbug: "only a change external to the application
can allow the application to succeed on retry" (Section 2).
"""

from __future__ import annotations

from repro.apps.base import AppCheckpoint, MiniApplication
from repro.classify.recovery_model import PAPER_DEFAULT, RecoveryModel
from repro.errors import RecoveryError
from repro.recovery.base import RecoveryTechnique


class ProcessPairs(RecoveryTechnique):
    """Primary/backup process pair.

    Args:
        model: environmental side effects of failover (defaults to the
            paper's assumptions: processes killed, state preserved).
        max_attempts: failovers tolerated (primary->backup, then a fresh
            backup, ...).
    """

    name = "process-pairs"

    def __init__(
        self,
        model: RecoveryModel = PAPER_DEFAULT,
        *,
        max_attempts: int = 1,
        downtime_seconds: float = 5.0,
    ):
        super().__init__(model, max_attempts=max_attempts, downtime_seconds=downtime_seconds)
        self._backup_state: AppCheckpoint | None = None
        self.failovers = 0

    def checkpoint_message(self, app: MiniApplication) -> None:
        """Send a state checkpoint from primary to backup."""
        self._backup_state = app.snapshot()

    def _do_prepare(self, app: MiniApplication) -> None:
        self.checkpoint_message(app)

    def _restore_state(self, app: MiniApplication, attempt: int) -> None:
        if self._backup_state is None:
            raise RecoveryError("backup never received a checkpoint")
        self.failovers += 1
        app.restore(self._backup_state)
