"""Study-graph adapters for the recovery replay and the §5a sweeps.

Experiment E1 (the five-technique replay) plus the parameter-grid
producers behind the ``sweep.*`` families: one memoized node per grid
point (a single-parameter classic sweep, so its verdicts are identical
to the same point inside the monolithic sweep -- seeds derive per
``(parameter, fault, replication)``, never from scheduling) and one
aggregation node per family rendering the classic sweep table
byte-identically from the point payloads.

Also the canonical home of the technique-name registry the CLI and the
campaign engine share; it used to live as a private dict inside
``repro.cli``.
"""

from __future__ import annotations

from typing import Any, Mapping, TYPE_CHECKING

from repro.bugdb.enums import FaultClass
from repro.recovery import (
    CheckpointRollback,
    ProcessPairs,
    ProgressiveRetry,
    RestartFresh,
    SoftwareRejuvenation,
    replay_study,
)
from repro.recovery.campaign import SweepPoint, sweep_race_window, sweep_retry_budget
from repro.recovery.rejuvenation_schedule import (
    LeakModel,
    RejuvenationPolicy,
    simulate_rejuvenation_schedule,
)
from repro.reports.tableformat import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.studygraph.context import StudyContext

#: CLI technique names, in the paper's presentation order.
TECHNIQUES = {
    "process-pairs": ProcessPairs,
    "checkpoint-rollback": CheckpointRollback,
    "progressive-retry": ProgressiveRetry,
    "restart-fresh": RestartFresh,
    "software-rejuvenation": SoftwareRejuvenation,
}

#: Default ``techniques`` param for the E1 node (comma-joined names).
ALL_TECHNIQUES = ",".join(TECHNIQUES)


def technique_factory(name: str) -> Any:
    """Resolve one technique name.

    Raises:
        KeyError: unknown name (callers render their own error message).
    """
    return TECHNIQUES[name]


def e1_replay(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Experiment E1: deterministic replay under recovery techniques.

    Params:
        techniques: comma-joined technique names, replayed in order.
    """
    names = params["techniques"].split(",")
    rows = []
    rates: dict[str, float] = {}
    for name in names:
        try:
            factory = TECHNIQUES[name]
        except KeyError:
            raise ValueError(
                f"unknown technique {name!r}; choose from " + ", ".join(TECHNIQUES)
            ) from None
        report = replay_study(ctx.study, factory)
        rates[report.technique] = report.survival_rate()
        rows.append(
            [
                report.technique,
                f"{report.survival_rate(FaultClass.ENV_INDEPENDENT):.0%}",
                f"{report.survival_rate(FaultClass.ENV_DEP_NONTRANSIENT):.0%}",
                f"{report.survival_rate(FaultClass.ENV_DEP_TRANSIENT):.0%}",
                f"{report.survival_rate():.1%}",
            ]
        )
    text = format_table(
        ["technique", "EI", "EDN", "EDT", "overall"],
        rows,
        title="Recovery replay over all 139 study faults",
    )
    return {"overall_rates": rates, "text": text}


# -- §5a sweep grids ------------------------------------------------------ #

#: Default retry budgets for the ``sweep.retry-budget`` grid family.
RETRY_BUDGETS: tuple[int, ...] = (1, 2, 3, 4, 6, 8)

#: Default race-window widths for the ``sweep.race-window`` grid family.
RACE_WINDOWS: tuple[float, ...] = (0.05, 0.1, 0.25, 0.5, 0.75, 0.95)

#: Fixed race window for the retry-budget family (the classic default).
SWEEP_RACE_WINDOW = 0.25

#: Replications per (parameter, fault) pair in both replay sweeps.
SWEEP_REPLICATIONS = 5

#: Technique the replay sweeps exercise (must accept ``max_attempts``).
SWEEP_TECHNIQUE = "checkpoint-rollback"

#: Rejuvenation intervals for the ``sweep.rejuvenation`` family; None is
#: the never-rejuvenate baseline.  Declared order is the table order.
REJUVENATION_INTERVALS: tuple[float | None, ...] = (
    None, 0.5, 2.0, 8.0, 15.0, 19.0, 30.0
)

#: Planned-downtime axis (minutes per rejuvenation) for the same family.
REJUVENATION_DOWNTIMES: tuple[float, ...] = (1.0, 2.0, 5.0, 10.0, 20.0, 45.0, 90.0)

#: The downtime slice the aggregation table renders (the classic
#: example's 10-minute HUP restart).
REJUVENATION_TABLE_DOWNTIME = 10.0

#: Fixed leak model + horizon for the rejuvenation family (the classic
#: example: the leak kills httpd after 20 h of uptime; 90-day horizon).
REJUVENATION_FIXED_PARAMS: dict[str, float] = {
    "leak_per_request": 1.0,
    "failure_threshold": 10_000.0,
    "requests_per_hour": 500.0,
    "crash_repair_hours": 1.0,
    "duration_hours": 24.0 * 90,
}


def _sweep_point_payload(point: SweepPoint) -> dict[str, Any]:
    return {
        "parameter": point.parameter,
        "survived": point.survived,
        "total": point.total,
        "survival_rate": point.survival_rate,
    }


def sweep_retry_budget_point(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """One retry-budget grid point: the classic sweep at a single budget.

    Seeds derive per ``(budget, fault, replication)``, so this point's
    verdicts are bit-identical to the same budget inside the monolithic
    sweep -- the aggregation node reassembles the classic table from
    point payloads without re-running anything.
    """
    factory = TECHNIQUES[params["technique"]]
    point = sweep_retry_budget(
        ctx.study,
        lambda budget: factory(max_attempts=budget),
        budgets=(int(params["budget"]),),
        race_window=params["race_window"],
        replications=params["replications"],
    )[0]
    payload = _sweep_point_payload(point)
    payload["text"] = (
        f"retry budget {int(point.parameter)}: {point.survived}/{point.total} "
        f"timing faults survived ({point.survival_rate:.0%})"
    )
    return payload


def sweep_race_window_point(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """One race-window grid point: the classic sweep at a single width."""
    factory = TECHNIQUES[params["technique"]]
    point = sweep_race_window(
        ctx.study,
        factory,
        windows=(params["window"],),
        replications=params["replications"],
    )[0]
    payload = _sweep_point_payload(point)
    payload["text"] = (
        f"race window {point.parameter:g}: {point.survived}/{point.total} "
        f"timing faults survived ({point.survival_rate:.0%})"
    )
    return payload


def sweep_rejuvenation_point(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """One rejuvenation grid point: one (interval, downtime) simulation."""
    interval = params["interval_hours"]
    policy = RejuvenationPolicy(
        interval_hours=interval,
        rejuvenation_downtime_minutes=params["downtime_minutes"],
        crash_repair_hours=params["crash_repair_hours"],
    )
    leak = LeakModel(
        leak_per_request=params["leak_per_request"],
        failure_threshold=params["failure_threshold"],
        requests_per_hour=params["requests_per_hour"],
    )
    outcome = simulate_rejuvenation_schedule(
        policy, leak, duration_hours=params["duration_hours"]
    )
    schedule = "never (baseline)" if interval is None else f"every {interval:g} h"
    return {
        "interval_hours": interval,
        "downtime_minutes": params["downtime_minutes"],
        "crashes": outcome.crashes,
        "rejuvenations": outcome.rejuvenations,
        "downtime_hours": outcome.downtime_hours,
        "availability": outcome.availability,
        "text": (
            f"{schedule} (restart {params['downtime_minutes']:g} min): "
            f"{outcome.crashes} crashes, {outcome.rejuvenations} rejuvenations, "
            f"{outcome.availability:.4%} available"
        ),
    }


def render_retry_budget_table(
    points: list[SweepPoint], *, race_window: float
) -> str:
    """The classic retry-budget sweep table (shared, byte-stable render)."""
    return format_table(
        ["retry budget", "timing faults survived", "survival rate"],
        [
            [
                int(point.parameter),
                f"{point.survived}/{point.total}",
                f"{point.survival_rate:.0%}",
            ]
            for point in points
        ],
        title=f"Retry-budget sweep (race window {race_window:g})",
    )


def render_race_window_table(points: list[SweepPoint], *, retries: int) -> str:
    """The classic race-window sweep table (shared, byte-stable render)."""
    return format_table(
        ["race window", "timing faults survived", "survival rate"],
        [
            [
                point.parameter,
                f"{point.survived}/{point.total}",
                f"{point.survival_rate:.0%}",
            ]
            for point in points
        ],
        title=f"Race-window sweep ({retries} retries)",
    )


def render_rejuvenation_table(
    results: list[tuple[float | None, Any]],
    *,
    hours_to_failure: float,
    duration_hours: float,
) -> str:
    """The classic rejuvenation-schedule table (shared, byte-stable render).

    ``results`` pairs each interval with an outcome exposing
    ``crashes`` / ``rejuvenations`` / ``downtime_hours`` /
    ``availability`` (the simulator's outcome or a point payload proxy).
    """
    rows = []
    for interval, outcome in results:
        rows.append(
            [
                "never (baseline)" if interval is None else f"every {interval:g} h",
                outcome.crashes,
                outcome.rejuvenations,
                f"{outcome.downtime_hours:.1f} h",
                f"{outcome.availability:.4%}",
            ]
        )
    return format_table(
        ["schedule", "crashes", "rejuvenations", "downtime", "availability"],
        rows,
        title=(
            f"{duration_hours / 24.0:g} days of a leaking server "
            f"(leak kills httpd after {hours_to_failure:g} h of uptime)"
        ),
    )


def _points_by_parameter(inputs: Mapping[str, Any]) -> dict[float, SweepPoint]:
    points: dict[float, SweepPoint] = {}
    for payload in inputs.values():
        point = SweepPoint(
            parameter=float(payload["parameter"]),
            survived=int(payload["survived"]),
            total=int(payload["total"]),
        )
        points[point.parameter] = point
    return points


def sweep_retry_budget_table(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Aggregation node: the classic retry-budget table from grid points."""
    by_budget = _points_by_parameter(inputs)
    points = [by_budget[float(budget)] for budget in RETRY_BUDGETS]
    text = render_retry_budget_table(points, race_window=params["race_window"])
    return {
        "points": [_sweep_point_payload(point) for point in points],
        "text": text,
    }


def sweep_race_window_table(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Aggregation node: the classic race-window table from grid points."""
    by_window = _points_by_parameter(inputs)
    points = [by_window[float(window)] for window in RACE_WINDOWS]
    retries = TECHNIQUES[params["technique"]]().max_attempts
    text = render_race_window_table(points, retries=retries)
    return {
        "points": [_sweep_point_payload(point) for point in points],
        "text": text,
    }


class _OutcomeProxy:
    """Adapts a rejuvenation point payload to the renderer's outcome shape."""

    def __init__(self, payload: Mapping[str, Any]) -> None:
        self.crashes = int(payload["crashes"])
        self.rejuvenations = int(payload["rejuvenations"])
        self.downtime_hours = float(payload["downtime_hours"])
        self.availability = float(payload["availability"])


def sweep_rejuvenation_table(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Aggregation node over the full (interval x downtime) grid.

    The rendered table is the classic example's slice (the
    ``REJUVENATION_TABLE_DOWNTIME``-minute restart); the payload also
    carries the whole availability surface for downstream consumers.
    """
    table_downtime = params["table_downtime_minutes"]
    surface: dict[str, dict[str, Any]] = {}
    slice_results: list[tuple[float | None, _OutcomeProxy]] = []
    by_key = {
        (payload["interval_hours"], payload["downtime_minutes"]): payload
        for payload in inputs.values()
    }
    for downtime in REJUVENATION_DOWNTIMES:
        for interval in REJUVENATION_INTERVALS:
            payload = by_key[(interval, downtime)]
            label = (
                f"{'none' if interval is None else format(interval, 'g')}"
                f"@{downtime:g}min"
            )
            surface[label] = {
                "interval_hours": interval,
                "downtime_minutes": downtime,
                "availability": payload["availability"],
                "crashes": payload["crashes"],
                "rejuvenations": payload["rejuvenations"],
            }
            if downtime == table_downtime:
                slice_results.append((interval, _OutcomeProxy(payload)))
    leak = LeakModel(
        leak_per_request=REJUVENATION_FIXED_PARAMS["leak_per_request"],
        failure_threshold=REJUVENATION_FIXED_PARAMS["failure_threshold"],
        requests_per_hour=REJUVENATION_FIXED_PARAMS["requests_per_hour"],
    )
    text = render_rejuvenation_table(
        slice_results,
        hours_to_failure=leak.hours_to_failure,
        duration_hours=REJUVENATION_FIXED_PARAMS["duration_hours"],
    )
    return {"surface": surface, "text": text}
