"""Study-graph adapter for the recovery replay (experiment E1).

Also the canonical home of the technique-name registry the CLI and the
campaign engine share; it used to live as a private dict inside
``repro.cli``.
"""

from __future__ import annotations

from typing import Any, Mapping, TYPE_CHECKING

from repro.bugdb.enums import FaultClass
from repro.recovery import (
    CheckpointRollback,
    ProcessPairs,
    ProgressiveRetry,
    RestartFresh,
    SoftwareRejuvenation,
    replay_study,
)
from repro.reports.tableformat import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.studygraph.context import StudyContext

#: CLI technique names, in the paper's presentation order.
TECHNIQUES = {
    "process-pairs": ProcessPairs,
    "checkpoint-rollback": CheckpointRollback,
    "progressive-retry": ProgressiveRetry,
    "restart-fresh": RestartFresh,
    "software-rejuvenation": SoftwareRejuvenation,
}

#: Default ``techniques`` param for the E1 node (comma-joined names).
ALL_TECHNIQUES = ",".join(TECHNIQUES)


def technique_factory(name: str) -> Any:
    """Resolve one technique name.

    Raises:
        KeyError: unknown name (callers render their own error message).
    """
    return TECHNIQUES[name]


def e1_replay(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Experiment E1: deterministic replay under recovery techniques.

    Params:
        techniques: comma-joined technique names, replayed in order.
    """
    names = params["techniques"].split(",")
    rows = []
    rates: dict[str, float] = {}
    for name in names:
        try:
            factory = TECHNIQUES[name]
        except KeyError:
            raise ValueError(
                f"unknown technique {name!r}; choose from " + ", ".join(TECHNIQUES)
            ) from None
        report = replay_study(ctx.study, factory)
        rates[report.technique] = report.survival_rate()
        rows.append(
            [
                report.technique,
                f"{report.survival_rate(FaultClass.ENV_INDEPENDENT):.0%}",
                f"{report.survival_rate(FaultClass.ENV_DEP_NONTRANSIENT):.0%}",
                f"{report.survival_rate(FaultClass.ENV_DEP_TRANSIENT):.0%}",
                f"{report.survival_rate():.1%}",
            ]
        )
    text = format_table(
        ["technique", "EI", "EDN", "EDT", "overall"],
        rows,
        title="Recovery replay over all 139 study faults",
    )
    return {"overall_rates": rates, "text": text}
