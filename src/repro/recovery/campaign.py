"""Parameter-sweep campaigns over the replay experiment.

Two sweeps the replay makes natural:

* **retry budget** -- how transient-fault survival grows with the number
  of recovery attempts (races re-fire with probability ``race_window``
  per retry, so survival approaches 1 geometrically);
* **race window** -- how survival degrades as the racy interleaving
  window widens.

Both isolate the timing-triggered faults, the only place where retry
count matters; deterministic environmental repairs either work on the
first perturbed retry or never.

Both sweeps run on the :mod:`repro.harness` campaign engine: pass
``workers=N`` to shard the replays across processes, ``journal=`` to
make an interrupted sweep resumable.  Seeds are derived per
``(parameter, fault, replication)`` unit, so verdicts are identical for
any worker count.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

from repro.bugdb.enums import TriggerKind
from repro.corpus.loader import StudyData
from repro.corpus.studyspec import StudyFault
from repro.envmodel.environment import Environment
from repro.recovery.base import RecoveryTechnique
from repro.recovery.driver import run_replay_attempts
from repro.rng import DEFAULT_SEED

TIMING_TRIGGERS = frozenset(
    {
        TriggerKind.RACE_CONDITION,
        TriggerKind.SIGNAL_TIMING,
        TriggerKind.WORKLOAD_TIMING,
        TriggerKind.UNKNOWN_TRANSIENT,
    }
)


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One point of a campaign sweep.

    Attributes:
        parameter: the swept value (attempts or window).
        survived: timing faults survived at this point.
        total: timing-fault replays at this point.
    """

    parameter: float
    survived: int
    total: int

    @property
    def survival_rate(self) -> float:
        if self.total == 0:
            return 0.0
        return self.survived / self.total


def timing_faults(study: StudyData) -> list[StudyFault]:
    """The study faults whose defects are timing-triggered."""
    return [fault for fault in study.all_faults() if fault.trigger in TIMING_TRIGGERS]


def _replay_timing_fault(
    fault: StudyFault,
    technique: RecoveryTechnique,
    *,
    race_window: float,
    seed: int,
) -> bool:
    """Replay one timing fault with an overridden race window.

    A thin wrapper over the driver's shared inject->fail->retry core
    (:func:`repro.recovery.driver.run_replay_attempts`): the only sweep
    specifics are the raw per-unit seed and the window override.

    Returns:
        Whether a retry completed the workload.
    """
    _, survived, _ = run_replay_attempts(
        fault, technique, env=Environment(seed=seed), race_window=race_window
    )
    return survived


def sweep_retry_budget(
    study: StudyData,
    technique_factory: Callable[[int], RecoveryTechnique],
    *,
    budgets: Sequence[int] = (1, 2, 3, 4, 6, 8),
    race_window: float = 0.25,
    replications: int = 5,
    seed: int = DEFAULT_SEED,
    workers: int | None = None,
    journal: str | None = None,
) -> list[SweepPoint]:
    """Sweep the recovery-attempt budget over the timing faults.

    Args:
        study: the curated study.
        technique_factory: builds a technique given ``max_attempts``.
        budgets: attempt budgets to sweep.
        race_window: racy-window width for every defect.
        replications: independent seeds per (fault, budget) pair.
        seed: base seed.
        workers: worker processes (default: in-process serial execution).
        journal: optional JSONL run-log path for resumable sweeps.
    """
    from repro.harness.campaigns import run_sweep_retry_budget

    return run_sweep_retry_budget(
        study,
        technique_factory,
        budgets=budgets,
        race_window=race_window,
        replications=replications,
        seed=seed,
        workers=1 if workers is None else workers,
        journal_path=journal,
    )


def sweep_race_window(
    study: StudyData,
    technique_factory: Callable[[], RecoveryTechnique],
    *,
    windows: Sequence[float] = (0.05, 0.1, 0.25, 0.5, 0.75, 0.95),
    replications: int = 5,
    seed: int = DEFAULT_SEED,
    workers: int | None = None,
    journal: str | None = None,
) -> list[SweepPoint]:
    """Sweep the racy-window width over the timing faults."""
    from repro.harness.campaigns import run_sweep_race_window

    return run_sweep_race_window(
        study,
        technique_factory,
        windows=windows,
        replications=replications,
        seed=seed,
        workers=1 if workers is None else workers,
        journal_path=journal,
    )
