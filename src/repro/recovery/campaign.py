"""Parameter-sweep campaigns over the replay experiment.

Two sweeps the replay makes natural:

* **retry budget** -- how transient-fault survival grows with the number
  of recovery attempts (races re-fire with probability ``race_window``
  per retry, so survival approaches 1 geometrically);
* **race window** -- how survival degrades as the racy interleaving
  window widens.

Both isolate the timing-triggered faults, the only place where retry
count matters; deterministic environmental repairs either work on the
first perturbed retry or never.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

from repro.apps.faults import InjectedDefect
from repro.apps.registry import make_application
from repro.apps.workload import workload_for_fault
from repro.bugdb.enums import TriggerKind
from repro.corpus.loader import StudyData
from repro.corpus.studyspec import StudyFault
from repro.envmodel.environment import Environment
from repro.errors import ApplicationCrash
from repro.recovery.base import RecoveryTechnique
from repro.rng import DEFAULT_SEED, derive_seed

TIMING_TRIGGERS = frozenset(
    {
        TriggerKind.RACE_CONDITION,
        TriggerKind.SIGNAL_TIMING,
        TriggerKind.WORKLOAD_TIMING,
        TriggerKind.UNKNOWN_TRANSIENT,
    }
)


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One point of a campaign sweep.

    Attributes:
        parameter: the swept value (attempts or window).
        survived: timing faults survived at this point.
        total: timing-fault replays at this point.
    """

    parameter: float
    survived: int
    total: int

    @property
    def survival_rate(self) -> float:
        if self.total == 0:
            return 0.0
        return self.survived / self.total


def timing_faults(study: StudyData) -> list[StudyFault]:
    """The study faults whose defects are timing-triggered."""
    return [fault for fault in study.all_faults() if fault.trigger in TIMING_TRIGGERS]


def _replay_timing_fault(
    fault: StudyFault,
    technique: RecoveryTechnique,
    *,
    race_window: float,
    seed: int,
) -> bool:
    """Replay one timing fault with an overridden race window.

    Returns:
        Whether a retry completed the workload.
    """
    env = Environment(seed=seed)
    app = make_application(fault.application, env)
    defect = InjectedDefect(fault, race_window=race_window)
    app.injector.inject(defect)
    defect.arm(env, app)
    workload = workload_for_fault(fault)
    technique.prepare(app)
    try:
        workload.run(app)
        return True  # cannot happen: first run is forced to fire
    except ApplicationCrash:
        pass
    for attempt in range(1, technique.max_attempts + 1):
        technique.recover(app, attempt)
        try:
            workload.run(app)
            return True
        except ApplicationCrash:
            continue
    return False


def sweep_retry_budget(
    study: StudyData,
    technique_factory: Callable[[int], RecoveryTechnique],
    *,
    budgets: Sequence[int] = (1, 2, 3, 4, 6, 8),
    race_window: float = 0.25,
    replications: int = 5,
    seed: int = DEFAULT_SEED,
) -> list[SweepPoint]:
    """Sweep the recovery-attempt budget over the timing faults.

    Args:
        study: the curated study.
        technique_factory: builds a technique given ``max_attempts``.
        budgets: attempt budgets to sweep.
        race_window: racy-window width for every defect.
        replications: independent seeds per (fault, budget) pair.
        seed: base seed.
    """
    faults = timing_faults(study)
    points = []
    for budget in budgets:
        survived = 0
        total = 0
        for fault in faults:
            for replication in range(replications):
                run_seed = derive_seed(seed, f"budget:{budget}:{fault.fault_id}:{replication}")
                technique = technique_factory(budget)
                if _replay_timing_fault(
                    fault, technique, race_window=race_window, seed=run_seed
                ):
                    survived += 1
                total += 1
        points.append(SweepPoint(parameter=float(budget), survived=survived, total=total))
    return points


def sweep_race_window(
    study: StudyData,
    technique_factory: Callable[[], RecoveryTechnique],
    *,
    windows: Sequence[float] = (0.05, 0.1, 0.25, 0.5, 0.75, 0.95),
    replications: int = 5,
    seed: int = DEFAULT_SEED,
) -> list[SweepPoint]:
    """Sweep the racy-window width over the timing faults."""
    faults = timing_faults(study)
    points = []
    for window in windows:
        survived = 0
        total = 0
        for fault in faults:
            for replication in range(replications):
                run_seed = derive_seed(seed, f"window:{window}:{fault.fault_id}:{replication}")
                technique = technique_factory()
                if _replay_timing_fault(
                    fault, technique, race_window=window, seed=run_seed
                ):
                    survived += 1
                total += 1
        points.append(SweepPoint(parameter=window, survived=survived, total=total))
    return points
