"""Replay driver: the paper's proposed end-to-end check, executed.

For every curated study fault: build the matching mini application in a
fresh simulated environment, inject the fault as a defect, arm the
triggering condition the bug report describes, let the recovery
technique prepare, drive the workload to failure, then let the technique
recover and retry until it survives or exhausts its budget.

The paper's hypothesis test becomes measurable: environment-independent
faults should never survive generic recovery, environment-dependent-
nontransient faults should rarely survive, and environment-dependent-
transient faults should usually survive.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro import obs
from repro.apps.faults import InjectedDefect
from repro.apps.registry import make_application
from repro.apps.workload import workload_for_fault
from repro.bugdb.enums import FaultClass
from repro.corpus.loader import StudyData
from repro.corpus.studyspec import StudyFault
from repro.envmodel.environment import Environment
from repro.errors import ApplicationCrash
from repro.recovery.base import RecoveryTechnique
from repro.rng import DEFAULT_SEED, derive_seed

TechniqueFactory = Callable[[], RecoveryTechnique]


@dataclasses.dataclass(frozen=True)
class FaultReplayOutcome:
    """The result of replaying one fault under one technique.

    Attributes:
        fault_id: the study fault replayed.
        fault_class: its ground-truth class.
        technique: the recovery technique's name.
        triggered: whether the injected defect fired on the first run
            (it always should; False flags a harness problem).
        survived: whether a retry completed the workload.
        attempts_used: recovery attempts consumed (0 if never triggered).
    """

    fault_id: str
    fault_class: FaultClass
    technique: str
    triggered: bool
    survived: bool
    attempts_used: int


@dataclasses.dataclass(frozen=True)
class ReplayReport:
    """Aggregated replay results for one technique over a study."""

    technique: str
    outcomes: tuple[FaultReplayOutcome, ...]

    def survival_rate(self, fault_class: FaultClass | None = None) -> float:
        """Fraction of (triggered) faults survived, optionally per class."""
        relevant = [
            outcome
            for outcome in self.outcomes
            if outcome.triggered
            and (fault_class is None or outcome.fault_class is fault_class)
        ]
        if not relevant:
            return 0.0
        return sum(outcome.survived for outcome in relevant) / len(relevant)

    def survived_count(self, fault_class: FaultClass | None = None) -> int:
        """Number of faults survived, optionally per class."""
        return sum(
            outcome.survived
            for outcome in self.outcomes
            if fault_class is None or outcome.fault_class is fault_class
        )

    def total(self, fault_class: FaultClass | None = None) -> int:
        """Number of faults replayed, optionally per class."""
        return sum(
            1
            for outcome in self.outcomes
            if fault_class is None or outcome.fault_class is fault_class
        )


def run_replay_attempts(
    fault: StudyFault,
    technique: RecoveryTechnique,
    *,
    env: Environment,
    race_window: float | None = None,
) -> tuple[bool, bool, int]:
    """The shared inject -> fail -> recover -> retry core.

    Builds the fault's application in ``env``, injects and arms the
    defect (with ``race_window`` overriding the racy-window width when
    given), drives the workload to failure, then retries under the
    technique until it survives or exhausts its budget.  Callers own the
    environment (seeding, DNS records) so campaign variants can differ
    only in setup.

    Returns:
        ``(triggered, survived, attempts_used)``; ``triggered`` is False
        only if the defect failed to fire on the first run.
    """
    with obs.span(
        f"replay:{fault.fault_id}", technique=technique.name
    ) as replay_span:
        app = make_application(fault.application, env)
        if race_window is None:
            defect = InjectedDefect(fault)
        else:
            defect = InjectedDefect(fault, race_window=race_window)
        app.injector.inject(defect)
        defect.arm(env, app)

        workload = workload_for_fault(fault)
        technique.prepare(app)

        try:
            workload.run(app)
        except ApplicationCrash:
            pass
        else:
            replay_span.set(triggered=False, survived=True, attempts=0)
            return (False, True, 0)

        survived = False
        attempts_used = 0
        for attempt in range(1, technique.max_attempts + 1):
            attempts_used = attempt
            technique.recover(app, attempt)
            try:
                workload.run(app)
            except ApplicationCrash:
                continue
            survived = True
            break
        replay_span.set(triggered=True, survived=survived, attempts=attempts_used)
        return (True, survived, attempts_used)


def replay_fault(
    fault: StudyFault,
    technique: RecoveryTechnique,
    *,
    seed: int = DEFAULT_SEED,
) -> FaultReplayOutcome:
    """Replay one study fault under one recovery technique.

    Returns:
        The outcome; ``triggered`` is False only if the injected defect
        failed to fire on the first run, which indicates a harness bug.
    """
    env = Environment(seed=derive_seed(seed, f"replay:{fault.fault_id}"))
    # Reverse record for the default client so healthy DNS paths work.
    env.dns.add_record("client.example.net", "10.0.0.99")
    env.dns.add_record("client5.example.net", "10.0.0.5")
    triggered, survived, attempts_used = run_replay_attempts(
        fault, technique, env=env
    )
    return FaultReplayOutcome(
        fault_id=fault.fault_id,
        fault_class=fault.fault_class,
        technique=technique.name,
        triggered=triggered,
        survived=survived,
        attempts_used=attempts_used,
    )


def replay_study(
    study: StudyData,
    technique_factory: TechniqueFactory,
    *,
    seed: int = DEFAULT_SEED,
    workers: int | None = None,
    journal: str | None = None,
) -> ReplayReport:
    """Replay every study fault under fresh instances of one technique.

    Runs on the :mod:`repro.harness` campaign engine; verdicts are
    bit-identical for any worker count (seeds are derived per fault,
    never from scheduling), so ``workers`` only changes wall time.

    Args:
        study: the full curated study.
        technique_factory: builds a fresh technique per fault (techniques
            hold per-run state such as checkpoints).
        seed: base seed; per-fault seeds are derived from it.
        workers: worker processes (default: in-process serial execution).
        journal: optional JSONL run-log path; an interrupted campaign
            rerun with the same journal resumes without recomputation.
    """
    from repro.harness.campaigns import run_replay_study

    return run_replay_study(
        study,
        technique_factory,
        seed=seed,
        workers=1 if workers is None else workers,
        journal_path=journal,
    )
