"""Checkpoint/rollback-retry recovery [Elnozahy99, Huang93].

Periodically checkpoint all application state; on failure, roll back to
the latest checkpoint and re-execute.  Multiple retries are standard;
each retry re-encounters the environment as recovery left it.
"""

from __future__ import annotations

from repro.apps.base import MiniApplication
from repro.classify.recovery_model import PAPER_DEFAULT, RecoveryModel
from repro.recovery.base import RecoveryTechnique
from repro.recovery.checkpoint import CheckpointStore


class CheckpointRollback(RecoveryTechnique):
    """Rollback-recovery from a checkpoint store.

    Args:
        model: environmental side effects of a recovery attempt.
        max_attempts: rollback-retry budget.
        checkpoint_capacity: checkpoints retained.
    """

    name = "checkpoint-rollback"

    def __init__(
        self,
        model: RecoveryModel = PAPER_DEFAULT,
        *,
        max_attempts: int = 3,
        downtime_seconds: float = 30.0,
        checkpoint_capacity: int = 4,
    ):
        super().__init__(model, max_attempts=max_attempts, downtime_seconds=downtime_seconds)
        self.store = CheckpointStore(capacity=checkpoint_capacity)
        self.rollbacks = 0

    def checkpoint(self, app: MiniApplication) -> None:
        """Take a periodic checkpoint."""
        self.store.take(app)

    def _do_prepare(self, app: MiniApplication) -> None:
        self.store.take(app)

    def _restore_state(self, app: MiniApplication, attempt: int) -> None:
        self.rollbacks += 1
        app.restore(self.store.latest())
