"""Availability modelling on top of the replay results.

An extension in the spirit of the paper's motivation ("making computers
dependable"): given how a recovery technique fares against each study
fault (from :func:`~repro.recovery.driver.replay_study`), simulate a
long-running service where faults arrive randomly drawn from the study
population, and measure the availability the technique delivers.

Faults the technique survives cost its recovery downtime (attempts x
per-attempt downtime); faults it cannot survive page an operator and
cost the manual repair time.  The simulation makes the paper's bottom
line vivid: a generic-recovery system's availability is dominated by the
85-95% of faults it cannot survive.
"""

from __future__ import annotations

import dataclasses

from repro.recovery.driver import ReplayReport
from repro.rng import DEFAULT_SEED, make_rng


@dataclasses.dataclass(frozen=True)
class AvailabilityParameters:
    """Timing parameters for the availability simulation.

    Attributes:
        mean_time_between_faults_hours: mean fault inter-arrival time
            (exponentially distributed).
        recovery_attempt_seconds: downtime per automatic recovery attempt.
        manual_repair_hours: downtime when the technique fails and an
            operator must repair/patch.
    """

    mean_time_between_faults_hours: float = 24.0 * 7
    recovery_attempt_seconds: float = 30.0
    manual_repair_hours: float = 4.0

    def __post_init__(self) -> None:
        if self.mean_time_between_faults_hours <= 0:
            raise ValueError("mean_time_between_faults_hours must be positive")
        if self.recovery_attempt_seconds < 0 or self.manual_repair_hours < 0:
            raise ValueError("downtimes must be non-negative")


@dataclasses.dataclass(frozen=True)
class AvailabilityResult:
    """The outcome of one availability simulation.

    Attributes:
        technique: the recovery technique simulated.
        simulated_hours: total simulated wall-clock time.
        uptime_hours: time the service was up.
        fault_arrivals: faults that occurred.
        automatic_recoveries: faults survived by the technique.
        manual_repairs: faults that required operator intervention.
    """

    technique: str
    simulated_hours: float
    uptime_hours: float
    fault_arrivals: int
    automatic_recoveries: int
    manual_repairs: int

    @property
    def availability(self) -> float:
        """Uptime fraction in [0, 1]."""
        if self.simulated_hours == 0:
            return 1.0
        return self.uptime_hours / self.simulated_hours

    @property
    def nines(self) -> float:
        """Availability expressed as a count of nines (capped at 9)."""
        import math

        unavailability = 1.0 - self.availability
        if unavailability <= 0:
            return 9.0
        return min(9.0, -math.log10(unavailability))


def simulate_availability(
    report: ReplayReport,
    *,
    parameters: AvailabilityParameters | None = None,
    duration_hours: float = 24.0 * 365 * 5,
    seed: int = DEFAULT_SEED,
) -> AvailabilityResult:
    """Simulate a long-running service under one technique's replay results.

    Faults arrive as a Poisson process; each arrival is a uniform draw
    from the study's (triggered) faults, and costs downtime according to
    the technique's replay outcome for that exact fault.

    Args:
        report: per-fault outcomes from ``replay_study``.
        parameters: timing parameters.
        duration_hours: simulated service lifetime.
        seed: deterministic simulation seed.

    Returns:
        The availability result.

    Raises:
        ValueError: if the report contains no triggered outcomes.
    """
    params = parameters or AvailabilityParameters()
    outcomes = [outcome for outcome in report.outcomes if outcome.triggered]
    if not outcomes:
        raise ValueError("replay report has no triggered faults to sample")

    # Common random numbers: the stream depends only on the seed, so two
    # techniques simulated with the same seed see the *same* fault
    # arrival times and the same fault draws -- differences in the
    # results are then differences between the techniques, not sampling
    # noise (the replay reports list the same faults in the same order).
    rng = make_rng(seed, "availability")
    clock_hours = 0.0
    downtime_hours = 0.0
    arrivals = 0
    automatic = 0
    manual = 0

    while True:
        clock_hours += rng.expovariate(1.0 / params.mean_time_between_faults_hours)
        if clock_hours >= duration_hours:
            break
        arrivals += 1
        outcome = outcomes[rng.randrange(len(outcomes))]
        if outcome.survived:
            automatic += 1
            downtime_hours += (
                outcome.attempts_used * params.recovery_attempt_seconds / 3600.0
            )
        else:
            manual += 1
            # The failed automatic attempts are spent before the page.
            downtime_hours += (
                outcome.attempts_used * params.recovery_attempt_seconds / 3600.0
                + params.manual_repair_hours
            )

    return AvailabilityResult(
        technique=report.technique,
        simulated_hours=duration_hours,
        uptime_hours=duration_hours - min(downtime_hours, duration_hours),
        fault_arrivals=arrivals,
        automatic_recoveries=automatic,
        manual_repairs=manual,
    )
