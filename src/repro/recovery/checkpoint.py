"""Checkpoint storage for rollback-style recovery.

A truly generic recovery mechanism "must preserve all application state
(e.g. by checkpointing or logging)" (Section 2); the store keeps full
:class:`~repro.apps.base.AppCheckpoint` snapshots with bounded history.
"""

from __future__ import annotations

from repro.apps.base import AppCheckpoint, MiniApplication
from repro.errors import RecoveryError


class CheckpointStore:
    """Bounded stack of application checkpoints.

    Args:
        capacity: checkpoints retained; older ones are discarded.
    """

    def __init__(self, capacity: int = 4):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._checkpoints: list[AppCheckpoint] = []

    def __len__(self) -> int:
        return len(self._checkpoints)

    def take(self, app: MiniApplication) -> AppCheckpoint:
        """Snapshot the application and retain the checkpoint."""
        checkpoint = app.snapshot()
        self._checkpoints.append(checkpoint)
        if len(self._checkpoints) > self.capacity:
            self._checkpoints.pop(0)
        return checkpoint

    def latest(self) -> AppCheckpoint:
        """The most recent checkpoint.

        Raises:
            RecoveryError: if no checkpoint was ever taken.
        """
        if not self._checkpoints:
            raise RecoveryError("no checkpoint available")
        return self._checkpoints[-1]

    def rollback_one(self) -> AppCheckpoint:
        """Discard the newest checkpoint and return the one beneath it.

        Used by escalating strategies that suspect the latest checkpoint
        already contains the corrupted state.  The last remaining
        checkpoint is never discarded.
        """
        if not self._checkpoints:
            raise RecoveryError("no checkpoint available")
        if len(self._checkpoints) > 1:
            self._checkpoints.pop()
        return self._checkpoints[-1]
