"""Progressive retry [Wang93].

Escalating recovery: early attempts change as little as possible (replay
with a fresh message/thread ordering only), later attempts apply the
full environmental perturbation and wait longer.  The paper cites this
as a technique that "increases the chance that an environment-dependent
fault will experience a different operating environment ... during
recovery" -- it never converts environment-independent faults.
"""

from __future__ import annotations

from repro.apps.base import MiniApplication
from repro.classify.recovery_model import PAPER_DEFAULT, RecoveryModel
from repro.envmodel.perturb import apply_recovery_perturbation
from repro.recovery.base import RecoveryTechnique
from repro.recovery.checkpoint import CheckpointStore


class ProgressiveRetry(RecoveryTechnique):
    """Checkpoint rollback with escalating perturbation.

    Attempt 1 reorders events only (scheduler reseed); attempt 2 applies
    the full recovery-model perturbation; later attempts also scale the
    downtime, giving slow external conditions more time to clear.

    Args:
        model: side effects applied from attempt 2 onward.
        max_attempts: total retry budget.
    """

    name = "progressive-retry"

    def __init__(
        self,
        model: RecoveryModel = PAPER_DEFAULT,
        *,
        max_attempts: int = 4,
        downtime_seconds: float = 30.0,
    ):
        super().__init__(model, max_attempts=max_attempts, downtime_seconds=downtime_seconds)
        self.store = CheckpointStore()

    def _do_prepare(self, app: MiniApplication) -> None:
        self.store.take(app)

    def _restore_state(self, app: MiniApplication, attempt: int) -> None:
        app.restore(self.store.latest())

    def _perturb_environment(self, app: MiniApplication, attempt: int) -> None:
        if attempt <= 1:
            # Step 1: replay with reordered events only.
            app.env.reseed_scheduler()
            app.env.clock.advance(1.0)
            app.env.entropy.accumulate(1.0)
            return
        # Step 2+: full perturbation with escalating downtime.
        apply_recovery_perturbation(
            app.env,
            self.model,
            app.footprint,
            downtime_seconds=self.downtime_seconds * (attempt - 1),
        )
