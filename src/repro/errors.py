"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch a single base class.  Subsystem
errors form a shallow tree: parsing problems, corpus integrity problems,
simulation problems, and recovery problems each get their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParseError(ReproError):
    """Raised when a raw archive (GNATS dump, debbugs log, mbox) is malformed.

    Attributes:
        source: short description of the input being parsed.
        line_number: 1-based line where the problem was detected, if known.
    """

    def __init__(self, message: str, *, source: str = "", line_number: int | None = None):
        location = source
        if line_number is not None:
            location = f"{source or '<input>'}:{line_number}"
        super().__init__(f"{location}: {message}" if location else message)
        self.source = source
        self.line_number = line_number


class CorpusError(ReproError):
    """Raised when a study corpus fails an integrity check.

    The curated corpus carries invariants from the paper (exact per-class
    counts, unique identifiers, every environment-dependent fault has
    trigger evidence); violations raise this error.
    """


class ClassificationError(ReproError):
    """Raised when a fault cannot be classified from the available evidence."""


class SimulationError(ReproError):
    """Base class for operating-environment simulation errors."""


class ResourceExhaustedError(SimulationError):
    """Raised by the environment model when a finite resource runs out.

    Mirrors the operating-system errors (EMFILE, ENOSPC, EAGAIN...) that
    trigger the paper's environment-dependent-nontransient faults.

    Attributes:
        resource: name of the exhausted resource (e.g. ``"file_descriptors"``).
    """

    def __init__(self, resource: str, message: str = ""):
        super().__init__(message or f"resource exhausted: {resource}")
        self.resource = resource


class ApplicationCrash(SimulationError):
    """Raised by a mini application when an injected defect fires.

    Attributes:
        fault_id: identifier of the injected fault that caused the crash.
        symptom: short symptom string (e.g. ``"segfault"``, ``"hang"``).
    """

    def __init__(self, fault_id: str, symptom: str = "crash"):
        super().__init__(f"application crashed ({symptom}) due to fault {fault_id}")
        self.fault_id = fault_id
        self.symptom = symptom


class ApplicationHang(ApplicationCrash):
    """Raised when an injected defect makes the application stop responding."""

    def __init__(self, fault_id: str):
        super().__init__(fault_id, symptom="hang")


class PerturbationConflict(SimulationError):
    """Raised when composed recovery perturbations disagree irreconcilably.

    Two recovery models commute when their environmental side effects are
    purely additive (killing processes, reclaiming resources, growing
    storage).  They conflict when one insists all application state is
    preserved and the other discards it -- no single recovery attempt can
    do both.
    """


class RecoveryError(ReproError):
    """Raised when a recovery mechanism cannot complete its protocol."""


class RecoveryExhausted(RecoveryError):
    """Raised when a recovery mechanism gives up after its retry budget.

    Attributes:
        attempts: number of retries performed before giving up.
    """

    def __init__(self, attempts: int, message: str = ""):
        super().__init__(message or f"recovery gave up after {attempts} attempts")
        self.attempts = attempts
