"""repro: reproduction of "Whither Generic Recovery from Application Faults?"

Chandra & Chen, DSN 2000.  The library mechanises the paper's fault study
over Apache, GNOME, and MySQL -- bug-archive formats and mining, the
three-way fault taxonomy and classifiers, an operating-environment
simulator with miniature fault-injectable applications, generic-recovery
techniques (process pairs, checkpoint rollback, progressive retry), and
the analysis that regenerates every table and figure in the paper.

Quickstart::

    from repro import full_study, Application
    from repro.analysis import classification_table

    study = full_study()
    table = classification_table(study.corpus(Application.APACHE))
    print(table)
"""

from repro._version import __version__
from repro.bugdb import (
    Application,
    BugDatabase,
    BugReport,
    FaultClass,
    Query,
    Severity,
    Symptom,
    TriggerKind,
)
from repro.classify import (
    Classification,
    RecoveryModel,
    RuleClassifier,
    TextClassifier,
    extract_evidence,
)
from repro.corpus import (
    StudyCorpus,
    StudyData,
    StudyFault,
    apache_corpus,
    full_study,
    gnome_corpus,
    mysql_corpus,
)
from repro.errors import ReproError

__all__ = [
    "Application",
    "BugDatabase",
    "BugReport",
    "Classification",
    "FaultClass",
    "Query",
    "RecoveryModel",
    "ReproError",
    "RuleClassifier",
    "Severity",
    "StudyCorpus",
    "StudyData",
    "StudyFault",
    "Symptom",
    "TextClassifier",
    "TriggerKind",
    "__version__",
    "apache_corpus",
    "extract_evidence",
    "full_study",
    "gnome_corpus",
    "mysql_corpus",
]
