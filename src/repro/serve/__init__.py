"""repro.serve: the persistent study service.

Every ``repro`` CLI invocation before this package paid the same cold
tax on every call: load the fault corpora, rebuild or re-verify the
parse/mine cache, construct the text index and the default study, then
run one request's worth of work and throw it all away.  ``repro serve``
keeps that warm state resident in a long-running daemon and serves
``study`` / ``mine`` / ``replay`` / ``trace-summary`` requests over a
local unix socket, line-delimited JSON both ways:

* :mod:`~repro.serve.protocol` -- the wire format: ``Request`` /
  ``Response``, encode/decode with structural validation, the status
  vocabulary (``ok`` / ``error`` / ``rejected-busy`` /
  ``shutting-down``);
* :mod:`~repro.serve.admission` -- the front door: bounded in-service
  slots (explicit ``queue-full`` backpressure, never an unbounded
  queue), per-client token-bucket quotas, and the drain flag graceful
  shutdown flips;
* :mod:`~repro.serve.service` -- :class:`StudyService`, the
  transport-free request core: warm shared state, per-kind handlers
  dispatching single-node runs onto the study graph (same digests as
  the batch CLIs, by the graph's equivalence contract), a response memo
  for repeated warm requests, obs spans and monitor heartbeats per
  request;
* :mod:`~repro.serve.server` -- :class:`StudyServer` /
  :func:`run_server`, the unix-socket daemon: thread per connection,
  SIGTERM/SIGINT graceful drain, pidfile, and a live healthz snapshot
  file beside the socket;
* :mod:`~repro.serve.client` -- :class:`ServeClient`, the synchronous
  one-connection client the CLI and load generator use.

Served results are bit-identical to their batch-CLI equivalents; the
serve benchmark asserts that equality before it measures anything.
"""

from repro.serve.admission import (
    REASON_DRAINING,
    REASON_QUEUE_FULL,
    REASON_QUOTA,
    AdmissionController,
    AdmissionDecision,
    TokenBucket,
)
from repro.serve.client import ServeClient, ServeConnectionError, wait_for_server
from repro.serve.protocol import (
    DEFAULT_CLIENT,
    KIND_MINE,
    KIND_PING,
    KIND_REPLAY,
    KIND_STATUS,
    KIND_STUDY,
    KIND_TRACE_SUMMARY,
    PROTOCOL_VERSION,
    REQUEST_KINDS,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED_BUSY,
    STATUS_SHUTTING_DOWN,
    ProtocolError,
    Request,
    Response,
    decode_request,
    decode_response,
    encode_line,
)
from repro.serve.server import (
    StudyServer,
    pid_path_for,
    run_server,
    status_path_for,
)
from repro.serve.service import MEMOIZED_KINDS, StudyService, request_key

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "DEFAULT_CLIENT",
    "KIND_MINE",
    "KIND_PING",
    "KIND_REPLAY",
    "KIND_STATUS",
    "KIND_STUDY",
    "KIND_TRACE_SUMMARY",
    "MEMOIZED_KINDS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "REASON_DRAINING",
    "REASON_QUEUE_FULL",
    "REASON_QUOTA",
    "REQUEST_KINDS",
    "Request",
    "Response",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_REJECTED_BUSY",
    "STATUS_SHUTTING_DOWN",
    "ServeClient",
    "ServeConnectionError",
    "StudyServer",
    "StudyService",
    "TokenBucket",
    "decode_request",
    "decode_response",
    "encode_line",
    "pid_path_for",
    "request_key",
    "run_server",
    "status_path_for",
    "wait_for_server",
]
