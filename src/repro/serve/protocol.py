"""The serve wire protocol: line-delimited JSON over a local socket.

One request per line, one response per line, UTF-8, ``\\n`` terminated.
The framing is deliberately trivial -- any language (or ``nc -U``) can
speak it -- and transport-agnostic: the same encode/decode pair serves
the unix-socket server, the in-process test harness, and an HTTP
adapter if one is ever bolted on top of the same handler.

Request::

    {"id": "r-1", "kind": "study", "params": {"node": "A1"}, "client": "ci"}

Response::

    {"id": "r-1", "status": "ok", "payload": {...}}
    {"id": "r-2", "status": "rejected-busy", "error": "quota-exhausted"}

Statuses:

* ``ok`` -- the request ran; ``payload`` carries the result.
* ``rejected-busy`` -- admission control refused the request
  (``error`` says why: ``queue-full`` backpressure or
  ``quota-exhausted`` per-client rate limiting).  The server is
  healthy; the client should back off and retry.
* ``shutting-down`` -- the daemon is draining; no new work is admitted.
* ``error`` -- the request was admitted but failed; ``error`` carries
  the message.

Every decoded value is validated structurally here, so the service and
server layers never see a malformed message.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Mapping

from repro.errors import ReproError

#: Wire format version, carried in every response.
PROTOCOL_VERSION = 1

#: A single message line (request or response) may not exceed this.
MAX_LINE_BYTES = 8 * 1024 * 1024

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_REJECTED_BUSY = "rejected-busy"
STATUS_SHUTTING_DOWN = "shutting-down"

#: Request kinds the service understands.
KIND_STUDY = "study"
KIND_MINE = "mine"
KIND_REPLAY = "replay"
KIND_TRACE_SUMMARY = "trace-summary"
KIND_STATUS = "status"
KIND_PING = "ping"
KIND_METRICS = "metrics"

REQUEST_KINDS = (
    KIND_STUDY,
    KIND_MINE,
    KIND_REPLAY,
    KIND_TRACE_SUMMARY,
    KIND_STATUS,
    KIND_PING,
    KIND_METRICS,
)

#: Client name used when a request does not identify itself.
DEFAULT_CLIENT = "anonymous"


class ProtocolError(ReproError):
    """Malformed or oversized protocol message."""


@dataclasses.dataclass(frozen=True)
class Request:
    """One decoded request.

    Attributes:
        kind: what to do (one of :data:`REQUEST_KINDS`).
        params: kind-specific parameters (JSON object).
        client: quota identity; requests from one client share a token
            bucket.
        id: caller-chosen correlation id, echoed on the response.
    """

    kind: str
    params: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    client: str = DEFAULT_CLIENT
    id: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "kind": self.kind,
            "params": dict(self.params),
            "client": self.client,
        }


@dataclasses.dataclass(frozen=True)
class Response:
    """One decoded response.

    Attributes:
        id: the request's correlation id.
        status: one of the ``STATUS_*`` constants.
        payload: result data (empty unless ``status == "ok"``).
        error: human-readable reason for non-``ok`` statuses.
    """

    id: str
    status: str
    payload: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def rejected(self) -> bool:
        return self.status in (STATUS_REJECTED_BUSY, STATUS_SHUTTING_DOWN)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "id": self.id,
            "status": self.status,
            "version": PROTOCOL_VERSION,
        }
        if self.payload:
            data["payload"] = dict(self.payload)
        if self.error:
            data["error"] = self.error
        return data


def encode_line(message: Request | Response) -> bytes:
    """One message as a UTF-8 JSON line (terminator included).

    Raises:
        ProtocolError: the encoded message exceeds :data:`MAX_LINE_BYTES`
            (a payload that large belongs in a file, not on the wire).
    """
    line = json.dumps(
        message.to_dict(), separators=(",", ":"), sort_keys=True
    ).encode("utf-8") + b"\n"
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds the {MAX_LINE_BYTES}-byte line limit"
        )
    return line


def _decode_object(line: str | bytes) -> dict[str, Any]:
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError("message exceeds the line-length limit")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"message is not UTF-8: {exc}") from None
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"message is not JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ProtocolError("message must be a JSON object")
    return data


def decode_request(line: str | bytes) -> Request:
    """Parse and validate one request line.

    Raises:
        ProtocolError: not JSON, not an object, unknown kind, or
            structurally invalid fields.
    """
    data = _decode_object(line)
    kind = data.get("kind")
    if kind not in REQUEST_KINDS:
        raise ProtocolError(
            f"unknown request kind {kind!r}; known: " + ", ".join(REQUEST_KINDS)
        )
    params = data.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("request params must be a JSON object")
    client = data.get("client", DEFAULT_CLIENT)
    if not isinstance(client, str) or not client:
        raise ProtocolError("request client must be a non-empty string")
    request_id = data.get("id", "")
    if not isinstance(request_id, str):
        raise ProtocolError("request id must be a string")
    return Request(kind=kind, params=params, client=client, id=request_id)


def decode_response(line: str | bytes) -> Response:
    """Parse and validate one response line.

    Raises:
        ProtocolError: not JSON, not an object, or an unknown status.
    """
    data = _decode_object(line)
    status = data.get("status")
    if status not in (STATUS_OK, STATUS_ERROR, STATUS_REJECTED_BUSY, STATUS_SHUTTING_DOWN):
        raise ProtocolError(f"unknown response status {status!r}")
    payload = data.get("payload", {})
    if not isinstance(payload, dict):
        raise ProtocolError("response payload must be a JSON object")
    return Response(
        id=str(data.get("id", "")),
        status=status,
        payload=payload,
        error=str(data.get("error", "")),
    )
