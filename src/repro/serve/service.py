"""The study service core: warm state plus a request router.

Every batch CLI invocation pays the same tax: build the 139-fault
study, wire the study graph, open the memo cache -- then do milliseconds
of real work.  :class:`StudyService` pays the tax once and keeps the
result hot:

* the curated :class:`~repro.corpus.loader.StudyData` (shared,
  immutable, lock-guarded first build);
* the full study-graph registry;
* one :class:`~repro.pipeline.cache.ParseMineCache` shared by every
  request (node memos, parse/mine entries, and the ``TextIndex`` built
  as a parse by-product all live there);
* an in-memory **response memo**: node payloads are content-addressed,
  and the study is immutable while serving, so an identical request is
  a dictionary hit -- this is what turns a warm daemon into thousands
  of requests per second.

Requests route through :class:`~repro.serve.admission.
AdmissionController` first (backpressure and quotas are the service's
semantics, not the transport's), then dispatch to a handler.  The
``study`` / ``mine`` / ``replay`` handlers are single-node invocations
of the same study graph the batch CLIs run -- each request gets its own
:class:`~repro.studygraph.context.StudyContext` over the shared study
and cache, and cold node execution dispatches onto the existing harness
pool (``workers`` > 1) exactly as ``repro study run`` does -- so served
payloads and digests are bit-identical to batch output by construction.

The core is transport-free: the unix-socket server, the CLI's in-process
fallback, and the tests all drive :meth:`StudyService.handle` directly.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Callable, Mapping

from repro import obs
from repro.obs.hist import Histogram, histogram_lines, metric_line
from repro.serve.admission import (
    REASON_DRAINING,
    AdmissionController,
    AdmissionDecision,
)
from repro.serve.protocol import (
    KIND_METRICS,
    KIND_MINE,
    KIND_PING,
    KIND_REPLAY,
    KIND_STATUS,
    KIND_STUDY,
    KIND_TRACE_SUMMARY,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED_BUSY,
    STATUS_SHUTTING_DOWN,
    Request,
    Response,
)

#: Request kinds whose responses are memoized (pure functions of the
#: immutable warm state; ``trace-summary`` reads a file, ``status``,
#: ``ping``, and ``metrics`` are live).
MEMOIZED_KINDS = frozenset({KIND_STUDY, KIND_MINE, KIND_REPLAY})


def _payload_size(payload: Mapping[str, Any]) -> int:
    """Canonical-JSON byte size of a response payload (0 on failure)."""
    try:
        return len(
            json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
        )
    except (TypeError, ValueError):
        return 0


def request_key(kind: str, params: Mapping[str, Any]) -> str:
    """Canonical memo key for one request: kind + sorted params JSON."""
    return kind + ":" + json.dumps(dict(params), sort_keys=True, separators=(",", ":"))


class RequestStats:
    """Per-request-kind observability counters and histograms.

    Every request -- admitted or refused -- records exactly one latency
    observation and one ``requests_total`` increment, so the exposition
    reconciles with the client side: requests a loadgen sent equal the
    histogram count for that kind, and its rejection count equals the
    ``status="rejected-busy"`` counter.  Histograms use the shared
    default :class:`~repro.obs.hist.Histogram` scheme, so serve-side
    percentiles agree bucket-for-bucket with loadgen's.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests: dict[tuple[str, str], int] = {}
        self._latency: dict[str, Histogram] = {}
        self._queue_wait: dict[str, Histogram] = {}
        self._payload_bytes: dict[str, int] = {}

    def observe(
        self,
        kind: str,
        status: str,
        *,
        latency_seconds: float,
        queue_seconds: float = 0.0,
        payload_bytes: int = 0,
    ) -> None:
        """Record one finished (or refused) request."""
        with self._lock:
            self._requests[(kind, status)] = self._requests.get((kind, status), 0) + 1
            self._latency.setdefault(kind, Histogram()).record(latency_seconds)
            self._queue_wait.setdefault(kind, Histogram()).record(queue_seconds)
            if payload_bytes:
                self._payload_bytes[kind] = (
                    self._payload_bytes.get(kind, 0) + payload_bytes
                )

    def requests_total(self, kind: str | None = None, status: str | None = None) -> int:
        """Total requests observed, optionally filtered."""
        with self._lock:
            return sum(
                count
                for (k, s), count in self._requests.items()
                if (kind is None or k == kind) and (status is None or s == status)
            )

    def latency_histogram(self, kind: str) -> Histogram | None:
        """A copy of the latency histogram for ``kind`` (None if unseen)."""
        with self._lock:
            hist = self._latency.get(kind)
            return Histogram.from_dict(hist.to_dict()) if hist is not None else None

    def exposition(
        self,
        *,
        uptime_seconds: float | None = None,
        counters: Mapping[str, float] | None = None,
        gauges: Mapping[str, float] | None = None,
    ) -> str:
        """The Prometheus-style text exposition of everything recorded.

        Deterministically ordered (sorted kinds, sorted label sets) so
        two scrapes of identical state are byte-identical.
        """
        with self._lock:
            requests = dict(self._requests)
            latency = {k: Histogram.from_dict(h.to_dict()) for k, h in self._latency.items()}
            queue_wait = {
                k: Histogram.from_dict(h.to_dict()) for k, h in self._queue_wait.items()
            }
            payload_bytes = dict(self._payload_bytes)

        lines: list[str] = []
        if uptime_seconds is not None:
            lines.append("# TYPE repro_uptime_seconds gauge")
            lines.append(metric_line("repro_uptime_seconds", round(uptime_seconds, 3)))
        for name, value in sorted((gauges or {}).items()):
            lines.append(f"# TYPE {name} gauge")
            lines.append(metric_line(name, value))
        lines.append("# TYPE repro_requests_total counter")
        for (kind, status) in sorted(requests):
            lines.append(
                metric_line(
                    "repro_requests_total",
                    requests[(kind, status)],
                    {"kind": kind, "status": status},
                )
            )
        for name, value in sorted((counters or {}).items()):
            lines.append(f"# TYPE {name} counter")
            lines.append(metric_line(name, value))
        if payload_bytes:
            lines.append("# TYPE repro_response_bytes_total counter")
            for kind in sorted(payload_bytes):
                lines.append(
                    metric_line(
                        "repro_response_bytes_total",
                        payload_bytes[kind],
                        {"kind": kind},
                    )
                )
        lines.append("# TYPE repro_request_latency_seconds histogram")
        for kind in sorted(latency):
            lines.extend(
                histogram_lines(
                    "repro_request_latency_seconds", latency[kind], {"kind": kind}
                )
            )
        lines.append("# TYPE repro_request_queue_seconds histogram")
        for kind in sorted(queue_wait):
            lines.extend(
                histogram_lines(
                    "repro_request_queue_seconds", queue_wait[kind], {"kind": kind}
                )
            )
        return "\n".join(lines) + "\n"


class StudyService:
    """Warm study state behind a request router; see the module docstring.

    Args:
        cache_dir: shared node-memo / parse-mine cache directory (None
            keeps everything in the in-memory response memo only).
        workers: harness-pool worker processes for cold node execution
            inside one request (1 runs inline; warm requests never fork).
        admission: the front door (a permissive default is built when
            omitted).
        monitor: optional :class:`repro.obs.RunMonitor`; every request
            heartbeats it, so its snapshot doubles as the service health
            endpoint.
        registry: study-graph registry override (tests).
    """

    def __init__(
        self,
        *,
        cache_dir: str | Path | None = None,
        workers: int = 1,
        admission: AdmissionController | None = None,
        monitor: Any = None,
        registry: Any = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.workers = workers
        self.admission = admission if admission is not None else AdmissionController()
        self.monitor = monitor
        self._registry = registry
        self._study: Any = None
        self._cache: Any = None
        self._warm_lock = threading.Lock()
        self._memo: dict[str, dict[str, Any]] = {}
        self._memo_lock = threading.Lock()
        self._monitor_lock = threading.Lock()
        self._counters = {
            "requests": 0,
            "ok": 0,
            "errors": 0,
            "rejected": 0,
            "memo_hits": 0,
        }
        self._counter_lock = threading.Lock()
        self._sequence = 0
        self._started = time.monotonic()
        self.stats = RequestStats()
        self._handlers: dict[str, Callable[[Request], dict[str, Any]]] = {
            KIND_STUDY: self._handle_study,
            KIND_MINE: self._handle_mine,
            KIND_REPLAY: self._handle_replay,
            KIND_TRACE_SUMMARY: self._handle_trace_summary,
            KIND_STATUS: self._handle_status,
            KIND_PING: self._handle_ping,
            KIND_METRICS: self._handle_metrics,
        }

    # -- warm state ----------------------------------------------------- #

    def warm(self) -> dict[str, Any]:
        """Build (once) and pin the heavy shared state; returns a summary.

        Called at daemon startup so the first client request never pays
        corpus construction or graph wiring; safe (and cheap) to call
        again at any time.
        """
        with self._warm_lock:
            if self._study is None:
                from repro.corpus.loader import full_study
                from repro.pipeline.cache import ParseMineCache
                from repro.studygraph.registry import default_registry

                with obs.span("serve:warm"):
                    self._study = full_study()
                    if self._registry is None:
                        self._registry = default_registry()
                    if self.cache_dir is not None:
                        self._cache = ParseMineCache(self.cache_dir)
            families = getattr(self._registry, "families", dict)()
            return {
                "faults": self._study.total_faults,
                "nodes": len(self._registry),
                "grids": len(families),
                "grid_points": sum(family.size for family in families.values()),
                "cache_dir": str(self.cache_dir) if self.cache_dir else None,
                "workers": self.workers,
            }

    def register_handler(
        self, kind: str, handler: Callable[[Request], dict[str, Any]]
    ) -> None:
        """Install (or replace) the handler for one request kind.

        The extension point the lifecycle tests use to plant slow or
        failing handlers behind the real admission path.
        """
        self._handlers[kind] = handler

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started

    # -- the router ------------------------------------------------------ #

    def handle(self, request: Request) -> Response:
        """Admit, dispatch, and answer one request.

        Never raises for request-shaped problems: handler errors come
        back as ``status="error"`` responses, admission refusals as
        ``rejected-busy`` / ``shutting-down``.

        Every path -- success, error, refusal -- records exactly one
        observation in :attr:`stats` (latency, admission wait, response
        payload bytes), which is what makes the ``metrics`` exposition
        reconcile with what clients actually sent.
        """
        received = time.monotonic()
        decision = self.admission.admit(request.client)
        admitted_at = time.monotonic()
        if not decision.admitted:
            self._count("rejected")
            response = self._refusal(request, decision)
            self.stats.observe(
                request.kind,
                response.status,
                latency_seconds=time.monotonic() - received,
                queue_seconds=admitted_at - received,
            )
            self._publish_admission()
            return response

        name = self._request_name(request)
        started = time.monotonic()
        self._heartbeat("dispatched", name)
        status = STATUS_ERROR
        payload_bytes = 0
        try:
            with obs.span(
                f"serve:{request.kind}", client=request.client, id=request.id
            ) as span:
                payload, memoized = self._dispatch(request)
                span.set(memoized=memoized)
            self._count("ok")
            status = STATUS_OK
            payload_bytes = _payload_size(payload)
            return Response(id=request.id, status=STATUS_OK, payload=payload)
        except Exception as exc:  # noqa: BLE001 -- a request must never kill the daemon
            self._count("errors")
            status = STATUS_ERROR
            return Response(
                id=request.id,
                status=STATUS_ERROR,
                error=f"{type(exc).__name__}: {exc}",
            )
        finally:
            self.admission.release()
            self._heartbeat("completed", name, time.monotonic() - started)
            self.stats.observe(
                request.kind,
                status,
                latency_seconds=time.monotonic() - received,
                queue_seconds=admitted_at - received,
                payload_bytes=payload_bytes,
            )
            self._publish_admission()

    def begin_drain(self) -> None:
        """Stop admitting; in-flight requests run to completion."""
        self.admission.begin_drain()

    def _dispatch(self, request: Request) -> tuple[dict[str, Any], bool]:
        handler = self._handlers.get(request.kind)
        if handler is None:
            raise ValueError(f"no handler for request kind {request.kind!r}")
        if request.kind in MEMOIZED_KINDS and request.kind in self._handlers:
            key = request_key(request.kind, request.params)
            with self._memo_lock:
                hit = self._memo.get(key)
            if hit is not None:
                self._count("memo_hits")
                return hit, True
            payload = handler(request)
            with self._memo_lock:
                # Concurrent first requests may both compute; payloads
                # are deterministic, so last-write-wins is safe.
                self._memo[key] = payload
            return payload, False
        return handler(request), False

    # -- handlers -------------------------------------------------------- #

    def _run_node(
        self,
        name: str,
        overrides: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> dict[str, Any]:
        """One study-graph node over the warm state; the batch-CLI path.

        Per-request context over the *shared* study and cache: payload
        and digest are identical to ``repro study run --nodes`` / the
        classic single-node commands by the graph's equivalence
        contract.
        """
        from repro.harness.telemetry import Telemetry
        from repro.studygraph.context import StudyContext
        from repro.studygraph.scheduler import run_study

        self.warm()
        registry = self._registry
        if overrides:
            registry = registry.with_overrides(
                {node: dict(params) for node, params in overrides.items()}
            )
        context = StudyContext(
            study=self._study,
            workers=self.workers,
            cache=self._cache,
            telemetry=Telemetry(),
        )
        result = run_study(context, nodes=[name], outputs=[name], registry=registry)
        run = result.runs[name]
        payload = result.outputs[name]
        return {
            "node": name,
            "digest": run.digest,
            "status": run.status,
            "text": payload.get("text"),
            "payload": payload,
        }

    def _handle_study(self, request: Request) -> dict[str, Any]:
        """``study``: params ``node`` (required), ``overrides`` (optional)."""
        node = request.params.get("node")
        if not node or not isinstance(node, str):
            raise ValueError("study request requires a 'node' parameter")
        overrides = request.params.get("overrides") or None
        if overrides is not None and not isinstance(overrides, dict):
            raise ValueError("study 'overrides' must be an object of objects")
        return self._run_node(node, overrides)

    def _handle_mine(self, request: Request) -> dict[str, Any]:
        """``mine``: params ``application`` (required), ``scale`` (optional)."""
        from repro.bugdb.enums import Application

        name = request.params.get("application")
        try:
            application = Application(str(name).lower())
        except ValueError:
            raise ValueError(
                f"unknown application {name!r}; choose from "
                + ", ".join(app.value for app in Application)
            ) from None
        scale = request.params.get("scale")
        overrides = None
        if scale is not None:
            overrides = {f"parsed.{application.value}": {"scale": int(scale)}}
        return self._run_node(f"mine.{application.value}", overrides)

    def _handle_replay(self, request: Request) -> dict[str, Any]:
        """``replay``: params ``techniques`` (optional comma list)."""
        from repro.recovery.nodes import TECHNIQUES

        techniques = request.params.get("techniques")
        if techniques is None:
            names = list(TECHNIQUES)
        elif isinstance(techniques, str):
            names = [part for part in techniques.split(",") if part]
        else:
            raise ValueError("replay 'techniques' must be a comma-joined string")
        for tech in names:
            if tech not in TECHNIQUES:
                raise ValueError(
                    f"unknown technique {tech!r}; choose from " + ", ".join(TECHNIQUES)
                )
        return self._run_node("E1", {"E1": {"techniques": ",".join(names)}})

    def _handle_trace_summary(self, request: Request) -> dict[str, Any]:
        """``trace-summary``: params ``path`` (required), ``top`` (optional)."""
        path = request.params.get("path")
        if not path or not isinstance(path, str):
            raise ValueError("trace-summary request requires a 'path' parameter")
        records = obs.read_trace(path)
        if not records:
            raise ValueError(f"no trace records in {path!r}")
        summary = obs.summarize_trace(records, top=int(request.params.get("top", 10)))
        return {
            "path": path,
            "spans": summary.spans,
            "processes": summary.processes,
            "root": summary.root.get("name") if summary.root else None,
            "root_seconds": summary.root_seconds,
            "coverage": summary.coverage,
            "orphaned": summary.orphaned,
            "phases": summary.phase_rows(),
        }

    def _handle_status(self, request: Request) -> dict[str, Any]:
        """``status``: the healthz view plus service counters."""
        snapshot = None
        if self.monitor is not None:
            with self._monitor_lock:
                snapshot = self.monitor.snapshot()
        with self._counter_lock:
            counters = dict(self._counters)
        with self._memo_lock:
            memo_entries = len(self._memo)
        warm = self.warm()
        return {
            "healthz": obs.healthz_view(snapshot),
            "uptime_seconds": round(self.uptime_seconds, 3),
            "requests": counters,
            "admission": self.admission.snapshot(),
            "memo_entries": memo_entries,
            "warm": warm,
        }

    def _handle_ping(self, request: Request) -> dict[str, Any]:
        return {"pong": True, "uptime_seconds": round(self.uptime_seconds, 3)}

    def _handle_metrics(self, request: Request) -> dict[str, Any]:
        """``metrics``: the Prometheus-style text exposition.

        The in-flight metrics request itself is not yet recorded (its
        observation happens after the handler returns), so a scrape
        reflects exactly the requests that completed before it.
        """
        with self._counter_lock:
            memo_hits = self._counters["memo_hits"]
        admission = self.admission.snapshot()
        text = self.stats.exposition(
            uptime_seconds=self.uptime_seconds,
            counters={
                "repro_memo_hits_total": float(memo_hits),
                "repro_rejected_busy_total": float(
                    self.stats.requests_total(status=STATUS_REJECTED_BUSY)
                ),
            },
            gauges={
                "repro_admission_pending": float(admission.get("pending", 0)),
                "repro_admission_max_pending": float(
                    admission.get("max_pending", 0)
                ),
            },
        )
        return {"content_type": "text/plain; version=0.0.4", "text": text}

    # -- bookkeeping ----------------------------------------------------- #

    def _refusal(self, request: Request, decision: AdmissionDecision) -> Response:
        status = (
            STATUS_SHUTTING_DOWN
            if decision.reason == REASON_DRAINING
            else STATUS_REJECTED_BUSY
        )
        return Response(id=request.id, status=status, error=decision.reason)

    def _request_name(self, request: Request) -> str:
        with self._counter_lock:
            self._sequence += 1
            sequence = self._sequence
        return f"{request.kind}#{sequence}"

    def _count(self, key: str) -> None:
        with self._counter_lock:
            self._counters["requests"] += 1 if key in ("ok", "errors", "rejected") else 0
            self._counters[key] += 1

    def _heartbeat(self, event: str, name: str, wall_seconds: float = 0.0) -> None:
        if self.monitor is None:
            return
        with self._monitor_lock:
            if event == "dispatched":
                self.monitor.dispatched([name])
            else:
                self.monitor.completed(name, wall_seconds=wall_seconds)

    def _publish_admission(self) -> None:
        if self.monitor is None:
            return
        stats = self.admission.snapshot()
        with self._counter_lock:
            rejected = self._counters["rejected"]
        with self._monitor_lock:
            self.monitor.set_info(
                queue_depth=stats["pending"],
                max_pending=stats["max_pending"],
                draining=stats["draining"],
                clients=stats["clients"],
                rejected=rejected,
            )
