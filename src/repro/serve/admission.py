"""Admission control: bounded concurrency and per-client token quotas.

A long-running service dies two ways under load: it accepts everything
and thrashes, or one greedy client starves the rest.  This module is
the front door that prevents both:

* a **bounded slot count** caps requests in service (running or
  waiting on a worker); when it is full, new requests are *rejected
  immediately* with ``queue-full`` -- explicit backpressure the client
  can see and back off from, never an invisible unbounded queue;
* a **token bucket per client** enforces a sustained request rate with
  a burst allowance; an exhausted bucket rejects with
  ``quota-exhausted`` while other clients sail on;
* a **drain flag** flips every subsequent decision to ``draining`` so a
  graceful shutdown stops admitting without dropping in-flight work.

Everything is lock-guarded and clock-injectable: decisions are
deterministic given (clock, call order), which is what the admission
tests pin down.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Any, Callable

#: Rejection reasons (carried in the response's ``error`` field).
REASON_QUEUE_FULL = "queue-full"
REASON_QUOTA = "quota-exhausted"
REASON_DRAINING = "draining"


@dataclasses.dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict on one request.

    Attributes:
        admitted: the request may run (the caller MUST pair this with
            exactly one :meth:`AdmissionController.release`).
        reason: why not, when refused (one of the ``REASON_*`` values).
    """

    admitted: bool
    reason: str = ""


class TokenBucket:
    """A standard token bucket: burst capacity, steady refill rate.

    Args:
        capacity: maximum (and starting) token count -- the burst size.
        refill_per_second: tokens added per second, up to ``capacity``.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        capacity: float,
        refill_per_second: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if refill_per_second < 0:
            raise ValueError("refill rate must be non-negative")
        self.capacity = float(capacity)
        self.refill_per_second = float(refill_per_second)
        self._clock = clock
        self._tokens = self.capacity
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        if elapsed and self.refill_per_second:
            self._tokens = min(
                self.capacity, self._tokens + elapsed * self.refill_per_second
            )

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        with self._lock:
            self._refill()
            if self._tokens + 1e-9 >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def available(self) -> float:
        """Current token count (after refill), for introspection."""
        with self._lock:
            self._refill()
            return self._tokens


class AdmissionController:
    """The service's front door; see the module docstring.

    Args:
        max_pending: requests allowed in service at once (running plus
            waiting for a worker thread).  The bound *is* the queue: a
            request past it is rejected, not parked.
        quota_capacity: per-client token-bucket burst size; None
            disables quotas entirely.
        quota_refill_per_second: per-client sustained request rate.
        clock: monotonic time source shared by every bucket.
    """

    def __init__(
        self,
        *,
        max_pending: int = 64,
        quota_capacity: float | None = None,
        quota_refill_per_second: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.max_pending = max_pending
        self.quota_capacity = quota_capacity
        self.quota_refill_per_second = quota_refill_per_second
        self._clock = clock
        self._lock = threading.Lock()
        self._pending = 0
        self._draining = False
        self._buckets: dict[str, TokenBucket] = {}
        self._counters = {
            "admitted": 0,
            "rejected_queue": 0,
            "rejected_quota": 0,
            "rejected_draining": 0,
        }

    # -- decisions ----------------------------------------------------- #

    def admit(self, client: str) -> AdmissionDecision:
        """Decide one request; an admitted caller must later release().

        Order matters and is deliberate: the drain flag wins (shutdown
        semantics beat everything), then backpressure (protect the
        service before metering clients), then the client quota --
        so a full queue never silently burns a client's tokens.
        """
        with self._lock:
            if self._draining:
                self._counters["rejected_draining"] += 1
                return AdmissionDecision(False, REASON_DRAINING)
            if self._pending >= self.max_pending:
                self._counters["rejected_queue"] += 1
                return AdmissionDecision(False, REASON_QUEUE_FULL)
            bucket = self._bucket(client)
            if bucket is not None and not bucket.try_acquire():
                self._counters["rejected_quota"] += 1
                return AdmissionDecision(False, REASON_QUOTA)
            self._pending += 1
            self._counters["admitted"] += 1
            return AdmissionDecision(True)

    def release(self) -> None:
        """One admitted request finished (however it ended)."""
        with self._lock:
            if self._pending <= 0:
                raise RuntimeError("release() without a matching admit()")
            self._pending -= 1

    def begin_drain(self) -> None:
        """Refuse all future admissions; in-flight work is untouched."""
        with self._lock:
            self._draining = True

    # -- introspection ------------------------------------------------- #

    def _bucket(self, client: str) -> TokenBucket | None:
        if self.quota_capacity is None:
            return None
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = TokenBucket(
                self.quota_capacity,
                self.quota_refill_per_second,
                clock=self._clock,
            )
        return bucket

    @property
    def pending(self) -> int:
        """Requests currently admitted and not yet released."""
        with self._lock:
            return self._pending

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def snapshot(self) -> dict[str, Any]:
        """Counters and limits, JSON-serialisable (for healthz)."""
        with self._lock:
            return {
                "pending": self._pending,
                "max_pending": self.max_pending,
                "draining": self._draining,
                "clients": len(self._buckets),
                "quota_capacity": self.quota_capacity,
                "quota_refill_per_second": self.quota_refill_per_second,
                **self._counters,
            }
