"""Client side of the serve protocol: connect, request, decode.

:class:`ServeClient` holds one connection and speaks the line protocol
synchronously -- send a request line, read the response line.  That is
all the daemon needs from a client, and it keeps the client usable from
any thread as long as each thread owns its own client (the class is
intentionally *not* thread-safe; the load generator opens one client
per closed-loop slot).
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ReproError
from repro.serve.protocol import (
    DEFAULT_CLIENT,
    ProtocolError,
    Request,
    Response,
    decode_response,
    encode_line,
)


class ServeConnectionError(ReproError):
    """Could not reach (or lost) the serve daemon."""


class ServeClient:
    """One synchronous connection to a serve daemon.

    Args:
        socket_path: the daemon's unix socket.
        client: quota identity sent with every request (requests from
            one identity share a token bucket server-side).
        timeout: per-operation socket timeout in seconds.

    Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(
        self,
        socket_path: str | Path,
        *,
        client: str = DEFAULT_CLIENT,
        timeout: float = 30.0,
    ) -> None:
        self.socket_path = Path(socket_path)
        self.client = client
        self._sequence = 0
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect(str(self.socket_path))
        except OSError as exc:
            sock.close()
            raise ServeConnectionError(
                f"cannot connect to serve daemon at {self.socket_path}: {exc}"
            ) from None
        self._sock: socket.socket | None = sock
        self._reader = sock.makefile("rb")

    # -- requests -------------------------------------------------------- #

    def request(
        self,
        kind: str,
        params: Mapping[str, Any] | None = None,
        *,
        id: str | None = None,
    ) -> Response:
        """Send one request and block for its response.

        Raises:
            ServeConnectionError: the connection is closed or dropped
                mid-exchange (e.g. a non-drain shutdown).
            ProtocolError: the daemon answered with a malformed line.
        """
        if self._sock is None:
            raise ServeConnectionError("client is closed")
        self._sequence += 1
        request = Request(
            kind=kind,
            params=dict(params or {}),
            client=self.client,
            id=id if id is not None else f"c{self._sequence}",
        )
        try:
            self._sock.sendall(encode_line(request))
            line = self._reader.readline()
        except OSError as exc:
            raise ServeConnectionError(
                f"connection to {self.socket_path} lost: {exc}"
            ) from None
        if not line:
            raise ServeConnectionError(
                f"serve daemon at {self.socket_path} closed the connection"
            )
        return decode_response(line)

    def ping(self) -> bool:
        """True when the daemon answers a ping on this connection."""
        try:
            return self.request("ping").ok
        except (ServeConnectionError, ProtocolError):
            return False

    # -- lifecycle ------------------------------------------------------- #

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def wait_for_server(
    socket_path: str | Path,
    *,
    timeout: float = 10.0,
    interval: float = 0.05,
) -> bool:
    """Poll until a daemon answers a ping on ``socket_path``.

    Used after launching a detached daemon: the socket file appearing is
    not enough (the listener may not be accepting yet), so this round-
    trips an actual request.

    Returns:
        True once the daemon answers; False on timeout.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with ServeClient(socket_path, client="probe", timeout=interval * 10) as probe:
                if probe.request("ping").ok:
                    return True
        except (ServeConnectionError, ProtocolError, OSError):
            pass
        time.sleep(interval)
    return False
