"""The serve daemon: a unix-socket front end over :class:`StudyService`.

One listening ``AF_UNIX`` stream socket, one thread per connection,
line-delimited JSON both ways (see :mod:`repro.serve.protocol`).  The
transport layer is deliberately thin: admission, quotas, and request
semantics all live in the service core, so everything the socket path
does is framing, connection bookkeeping, and lifecycle:

* **startup** writes a pidfile next to the socket (``repro serve stop``
  signals it) and starts a long-lived :class:`repro.obs.RunMonitor`
  whose atomic snapshot file doubles as the health endpoint -- every
  request heartbeats it, so ``repro serve status`` works even when the
  daemon is too busy to answer a status request;
* **graceful drain** on SIGTERM/SIGINT (or :meth:`StudyServer.
  shutdown`): stop admitting (new requests are answered
  ``shutting-down``), stop accepting, let every in-flight request run
  to completion and flush its response, then write the terminal
  snapshot and remove the socket and pidfile.

A killed daemon (SIGKILL) leaves a stale socket behind; startup detects
and replaces a socket nobody answers.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from pathlib import Path
from typing import Any, Iterable

from repro import obs
from repro.serve.admission import AdmissionController
from repro.serve.protocol import (
    STATUS_ERROR,
    ProtocolError,
    Request,
    Response,
    decode_request,
    encode_line,
)
from repro.serve.service import StudyService

#: How long shutdown waits for in-flight requests before closing anyway.
DEFAULT_DRAIN_TIMEOUT = 30.0

#: Monitor label for serve-daemon snapshots.
SERVE_LABEL = "serve"


def status_path_for(socket_path: str | Path) -> Path:
    """The healthz snapshot file paired with a socket path."""
    return Path(str(socket_path) + ".status.json")


def pid_path_for(socket_path: str | Path) -> Path:
    """The pidfile paired with a socket path."""
    return Path(str(socket_path) + ".pid")


class StudyServer:
    """The daemon: listener, connection threads, and lifecycle.

    Args:
        service: the request core (its monitor is created here when
            absent, so the snapshot file lives next to the socket).
        socket_path: ``AF_UNIX`` path to bind (note the ~100-byte OS
            limit on unix socket paths).
        status_path: healthz snapshot file (default: beside the socket).
        drain_timeout: how long :meth:`shutdown` waits for in-flight
            requests.
    """

    def __init__(
        self,
        service: StudyService,
        socket_path: str | Path,
        *,
        status_path: str | Path | None = None,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
    ) -> None:
        self.service = service
        self.socket_path = Path(socket_path)
        self.status_path = (
            Path(status_path) if status_path is not None else status_path_for(socket_path)
        )
        self.drain_timeout = drain_timeout
        if service.monitor is None:
            service.monitor = obs.RunMonitor(self.status_path, label=SERVE_LABEL)
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: set[socket.socket] = set()
        self._threads: set[threading.Thread] = set()
        self._conn_lock = threading.Lock()
        self._busy = 0  # requests between readline and response flush
        self._stopping = threading.Event()
        self._stopped = threading.Event()

    # -- lifecycle ------------------------------------------------------- #

    def start(self) -> None:
        """Bind, listen, write the pidfile, and begin accepting."""
        self._remove_stale_socket()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(self.socket_path))
        listener.listen(128)
        self._listener = listener
        pid_path_for(self.socket_path).write_text(str(os.getpid()), encoding="utf-8")
        self.service.warm()
        self.service.monitor.run_started(
            total=0, workers=self.service.workers, pending=[]
        )
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._accept_thread.start()

    def serve_forever(self) -> None:
        """:meth:`start` (if needed) then block until shutdown completes."""
        if self._listener is None:
            self.start()
        self._stopped.wait()

    def shutdown(self, *, drain: bool = True) -> None:
        """Drain and stop; safe to call more than once, from any thread.

        With ``drain`` (the default) the admission controller flips to
        draining -- in-flight requests finish and flush their responses,
        new ones are answered ``shutting-down`` -- and the server waits
        up to ``drain_timeout`` for the last request to complete before
        tearing connections down.
        """
        if self._stopping.is_set():
            self._stopped.wait()
            return
        self._stopping.set()
        self.service.begin_drain()
        if self._listener is not None:
            # Drain the accept backlog first: a client that connected
            # before the drain began deserves a shutting-down answer,
            # not a connection reset.  The accept thread may race us for
            # these; either accepter handling a connection is fine.
            try:
                self._listener.settimeout(0)
                while True:
                    conn, _ = self._listener.accept()
                    self._spawn_connection(conn)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        if drain:
            self._wait_until_idle(self.drain_timeout)
        with self._conn_lock:
            connections = list(self._connections)
            threads = list(self._threads)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for thread in threads:
            thread.join(timeout=1.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)
        monitor = self.service.monitor
        if monitor is not None:
            monitor.run_finished()
        for path in (self.socket_path, pid_path_for(self.socket_path)):
            try:
                path.unlink()
            except OSError:
                pass
        self._stopped.set()

    def _wait_until_idle(self, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        while True:
            with self._conn_lock:
                busy = self._busy
            # The busy count (not admission.pending) is the drain
            # barrier: it stays up until the response is flushed, so a
            # drained client never loses an in-flight answer.
            if busy == 0 and self.service.admission.pending == 0:
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.01)

    def _remove_stale_socket(self) -> None:
        """Replace a socket file a previous (killed) daemon left behind.

        Raises:
            FileExistsError: a live daemon still answers on the path.
        """
        if not self.socket_path.exists():
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        probe.settimeout(0.5)
        try:
            probe.connect(str(self.socket_path))
        except OSError:
            self.socket_path.unlink()  # stale: nobody listening
        else:
            probe.close()
            raise FileExistsError(
                f"a serve daemon is already listening on {self.socket_path}"
            )
        finally:
            try:
                probe.close()
            except OSError:
                pass

    # -- connections ----------------------------------------------------- #

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed by shutdown
            self._spawn_connection(conn)

    def _spawn_connection(self, conn: socket.socket) -> None:
        conn.settimeout(None)  # inherit no timeout from a draining listener
        thread = threading.Thread(
            target=self._serve_connection, args=(conn,), daemon=True
        )
        with self._conn_lock:
            self._connections.add(conn)
            self._threads.add(thread)
        thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            reader = conn.makefile("rb")
            while True:
                line = reader.readline()
                if not line:
                    return
                with self._conn_lock:
                    self._busy += 1
                try:
                    response = self._respond(line)
                    try:
                        conn.sendall(encode_line(response))
                    except OSError:
                        return
                finally:
                    with self._conn_lock:
                        self._busy -= 1
        finally:
            with self._conn_lock:
                self._connections.discard(conn)
                self._threads.discard(threading.current_thread())
            try:
                conn.close()
            except OSError:
                pass

    def _respond(self, line: bytes) -> Response:
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            return Response(id="", status=STATUS_ERROR, error=str(exc))
        return self.service.handle(request)


def run_server(
    socket_path: str | Path,
    *,
    cache_dir: str | Path | None = None,
    workers: int = 1,
    max_pending: int = 64,
    quota_capacity: float | None = None,
    quota_refill_per_second: float = 0.0,
    status_path: str | Path | None = None,
    warm_nodes: Iterable[str] = (),
    install_signals: bool = True,
    on_ready: Any = None,
) -> StudyServer:
    """Build, warm, and run a serve daemon until it is shut down.

    The blocking entry point behind ``repro serve start --foreground``
    (and, in a detached subprocess, plain ``repro serve start``).
    SIGTERM and SIGINT trigger a graceful drain.

    Args:
        socket_path: unix socket to listen on.
        cache_dir: shared node-memo cache directory.
        workers: harness-pool workers for cold node execution.
        max_pending: admission bound (running + waiting requests).
        quota_capacity: per-client token-bucket burst (None = no quotas).
        quota_refill_per_second: per-client sustained request rate.
        status_path: healthz snapshot file override.
        warm_nodes: study-graph nodes to pre-execute at startup so the
            first client request is already a memo hit.
        install_signals: wire SIGTERM/SIGINT to graceful drain (must be
            called from the main thread; disable when embedding).
        on_ready: optional callable invoked once the socket is accepting
            and warm-up is done (tests use this to synchronise).

    Returns:
        The stopped server (after shutdown), for post-mortem inspection.
    """
    admission = AdmissionController(
        max_pending=max_pending,
        quota_capacity=quota_capacity,
        quota_refill_per_second=quota_refill_per_second,
    )
    service = StudyService(cache_dir=cache_dir, workers=workers, admission=admission)
    server = StudyServer(service, socket_path, status_path=status_path)
    if install_signals:
        def _graceful(signum: int, frame: Any) -> None:
            threading.Thread(
                target=server.shutdown, name="serve-drain", daemon=True
            ).start()

        signal.signal(signal.SIGTERM, _graceful)
        signal.signal(signal.SIGINT, _graceful)
    server.start()
    for node in warm_nodes:
        service.handle(Request(kind="study", params={"node": node}, client="warmup"))
    if on_ready is not None:
        on_ready()
    server.serve_forever()
    return server
