"""Section 6: techniques for surviving each fault class, as data.

The paper's Section 6 maps fault classes to survival techniques:

* **6.1 environment-independent** -- prevention only: formal inspection
  and testing [Weller93], type-safe languages (Java), memory tools
  (Purify), robustness wrappers (Ballista [Kropp98]), standard libraries
  (POSIX);
* **6.2 environment-dependent-nontransient** -- grow the exhausted
  resource, or reclaim it (descriptor garbage collection, virtual
  sockets), or application-specific rejuvenation [Huang95];
* **6.3 environment-dependent-transient** -- process pairs [Gray86] and
  rollback-recovery [Elnozahy99, Huang93], with environment-change
  inducement [Wang93].

This module makes that mapping executable: given a fault (or a whole
study), report which mitigations apply and how much of the fault
population each mitigation class covers.
"""

from __future__ import annotations

import dataclasses
import enum
from collections import Counter

from repro.bugdb.enums import FaultClass, TriggerKind
from repro.corpus.loader import StudyData
from repro.corpus.studyspec import StudyFault


class MitigationKind(enum.Enum):
    """A survival/prevention technique from Section 6."""

    # 6.1: prevention for deterministic faults.
    INSPECTION_AND_TESTING = "formal inspection and thorough testing"
    TYPE_SAFE_LANGUAGE = "type-safe language (bounds/memory safety)"
    MEMORY_TOOLS = "memory tools (Purify-style)"
    ROBUSTNESS_WRAPPERS = "robustness-testing wrappers (Ballista-style)"
    STANDARD_LIBRARIES = "standard libraries (POSIX) for portability"
    # 6.2: resource-exhaustion handling.
    GROW_RESOURCE = "automatically increase the exhausted resource"
    RECLAIM_RESOURCE = "automatically reclaim unused resources"
    REJUVENATION = "application-specific rejuvenation"
    ADMINISTRATOR_ACTION = "administrator repair of the environment"
    # 6.3: generic recovery for transients.
    PROCESS_PAIRS = "process pairs / rollback-retry"
    ENVIRONMENT_CHANGE_INDUCEMENT = "induced environment change on retry (message reordering)"


#: Symptom keywords in fix/description text pointing at 6.1 sub-techniques.
_MEMORY_HINTS = ("overflow", "bounds", "memory leak", "use after free", "buffer")
_PORTABILITY_HINTS = ("solaris", "unixware", "platform", "linux/ppc", "locale")

_GROWABLE_RESOURCES = {
    TriggerKind.FILE_DESCRIPTOR_EXHAUSTION,
    TriggerKind.DISK_FULL,
    TriggerKind.FILE_SIZE_LIMIT,
    TriggerKind.DISK_CACHE_FULL,
    TriggerKind.NETWORK_RESOURCE_EXHAUSTION,
}

_RECLAIMABLE_RESOURCES = {
    TriggerKind.FILE_DESCRIPTOR_EXHAUSTION,
    TriggerKind.NETWORK_RESOURCE_EXHAUSTION,
    TriggerKind.RESOURCE_LEAK,
}

_REJUVENATION_TRIGGERS = {
    TriggerKind.RESOURCE_LEAK,
    TriggerKind.FILE_DESCRIPTOR_EXHAUSTION,
    TriggerKind.PROCESS_TABLE_FULL,
    TriggerKind.PORT_IN_USE,
}

_ADMIN_ONLY_TRIGGERS = {
    TriggerKind.HARDWARE_REMOVAL,
    TriggerKind.DNS_MISCONFIGURED,
    TriggerKind.CORRUPT_EXTERNAL_STATE,
    TriggerKind.HOST_CONFIG_CHANGE,
}


@dataclasses.dataclass(frozen=True)
class MitigationAssessment:
    """The Section 6 techniques applicable to one fault.

    Attributes:
        fault_id: the assessed fault.
        fault_class: its class (drives which section applies).
        mitigations: applicable techniques, most specific first.
    """

    fault_id: str
    fault_class: FaultClass
    mitigations: tuple[MitigationKind, ...]

    @property
    def survivable_without_code_change(self) -> bool:
        """Whether any runtime technique (not prevention) applies."""
        runtime = {
            MitigationKind.GROW_RESOURCE,
            MitigationKind.RECLAIM_RESOURCE,
            MitigationKind.REJUVENATION,
            MitigationKind.PROCESS_PAIRS,
            MitigationKind.ENVIRONMENT_CHANGE_INDUCEMENT,
            MitigationKind.ADMINISTRATOR_ACTION,
        }
        return any(mitigation in runtime for mitigation in self.mitigations)


def assess_fault(fault: StudyFault) -> MitigationAssessment:
    """Map one study fault to its Section 6 techniques."""
    mitigations: list[MitigationKind] = []
    if fault.fault_class is FaultClass.ENV_INDEPENDENT:
        text = (fault.description + " " + fault.fix_summary).lower()
        if any(hint in text for hint in _MEMORY_HINTS):
            mitigations.append(MitigationKind.TYPE_SAFE_LANGUAGE)
            mitigations.append(MitigationKind.MEMORY_TOOLS)
        if any(hint in text for hint in _PORTABILITY_HINTS):
            mitigations.append(MitigationKind.STANDARD_LIBRARIES)
        mitigations.append(MitigationKind.ROBUSTNESS_WRAPPERS)
        mitigations.append(MitigationKind.INSPECTION_AND_TESTING)
    elif fault.fault_class is FaultClass.ENV_DEP_NONTRANSIENT:
        if fault.trigger in _GROWABLE_RESOURCES:
            mitigations.append(MitigationKind.GROW_RESOURCE)
        if fault.trigger in _RECLAIMABLE_RESOURCES:
            mitigations.append(MitigationKind.RECLAIM_RESOURCE)
        if fault.trigger in _REJUVENATION_TRIGGERS:
            mitigations.append(MitigationKind.REJUVENATION)
        if fault.trigger in _ADMIN_ONLY_TRIGGERS or not mitigations:
            mitigations.append(MitigationKind.ADMINISTRATOR_ACTION)
    else:
        mitigations.append(MitigationKind.PROCESS_PAIRS)
        if fault.trigger in (TriggerKind.RACE_CONDITION, TriggerKind.SIGNAL_TIMING):
            mitigations.append(MitigationKind.ENVIRONMENT_CHANGE_INDUCEMENT)
    return MitigationAssessment(
        fault_id=fault.fault_id,
        fault_class=fault.fault_class,
        mitigations=tuple(mitigations),
    )


@dataclasses.dataclass(frozen=True)
class MitigationCoverage:
    """Study-wide mitigation coverage summary."""

    assessments: tuple[MitigationAssessment, ...]

    @property
    def total(self) -> int:
        """Number of assessed faults."""
        return len(self.assessments)

    def counts_by_mitigation(self) -> dict[MitigationKind, int]:
        """How many faults each technique applies to."""
        counter: Counter[MitigationKind] = Counter()
        for assessment in self.assessments:
            counter.update(assessment.mitigations)
        return dict(counter)

    def generic_recovery_coverage(self) -> float:
        """Fraction of faults process pairs / rollback-retry can address.

        This is the paper's bottom line: it equals the transient share.
        """
        covered = sum(
            1
            for assessment in self.assessments
            if MitigationKind.PROCESS_PAIRS in assessment.mitigations
        )
        if not self.assessments:
            return 0.0
        return covered / self.total

    def prevention_only_count(self) -> int:
        """Faults addressable only by prevention (no runtime technique)."""
        return sum(
            1
            for assessment in self.assessments
            if not assessment.survivable_without_code_change
        )


def assess_study(study: StudyData) -> MitigationCoverage:
    """Assess every fault in the study."""
    return MitigationCoverage(
        assessments=tuple(assess_fault(fault) for fault in study.all_faults())
    )
