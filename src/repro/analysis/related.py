"""Section 7: comparison with prior fault studies, as data.

The paper positions its transient-fault fraction against three prior
studies whose published numbers it re-reads through its own taxonomy:

* Sullivan & Chillarege [Sullivan91, Sullivan92] -- MVS, DB2, IMS:
  5-13% of faults timing/synchronization related;
* Lee & Iyer [Lee93] -- Tandem GUARDIAN: 14% timing/races, and the
  82%-process-pair-recovery figure the paper deconstructs to 29%;
* this study -- 5-14% environment-dependent-transient.

"Our rough classification of faults studied in related papers supports
our conclusion that most faults in released software are non-transient."
This module encodes those published ranges and checks the consistency
claim mechanically.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.aggregate import AggregateSummary
from repro.bugdb.enums import FaultClass


@dataclasses.dataclass(frozen=True)
class PriorStudy:
    """One prior study's published transient-fraction estimate.

    Attributes:
        name: short citation key.
        systems: the software studied.
        transient_low: lower bound of the timing/transient fraction.
        transient_high: upper bound.
        notes: how the paper reads the study's categories.
    """

    name: str
    systems: str
    transient_low: float
    transient_high: float
    notes: str

    def __post_init__(self) -> None:
        if not 0.0 <= self.transient_low <= self.transient_high <= 1.0:
            raise ValueError("need 0 <= low <= high <= 1")

    def overlaps(self, low: float, high: float) -> bool:
        """Whether this study's range intersects [low, high]."""
        return self.transient_low <= high and low <= self.transient_high


#: The prior studies as the paper reads them (Section 7).
PRIOR_STUDIES: tuple[PriorStudy, ...] = (
    PriorStudy(
        name="Sullivan91/92",
        systems="MVS, DB2, IMS",
        transient_low=0.05,
        transient_high=0.13,
        notes=(
            "errors categorised timing/synchronization related, by error "
            "type or error trigger; likely environment-dependent-transient"
        ),
    ),
    PriorStudy(
        name="Lee93",
        systems="Tandem GUARDIAN",
        transient_low=0.14,
        transient_high=0.14,
        notes="errors related to timing and race conditions",
    ),
)


@dataclasses.dataclass(frozen=True)
class RelatedWorkComparison:
    """This study's transient range against the prior studies."""

    this_study_low: float
    this_study_high: float
    prior: tuple[PriorStudy, ...] = PRIOR_STUDIES

    def consistent_with(self, study: PriorStudy, *, tolerance: float = 0.02) -> bool:
        """Whether a prior study's range is near this study's range.

        Args:
            study: the prior study.
            tolerance: slack allowed beyond strict overlap (the paper
                calls its re-reading of prior categories "rough").
        """
        return study.overlaps(
            self.this_study_low - tolerance, self.this_study_high + tolerance
        )

    def all_consistent(self) -> bool:
        """The paper's claim: every prior study roughly matches."""
        return all(self.consistent_with(study) for study in self.prior)

    def rows(self) -> list[tuple[str, str, str]]:
        """(study, systems, transient range) rows for reporting."""
        rows = [
            (
                study.name,
                study.systems,
                f"{study.transient_low:.0%}-{study.transient_high:.0%}"
                if study.transient_low != study.transient_high
                else f"{study.transient_low:.0%}",
            )
            for study in self.prior
        ]
        rows.append(
            (
                "this study (Chandra & Chen)",
                "Apache, GNOME, MySQL",
                f"{self.this_study_low:.0%}-{self.this_study_high:.0%}",
            )
        )
        return rows


def related_work_comparison(summary: AggregateSummary) -> RelatedWorkComparison:
    """Build the Section 7 comparison from this study's aggregate."""
    low, high = summary.fraction_range(FaultClass.ENV_DEP_TRANSIENT)
    return RelatedWorkComparison(this_study_low=low, this_study_high=high)
