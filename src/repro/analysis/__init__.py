"""Analysis: the paper's tables, figures, and statistics as code.

* :mod:`repro.analysis.tables` -- Tables 1-3 (per-application fault
  classification counts);
* :mod:`repro.analysis.distributions` -- Figures 1-3 (fault distribution
  over releases for Apache/MySQL, over time for GNOME);
* :mod:`repro.analysis.aggregate` -- the Section 5.4 discussion numbers
  (139 faults, 10% / 9% environment-dependent, the 72-87% and 5-14%
  ranges);
* :mod:`repro.analysis.stats` -- confidence intervals and the
  release-invariance test behind "the relative proportion of
  environment-independent bugs stays about the same";
* :mod:`repro.analysis.leeiyer` -- the Section 7 reconciliation with
  Lee & Iyer's Tandem study (82% -> 29%).
"""

from repro.analysis.tables import ClassificationTable, classification_table, classify_and_tabulate
from repro.analysis.distributions import (
    FigureSeries,
    release_distribution,
    time_distribution,
)
from repro.analysis.aggregate import AggregateSummary, aggregate_summary
from repro.analysis.stats import proportion_invariance_chi2, wilson_interval
from repro.analysis.leeiyer import LeeIyerReconciliation, lee_iyer_reconciliation
from repro.analysis.mitigations import (
    MitigationAssessment,
    MitigationCoverage,
    MitigationKind,
    assess_fault,
    assess_study,
)
from repro.analysis.bootstrap import (
    BootstrapInterval,
    bootstrap_all_corpora,
    bootstrap_class_fraction,
)
from repro.analysis.related import (
    PRIOR_STUDIES,
    PriorStudy,
    RelatedWorkComparison,
    related_work_comparison,
)
from repro.analysis.trends import (
    DipSummary,
    TrendSummary,
    dip_analysis,
    growth_trend,
    last_release_outlier_ratio,
)

__all__ = [
    "BootstrapInterval",
    "bootstrap_all_corpora",
    "bootstrap_class_fraction",
    "PRIOR_STUDIES",
    "PriorStudy",
    "RelatedWorkComparison",
    "related_work_comparison",
    "DipSummary",
    "MitigationAssessment",
    "MitigationCoverage",
    "MitigationKind",
    "TrendSummary",
    "assess_fault",
    "assess_study",
    "dip_analysis",
    "growth_trend",
    "last_release_outlier_ratio",
    "AggregateSummary",
    "ClassificationTable",
    "FigureSeries",
    "LeeIyerReconciliation",
    "aggregate_summary",
    "classification_table",
    "classify_and_tabulate",
    "lee_iyer_reconciliation",
    "proportion_invariance_chi2",
    "release_distribution",
    "time_distribution",
    "wilson_interval",
]
