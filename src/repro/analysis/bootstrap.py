"""Bootstrap resampling over the study's class fractions.

The paper reports point ranges (72-87% environment-independent, 5-14%
transient) over small per-application samples (44-50 faults).  Bootstrap
resampling quantifies how stable those fractions are: resample each
application's fault list with replacement, recompute the fraction, and
take percentile intervals.  Deterministic from a seed.
"""

from __future__ import annotations

import dataclasses

from repro.bugdb.enums import FaultClass
from repro.corpus.studyspec import StudyCorpus
from repro.rng import DEFAULT_SEED, make_rng


@dataclasses.dataclass(frozen=True)
class BootstrapInterval:
    """A percentile bootstrap interval for one class fraction.

    Attributes:
        fault_class: the class whose fraction was resampled.
        point_estimate: the observed fraction.
        low: lower percentile bound.
        high: upper percentile bound.
        resamples: bootstrap iterations used.
    """

    fault_class: FaultClass
    point_estimate: float
    low: float
    high: float
    resamples: int

    @property
    def width(self) -> float:
        """Interval width."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval (inclusive)."""
        return self.low <= value <= self.high


def bootstrap_class_fraction(
    corpus: StudyCorpus,
    fault_class: FaultClass,
    *,
    resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = DEFAULT_SEED,
) -> BootstrapInterval:
    """Percentile bootstrap interval for one class's fraction in a corpus.

    Args:
        corpus: the study corpus to resample.
        fault_class: the class of interest.
        resamples: bootstrap iterations.
        confidence: central interval mass (e.g. 0.95).
        seed: deterministic seed.

    Raises:
        ValueError: for an empty corpus or invalid parameters.
    """
    if corpus.total == 0:
        raise ValueError("cannot bootstrap an empty corpus")
    if resamples < 1:
        raise ValueError("resamples must be positive")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")

    labels = [fault.fault_class for fault in corpus.faults]
    count = len(labels)
    rng = make_rng(seed, f"bootstrap:{corpus.application.value}:{fault_class.value}")

    fractions = []
    for _ in range(resamples):
        hits = sum(
            1 for _ in range(count) if labels[rng.randrange(count)] is fault_class
        )
        fractions.append(hits / count)
    fractions.sort()

    tail = (1.0 - confidence) / 2.0
    low_index = int(tail * resamples)
    high_index = min(resamples - 1, int((1.0 - tail) * resamples))
    observed = sum(1 for label in labels if label is fault_class) / count
    return BootstrapInterval(
        fault_class=fault_class,
        point_estimate=observed,
        low=fractions[low_index],
        high=fractions[high_index],
        resamples=resamples,
    )


def bootstrap_all_corpora(
    corpora: list[StudyCorpus],
    fault_class: FaultClass,
    *,
    resamples: int = 2000,
    seed: int = DEFAULT_SEED,
) -> dict[str, BootstrapInterval]:
    """Bootstrap one class's fraction for every corpus.

    Returns:
        Mapping application name -> interval.
    """
    return {
        corpus.application.value: bootstrap_class_fraction(
            corpus, fault_class, resamples=resamples, seed=seed
        )
        for corpus in corpora
    }
