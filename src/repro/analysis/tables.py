"""Tables 1-3: per-application fault classification counts."""

from __future__ import annotations

import dataclasses

from repro.bugdb.enums import Application, FaultClass
from repro.bugdb.model import BugReport
from repro.classify.text import TextClassifier
from repro.corpus.studyspec import StudyCorpus


@dataclasses.dataclass(frozen=True)
class ClassificationTable:
    """One classification table (the paper's Table 1, 2, or 3).

    Attributes:
        application: the application tabulated.
        counts: per-class fault counts.
    """

    application: Application
    counts: dict[FaultClass, int]

    @property
    def total(self) -> int:
        """Total faults in the table."""
        return sum(self.counts.values())

    def fraction(self, fault_class: FaultClass) -> float:
        """One class's share of the total (0.0 for an empty table)."""
        if self.total == 0:
            return 0.0
        return self.counts[fault_class] / self.total

    def rows(self) -> list[tuple[str, int]]:
        """(class name, count) rows in the paper's order."""
        return [(fault_class.value, self.counts[fault_class]) for fault_class in FaultClass]

    def matches(self, expected: dict[FaultClass, int]) -> bool:
        """Whether the table equals an expected count dict exactly."""
        return all(self.counts.get(fault_class, 0) == count for fault_class, count in expected.items()) and self.total == sum(expected.values())


def classification_table(corpus: StudyCorpus) -> ClassificationTable:
    """Tabulate a curated corpus by its ground-truth labels."""
    return ClassificationTable(application=corpus.application, counts=corpus.class_counts())


def classify_and_tabulate(
    application: Application,
    reports: list[BugReport],
    *,
    classifier: TextClassifier | None = None,
) -> ClassificationTable:
    """Tabulate mined reports by running the classifier over them.

    This is the end-to-end path: raw archive -> mining -> this function
    should land on the paper's exact counts.
    """
    clf = classifier or TextClassifier()
    counts = {fault_class: 0 for fault_class in FaultClass}
    for report in reports:
        counts[clf.classify_report(report).fault_class] += 1
    return ClassificationTable(application=application, counts=counts)
