"""Study-graph adapters for the analysis layer (T1-T3, F1-F3, A1, A2).

Each adapter renders exactly what the corresponding classic CLI command
prints, so graph outputs are byte-identical to the per-command paths;
the CLI itself now invokes these nodes, keeping the two in lockstep by
construction.
"""

from __future__ import annotations

from typing import Any, Mapping, TYPE_CHECKING

from repro.analysis.aggregate import aggregate_summary
from repro.analysis.distributions import study_figure_series
from repro.analysis.leeiyer import lee_iyer_reconciliation
from repro.analysis.tables import classification_table
from repro.bugdb.enums import Application, FaultClass
from repro.reports.figures import render_figure
from repro.reports.tableformat import format_table, render_classification_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.studygraph.context import StudyContext


def table_text(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Experiment T1/T2/T3: one application's classification table.

    Params:
        application: ``apache | gnome | mysql``.
    """
    application = Application(params["application"])
    table = classification_table(ctx.study.corpus(application))
    return {
        "application": application.value,
        "counts": {
            fault_class.value: count for fault_class, count in table.counts.items()
        },
        "text": render_classification_table(table),
    }


def figure_text(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Experiment F1/F2/F3: one application's figure, ASCII-rendered.

    Params:
        application: ``apache | gnome | mysql``.
        width: bar width in characters.
        granularity: GNOME time bucketing (ignored elsewhere).
    """
    application = Application(params["application"])
    series = study_figure_series(
        ctx.study, application, granularity=params.get("granularity", "month")
    )
    return {
        "application": application.value,
        "labels": list(series.labels),
        "text": render_figure(series, width=params["width"]),
    }


def aggregate_text(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Experiment A1: the Section 5.4 aggregate numbers."""
    summary = aggregate_summary(ctx.study)
    ei = summary.fraction_range(FaultClass.ENV_INDEPENDENT)
    edt = summary.fraction_range(FaultClass.ENV_DEP_TRANSIENT)
    text = format_table(
        ["quantity", "value"],
        [
            ["total unique faults", summary.total_faults],
            ["environment-independent", summary.counts[FaultClass.ENV_INDEPENDENT]],
            [
                "environment-dependent-nontransient",
                summary.counts[FaultClass.ENV_DEP_NONTRANSIENT],
            ],
            [
                "environment-dependent-transient",
                summary.counts[FaultClass.ENV_DEP_TRANSIENT],
            ],
            ["EI range across apps", f"{ei[0]:.0%}-{ei[1]:.0%}"],
            ["transient range across apps", f"{edt[0]:.0%}-{edt[1]:.0%}"],
        ],
        title="Section 5.4 aggregate",
    )
    return {
        "total_faults": summary.total_faults,
        "counts": {
            fault_class.value: count for fault_class, count in summary.counts.items()
        },
        "text": text,
    }


def leeiyer_text(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Experiment A2: the Section 7 Lee & Iyer reconciliation."""
    reconciliation = lee_iyer_reconciliation()
    steps = reconciliation.steps()
    text = format_table(
        ["step", "recovery rate"],
        [[description, f"{rate:.2f}"] for description, rate in steps],
        title="Lee & Iyer reconciliation (Section 7)",
    )
    return {
        "steps": [[description, rate] for description, rate in steps],
        "text": text,
    }
