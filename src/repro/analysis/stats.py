"""Statistics behind the paper's qualitative claims.

The paper eyeballs two properties from Figures 1-3: the environment-
independent proportion "stays about the same" across releases, and the
totals grow with newer releases.  This module backs the first with a
chi-square independence test and provides Wilson score intervals for the
small-sample class fractions the abstract reports.
"""

from __future__ import annotations

import dataclasses
import math

from repro.analysis.distributions import FigureSeries
from repro.bugdb.enums import FaultClass


def wilson_interval(successes: int, total: int, *, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Args:
        successes: observed successes.
        total: observations.
        z: normal quantile (1.96 for 95%).

    Returns:
        (low, high) bounds in [0, 1]; (0, 1) when ``total`` is 0.

    Raises:
        ValueError: if successes are negative or exceed total.
    """
    if total < 0 or successes < 0 or successes > total:
        raise ValueError("need 0 <= successes <= total")
    if total == 0:
        return (0.0, 1.0)
    phat = successes / total
    denominator = 1 + z * z / total
    center = phat + z * z / (2 * total)
    margin = z * math.sqrt(phat * (1 - phat) / total + z * z / (4 * total * total))
    low = (center - margin) / denominator
    high = (center + margin) / denominator
    # Degenerate endpoints are exact; clamp away float rounding.
    if successes == 0:
        low = 0.0
    if successes == total:
        high = 1.0
    return (max(0.0, low), min(1.0, high))


@dataclasses.dataclass(frozen=True)
class Chi2Result:
    """A chi-square test of class-proportion invariance across buckets.

    Attributes:
        statistic: the chi-square statistic.
        degrees_of_freedom: (buckets-1) x (classes-1) after pooling.
        p_value: right-tail probability.
        invariant_at_5pct: True when the proportions are statistically
            indistinguishable across buckets at the 5% level (the paper's
            "stays about the same").
    """

    statistic: float
    degrees_of_freedom: int
    p_value: float

    @property
    def invariant_at_5pct(self) -> bool:
        return self.p_value > 0.05


def _chi2_sf(statistic: float, dof: int) -> float:
    """Right-tail chi-square probability.

    Uses the regularized upper incomplete gamma function via the series /
    continued-fraction split (no SciPy dependency in the library core).
    """
    if dof <= 0:
        raise ValueError("dof must be positive")
    if statistic <= 0:
        return 1.0
    return _upper_regularized_gamma(dof / 2.0, statistic / 2.0)


def _upper_regularized_gamma(s: float, x: float) -> float:
    if x < s + 1:
        # Lower series, then complement.
        term = 1.0 / s
        total = term
        k = s
        for _ in range(500):
            k += 1
            term *= x / k
            total += term
            if abs(term) < abs(total) * 1e-12:
                break
        lower = total * math.exp(-x + s * math.log(x) - math.lgamma(s))
        return max(0.0, 1.0 - lower)
    # Continued fraction for the upper function (Lentz's algorithm).
    tiny = 1e-300
    b = x + 1.0 - s
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - s)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return h * math.exp(-x + s * math.log(x) - math.lgamma(s))


def proportion_invariance_chi2(
    series: FigureSeries,
    *,
    pool_environment_dependent: bool = True,
    min_bucket_total: int = 1,
) -> Chi2Result:
    """Test whether class proportions are invariant across buckets.

    Args:
        series: a Figure 1-3 distribution.
        pool_environment_dependent: pool the two environment-dependent
            classes into one column (their per-bucket counts are tiny, as
            the paper's figures show).
        min_bucket_total: drop buckets with fewer faults than this.

    Returns:
        The chi-square result over the (bucket x class) contingency table.

    Raises:
        ValueError: if fewer than two usable buckets remain.
    """
    rows: list[list[int]] = []
    for index in range(len(series.labels)):
        ei = series.counts[FaultClass.ENV_INDEPENDENT][index]
        edn = series.counts[FaultClass.ENV_DEP_NONTRANSIENT][index]
        edt = series.counts[FaultClass.ENV_DEP_TRANSIENT][index]
        if ei + edn + edt < min_bucket_total:
            continue
        if pool_environment_dependent:
            rows.append([ei, edn + edt])
        else:
            rows.append([ei, edn, edt])
    if len(rows) < 2:
        raise ValueError("need at least two non-empty buckets")

    num_columns = len(rows[0])
    column_totals = [sum(row[j] for row in rows) for j in range(num_columns)]
    grand_total = sum(column_totals)
    statistic = 0.0
    for row in rows:
        row_total = sum(row)
        for j in range(num_columns):
            expected = row_total * column_totals[j] / grand_total
            if expected > 0:
                statistic += (row[j] - expected) ** 2 / expected
    dof = (len(rows) - 1) * (num_columns - 1)
    return Chi2Result(
        statistic=statistic,
        degrees_of_freedom=dof,
        p_value=_chi2_sf(statistic, dof),
    )
