"""Section 5.4 aggregate discussion numbers.

"Of the 139 bugs we looked at, we found 14 (10%) environment-dependent-
nontransient faults and 12 (9%) environment-dependent-transient faults."
And from the abstract: "72-87% of the faults are independent of the
operating environment ... only 5-14% of the faults were triggered by
transient conditions."
"""

from __future__ import annotations

import dataclasses

from repro.bugdb.enums import Application, FaultClass
from repro.corpus.loader import StudyData


@dataclasses.dataclass(frozen=True)
class AggregateSummary:
    """Study-wide classification summary.

    Attributes:
        total_faults: faults across all applications.
        counts: aggregate per-class counts.
        per_application: per-application per-class counts.
    """

    total_faults: int
    counts: dict[FaultClass, int]
    per_application: dict[Application, dict[FaultClass, int]]

    def fraction(self, fault_class: FaultClass) -> float:
        """A class's share of all study faults."""
        if self.total_faults == 0:
            return 0.0
        return self.counts[fault_class] / self.total_faults

    def app_fraction(self, application: Application, fault_class: FaultClass) -> float:
        """A class's share within one application."""
        app_counts = self.per_application[application]
        total = sum(app_counts.values())
        if total == 0:
            return 0.0
        return app_counts[fault_class] / total

    def fraction_range(self, fault_class: FaultClass) -> tuple[float, float]:
        """(min, max) of a class's share across the applications.

        The abstract's "72-87%" (environment-independent) and "5-14%"
        (transient) are exactly these ranges.
        """
        fractions = [
            self.app_fraction(application, fault_class)
            for application in self.per_application
        ]
        return (min(fractions), max(fractions))

    @property
    def generic_recovery_upper_bound(self) -> float:
        """The best case for generic recovery: the transient share."""
        return self.fraction(FaultClass.ENV_DEP_TRANSIENT)


def aggregate_summary(study: StudyData) -> AggregateSummary:
    """Aggregate the full study into the Section 5.4 numbers."""
    counts = study.aggregate_counts()
    per_application = {
        application: corpus.class_counts()
        for application, corpus in study.corpora.items()
    }
    return AggregateSummary(
        total_faults=study.total_faults,
        counts=counts,
        per_application=per_application,
    )
