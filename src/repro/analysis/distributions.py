"""Figures 1-3: fault distributions over releases and over time.

Figure 1 (Apache) and Figure 3 (MySQL) plot per-release fault counts
stacked by class; Figure 2 (GNOME) plots counts over time "because of
the nature of GNOME" (one release during the study period).  The series
here carry the same data; rendering lives in :mod:`repro.reports`.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt

from typing import TYPE_CHECKING

from repro.bugdb.enums import Application, FaultClass
from repro.corpus.studyspec import StudyCorpus, StudyFault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus.loader import StudyData


@dataclasses.dataclass(frozen=True)
class FigureSeries:
    """A stacked per-bucket fault distribution.

    Attributes:
        title: figure title.
        labels: bucket labels (release names or time buckets), in order.
        counts: per-class count arrays, aligned with ``labels``.
    """

    title: str
    labels: tuple[str, ...]
    counts: dict[FaultClass, tuple[int, ...]]

    def total(self, index: int) -> int:
        """Total faults in one bucket."""
        return sum(series[index] for series in self.counts.values())

    def totals(self) -> tuple[int, ...]:
        """Total faults per bucket."""
        return tuple(self.total(index) for index in range(len(self.labels)))

    def env_independent_fraction(self, index: int) -> float:
        """Environment-independent share of one bucket (0.0 when empty)."""
        total = self.total(index)
        if total == 0:
            return 0.0
        return self.counts[FaultClass.ENV_INDEPENDENT][index] / total

    def fractions(self) -> tuple[float, ...]:
        """Environment-independent share per bucket."""
        return tuple(
            self.env_independent_fraction(index) for index in range(len(self.labels))
        )


def _bucketize(
    title: str,
    labels: list[str],
    faults_by_label: dict[str, list[StudyFault]],
) -> FigureSeries:
    counts: dict[FaultClass, list[int]] = {fault_class: [] for fault_class in FaultClass}
    for label in labels:
        bucket = faults_by_label.get(label, [])
        for fault_class in FaultClass:
            counts[fault_class].append(
                sum(1 for fault in bucket if fault.fault_class is fault_class)
            )
    return FigureSeries(
        title=title,
        labels=tuple(labels),
        counts={fault_class: tuple(values) for fault_class, values in counts.items()},
    )


def release_distribution(
    corpus: StudyCorpus,
    *,
    release_order: tuple[str, ...] | None = None,
) -> FigureSeries:
    """Per-release fault distribution (Figures 1 and 3).

    Args:
        corpus: the study corpus to bucket.
        release_order: explicit release ordering; defaults to first
            appearance order in the corpus.
    """
    labels = list(release_order) if release_order else corpus.versions()
    by_release: dict[str, list[StudyFault]] = {}
    for fault in corpus.faults:
        by_release.setdefault(fault.version, []).append(fault)
    unknown = set(by_release) - set(labels)
    if unknown:
        raise ValueError(f"faults reference releases outside release_order: {sorted(unknown)}")
    return _bucketize(
        f"Distribution of faults for {corpus.application.display_name} over software releases",
        labels,
        by_release,
    )


def _quarter_label(date: _dt.date) -> str:
    quarter = (date.month - 1) // 3 + 1
    return f"{date.year}Q{quarter}"


def _month_label(date: _dt.date) -> str:
    return f"{date.year}-{date.month:02d}"


def time_distribution(corpus: StudyCorpus, *, granularity: str = "quarter") -> FigureSeries:
    """Fault distribution over time (Figure 2).

    Args:
        corpus: the study corpus to bucket.
        granularity: ``"quarter"`` or ``"month"``.
    """
    if granularity == "quarter":
        label_fn = _quarter_label
    elif granularity == "month":
        label_fn = _month_label
    else:
        raise ValueError(f"unknown granularity: {granularity!r}")

    by_bucket: dict[str, list[StudyFault]] = {}
    for fault in corpus.faults:
        by_bucket.setdefault(label_fn(fault.date), []).append(fault)
    labels = sorted(by_bucket)
    return _bucketize(
        f"Distribution of faults for {corpus.application.display_name} over time",
        labels,
        by_bucket,
    )


def study_figure_series(
    study: "StudyData",
    application: Application,
    *,
    granularity: str = "month",
) -> FigureSeries:
    """The paper's figure series for one application (Figures 1-3).

    The single dispatch point the CLI, the study report, and the F1-F3
    graph nodes all share: Apache and MySQL bucket by release in the
    paper's release order, GNOME buckets over time.

    Args:
        study: the curated study.
        application: which figure to build.
        granularity: GNOME time bucketing (ignored for the others).
    """
    from repro.corpus.apache import RELEASES as APACHE_RELEASES
    from repro.corpus.mysql import RELEASES as MYSQL_RELEASES

    corpus = study.corpus(application)
    if application is Application.APACHE:
        order = tuple(version for version, _ in APACHE_RELEASES)
        return release_distribution(corpus, release_order=order)
    if application is Application.MYSQL:
        order = tuple(version for version, _ in MYSQL_RELEASES)
        return release_distribution(corpus, release_order=order)
    return time_distribution(corpus, granularity=granularity)
