"""Trend statistics behind the Figure 1-3 narratives.

The paper reads three qualitative trends off its figures: report totals
*grow* with newer releases (Apache, MySQL), the newest release is an
outlier because few users run it yet (MySQL), and GNOME shows a *dip*
in reports "for a short interval before increasing again".  This module
quantifies each reading so the figure benchmarks can assert it.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.distributions import FigureSeries


@dataclasses.dataclass(frozen=True)
class TrendSummary:
    """Quantified trend of a per-bucket total series.

    Attributes:
        slope: least-squares slope of totals against bucket index.
        kendall_tau: rank correlation of totals with time (−1..1).
        is_growing: slope positive and tau non-negative.
    """

    slope: float
    kendall_tau: float

    @property
    def is_growing(self) -> bool:
        return self.slope > 0 and self.kendall_tau >= 0


def _least_squares_slope(values: list[int]) -> float:
    count = len(values)
    if count < 2:
        return 0.0
    mean_x = (count - 1) / 2
    mean_y = sum(values) / count
    numerator = sum((i - mean_x) * (y - mean_y) for i, y in enumerate(values))
    denominator = sum((i - mean_x) ** 2 for i in range(count))
    return numerator / denominator


def _kendall_tau(values: list[int]) -> float:
    count = len(values)
    if count < 2:
        return 0.0
    concordant = discordant = 0
    for i in range(count):
        for j in range(i + 1, count):
            if values[j] > values[i]:
                concordant += 1
            elif values[j] < values[i]:
                discordant += 1
    pairs = count * (count - 1) / 2
    return (concordant - discordant) / pairs


def growth_trend(series: FigureSeries, *, drop_last: bool = False) -> TrendSummary:
    """Quantify growth of report totals over buckets.

    Args:
        series: a Figure 1-3 distribution.
        drop_last: exclude the final bucket (MySQL's "very new" release,
            which the paper explicitly discounts).
    """
    totals = list(series.totals())
    if drop_last and totals:
        totals = totals[:-1]
    return TrendSummary(
        slope=_least_squares_slope(totals),
        kendall_tau=_kendall_tau(totals),
    )


@dataclasses.dataclass(frozen=True)
class DipSummary:
    """An interior trough in a total series (the GNOME Figure 2 shape).

    Attributes:
        trough_index: index of the lowest bucket.
        trough_value: its total.
        recovery_peak: the highest total after the trough.
        has_interior_dip: trough strictly inside the series with higher
            totals on both sides.
    """

    trough_index: int
    trough_value: int
    recovery_peak: int
    has_interior_dip: bool


def dip_analysis(series: FigureSeries) -> DipSummary:
    """Locate and characterise the dip-then-rise shape."""
    totals = list(series.totals())
    if not totals:
        return DipSummary(0, 0, 0, False)
    trough_value = min(totals)
    trough_index = totals.index(trough_value)
    after = totals[trough_index + 1 :]
    recovery_peak = max(after) if after else trough_value
    has_interior_dip = (
        0 < trough_index < len(totals) - 1
        and max(totals[:trough_index]) > trough_value
        and recovery_peak > trough_value
    )
    return DipSummary(
        trough_index=trough_index,
        trough_value=trough_value,
        recovery_peak=recovery_peak,
        has_interior_dip=has_interior_dip,
    )


def last_release_outlier_ratio(series: FigureSeries) -> float:
    """Final bucket's total relative to the previous one (MySQL Figure 3).

    Returns 1.0 when there are fewer than two buckets or the previous
    bucket is empty.
    """
    totals = series.totals()
    if len(totals) < 2 or totals[-2] == 0:
        return 1.0
    return totals[-1] / totals[-2]
