"""Section 7 reconciliation with Lee & Iyer's Tandem study [Lee93].

Lee & Iyer reported that 82% of software faults in the Tandem GUARDIAN
operating system were recovered by process pairs -- far above this
paper's 5-14% estimate.  Section 7 reconciles the two numbers by
removing, in turn, the recoveries that a *purely generic* recovery system
would not get:

1. recoveries that relied on application-specific state divergence
   between primary and backup ("memory state" and "error latency"
   categories -- the backup did not start from the failed primary's
   state);
2. recoveries where the backup simply never re-executed the requested
   task (the paper's model requires all requested tasks to execute);
3. faults that only ever affected the backup process (bugs introduced by
   the process-pair mechanism itself, not application faults).

"After eliminating these sources of differences from consideration, only
29% of the software faults are transient bugs in the operating system."

The exact sizes of the removed categories are not all published; the
defaults below are calibrated so the arithmetic lands on the paper's
published endpoints (0.82 in, 0.29 out) while keeping each step's share
plausible relative to Lee & Iyer's category descriptions.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class LeeIyerReconciliation:
    """The 82% -> 29% decomposition as executable arithmetic.

    All fields are fractions of Tandem's observed software faults.

    Attributes:
        reported_recovery_rate: Lee & Iyer's process-pair recovery rate.
        app_specific_state_share: recoveries owed to the backup *not*
            starting from the failed primary's state.
        task_not_reexecuted_share: recoveries owed to the requested task
            never being re-executed.
        backup_only_share: faults that only affected the backup process.
    """

    reported_recovery_rate: float = 0.82
    app_specific_state_share: float = 0.29
    task_not_reexecuted_share: float = 0.14
    backup_only_share: float = 0.10

    def __post_init__(self) -> None:
        for name in (
            "reported_recovery_rate",
            "app_specific_state_share",
            "task_not_reexecuted_share",
            "backup_only_share",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a fraction in [0, 1]")

    @property
    def removed_total(self) -> float:
        """Total recovery share attributable to non-generic effects."""
        return (
            self.app_specific_state_share
            + self.task_not_reexecuted_share
            + self.backup_only_share
        )

    @property
    def purely_generic_rate(self) -> float:
        """Recovery rate a purely generic process pair would have shown."""
        return max(0.0, self.reported_recovery_rate - self.removed_total)

    def steps(self) -> list[tuple[str, float]]:
        """(description, running rate) after each removal, for reporting."""
        running = self.reported_recovery_rate
        rows = [("reported by Lee & Iyer", running)]
        running -= self.app_specific_state_share
        rows.append(("minus app-specific state divergence (memory state, error latency)", running))
        running -= self.task_not_reexecuted_share
        rows.append(("minus task not re-executed by backup", running))
        running -= self.backup_only_share
        rows.append(("minus backup-only faults (process-pair bugs)", running))
        return rows

    def residual_gap_explanations(self) -> list[str]:
        """Why 29% still exceeds this study's 5-14% (the paper's two conjectures)."""
        return [
            "Tandem software is tested more thoroughly, eliminating more "
            "non-transient faults than transient ones",
            "operating-system software interacts more closely with the "
            "hardware, creating more environmental dependencies",
        ]


def lee_iyer_reconciliation() -> LeeIyerReconciliation:
    """The reconciliation with the paper's published endpoints (82% -> 29%)."""
    return LeeIyerReconciliation()
