"""The node registry: every experiment, declaratively wired.

A :class:`Registry` maps node names to :class:`~repro.studygraph.node.
NodeSpec`\\ s and answers the structural questions the scheduler and the
CLI ask: dependency closures, deterministic topological order, the
experiment catalog.  :func:`default_registry` builds (once per process)
the full study graph from the per-subsystem adapters -- see
:mod:`repro.studygraph.nodes` for the wiring itself.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

from repro.errors import ReproError
from repro.studygraph.node import KIND_EXPERIMENT, NodeSpec


class GraphError(ReproError):
    """Structural problem in the study graph (unknown node, cycle, ...)."""


class Registry:
    """A named collection of study-graph nodes."""

    def __init__(self, nodes: Iterable[NodeSpec] = ()):
        self._nodes: dict[str, NodeSpec] = {}
        for node in nodes:
            self.register(node)

    def register(self, node: NodeSpec) -> NodeSpec:
        """Add a node; duplicate names are a wiring bug.

        Raises:
            GraphError: if the name is already registered.
        """
        if node.name in self._nodes:
            raise GraphError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        return node

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, name: str) -> NodeSpec:
        """Look up one node.

        Raises:
            GraphError: unknown name (with the known names listed).
        """
        try:
            return self._nodes[name]
        except KeyError:
            raise GraphError(
                f"unknown study-graph node {name!r}; known: "
                + ", ".join(sorted(self._nodes))
            ) from None

    def names(self) -> list[str]:
        """All node names, in registration order."""
        return list(self._nodes)

    def nodes(self) -> list[NodeSpec]:
        """All nodes, in registration order."""
        return list(self._nodes.values())

    def experiments(self) -> list[NodeSpec]:
        """The experiment-kind nodes (the default ``study run`` targets)."""
        return [node for node in self._nodes.values() if node.kind == KIND_EXPERIMENT]

    def closure(self, targets: Iterable[str]) -> list[str]:
        """Targets plus every transitive dependency, in registration order."""
        needed: set[str] = set()
        stack = list(targets)
        while stack:
            name = stack.pop()
            if name in needed:
                continue
            needed.add(name)
            stack.extend(self.node(name).deps)
        return [name for name in self._nodes if name in needed]

    def topo_order(self, targets: Iterable[str] | None = None) -> list[str]:
        """Dependency-respecting order over the closure of ``targets``.

        Deterministic: among ready nodes, registration order breaks
        ties, so the serial reference execution is reproducible.

        Raises:
            GraphError: on a dependency cycle.
        """
        names = self.closure(targets) if targets is not None else self.names()
        in_set = set(names)
        pending = {
            name: [dep for dep in self.node(name).deps if dep in in_set]
            for name in names
        }
        order: list[str] = []
        placed: set[str] = set()
        while pending:
            ready = [name for name, deps in pending.items()
                     if all(dep in placed for dep in deps)]
            if not ready:
                raise GraphError(
                    "dependency cycle among study-graph nodes: "
                    + ", ".join(sorted(pending))
                )
            for name in ready:
                order.append(name)
                placed.add(name)
                del pending[name]
        return order

    def edges(self) -> list[tuple[str, str]]:
        """``(dependency, node)`` pairs for every declared edge."""
        return [
            (dep, node.name) for node in self._nodes.values() for dep in node.deps
        ]

    def with_overrides(self, overrides: Mapping[str, Mapping[str, object]]) -> "Registry":
        """A copy with per-node parameter overrides applied.

        The CLI uses this to run ad-hoc variants (``figure gnome
        --granularity quarter``) through exactly the registered wiring:
        overridden params flow into the nodes' memo keys, so variants
        never collide with the canonical entries.
        """
        for name in overrides:
            self.node(name)  # raise early on unknown names
        return Registry(
            node.with_params(**overrides[node.name]) if node.name in overrides else node
            for node in self._nodes.values()
        )


_DEFAULT: Registry | None = None
_DEFAULT_LOCK = threading.Lock()


def default_registry() -> Registry:
    """The full study graph, built once per process.

    The wiring lives in :mod:`repro.studygraph.nodes`; importing it is
    deferred so the registry layer stays free of domain imports.

    Thread-safe: concurrent first calls (the ``repro serve`` daemon's
    request threads) build the graph exactly once under a lock and every
    caller receives the same fully-wired registry; the scheduler never
    mutates it mid-request (:meth:`Registry.with_overrides` copies).
    """
    global _DEFAULT
    registry = _DEFAULT
    if registry is None:
        with _DEFAULT_LOCK:
            registry = _DEFAULT
            if registry is None:
                from repro.studygraph.nodes import build_registry

                registry = build_registry()
                _DEFAULT = registry
    return registry
