"""The node registry: every experiment, declaratively wired.

A :class:`Registry` maps node names to :class:`~repro.studygraph.node.
NodeSpec`\\ s and answers the structural questions the scheduler and the
CLI ask: dependency closures, deterministic topological order, the
experiment catalog.  :func:`default_registry` builds (once per process)
the full study graph from the per-subsystem adapters -- see
:mod:`repro.studygraph.nodes` for the wiring itself.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Iterable, Mapping

from repro.errors import ReproError
from repro.studygraph.node import KIND_EXPERIMENT, GridSpec, NodeSpec


class GraphError(ReproError):
    """Structural problem in the study graph (unknown node, cycle, ...)."""


@dataclasses.dataclass(frozen=True)
class GridFamily:
    """One registered grid family: its axes, points, and aggregate.

    Attributes:
        name: the family name (also the aggregate node's name, when
            one was registered).
        axes: the grid's ``(axis, values)`` pairs, sorted by axis name.
        points: the point node names, in expansion order.
        aggregate: the aggregation node's name, or None.
    """

    name: str
    axes: tuple[tuple[str, tuple[Any, ...]], ...]
    points: tuple[str, ...]
    aggregate: str | None = None

    @property
    def size(self) -> int:
        """Number of grid points."""
        return len(self.points)


class Registry:
    """A named collection of study-graph nodes.

    Structural queries scale to thousands-node grids: dependents are
    indexed incrementally at registration time and :meth:`topo_order`
    runs Kahn's algorithm over in-degree counts (O(nodes + edges) per
    wave set), memoizing the resulting order per target set until the
    next :meth:`register` invalidates it.
    """

    def __init__(self, nodes: Iterable[NodeSpec] = ()):
        self._nodes: dict[str, NodeSpec] = {}
        self._dependents: dict[str, list[str]] = {}
        self._families: dict[str, GridFamily] = {}
        self._topo_cache: dict[tuple[str, ...] | None, list[str]] = {}
        for node in nodes:
            self.register(node)

    def register(self, node: NodeSpec) -> NodeSpec:
        """Add a node; duplicate names are a wiring bug.

        Raises:
            GraphError: if the name is already registered.
        """
        if node.name in self._nodes:
            raise GraphError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        for dep in node.deps:
            self._dependents.setdefault(dep, []).append(node.name)
        self._topo_cache.clear()
        return node

    def register_grid(
        self, grid: GridSpec, *, aggregate: NodeSpec | None = None
    ) -> list[NodeSpec]:
        """Expand and register a grid family, plus its aggregation node.

        Every point of ``grid`` is registered as an ordinary node (so
        the scheduler, the memo cache, and ``study run --nodes`` treat
        points exactly like hand-registered nodes); the family itself is
        recorded for family-aware listing (:meth:`families`,
        :meth:`family_of`).  ``aggregate`` -- typically a node named
        after the family whose deps are all the points -- is registered
        alongside and recorded on the family.

        Returns:
            The registered point specs, in expansion order.
        """
        points = grid.expand()
        for point in points:
            self.register(point)
        if aggregate is not None:
            self.register(aggregate)
        self._families[grid.name] = GridFamily(
            name=grid.name,
            axes=grid.axes,
            points=tuple(spec.name for spec in points),
            aggregate=aggregate.name if aggregate is not None else None,
        )
        return points

    def families(self) -> dict[str, GridFamily]:
        """Every registered grid family, keyed by name."""
        return dict(self._families)

    def family(self, name: str) -> GridFamily:
        """Look up one grid family.

        Raises:
            GraphError: unknown family name.
        """
        try:
            return self._families[name]
        except KeyError:
            raise GraphError(
                f"unknown grid family {name!r}; known: "
                + ", ".join(sorted(self._families))
            ) from None

    def family_of(self, name: str) -> str | None:
        """The grid family owning node ``name``, or None."""
        return self.node(name).family or None

    def dependents(self, name: str) -> list[str]:
        """Nodes that declare ``name`` as a dependency (indexed)."""
        return list(self._dependents.get(name, ()))

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, name: str) -> NodeSpec:
        """Look up one node.

        Raises:
            GraphError: unknown name (with the known names listed).
        """
        try:
            return self._nodes[name]
        except KeyError:
            raise GraphError(
                f"unknown study-graph node {name!r}; known: "
                + ", ".join(sorted(self._nodes))
            ) from None

    def names(self) -> list[str]:
        """All node names, in registration order."""
        return list(self._nodes)

    def nodes(self) -> list[NodeSpec]:
        """All nodes, in registration order."""
        return list(self._nodes.values())

    def experiments(self) -> list[NodeSpec]:
        """The experiment-kind nodes (the default ``study run`` targets)."""
        return [node for node in self._nodes.values() if node.kind == KIND_EXPERIMENT]

    def closure(self, targets: Iterable[str]) -> list[str]:
        """Targets plus every transitive dependency, in registration order."""
        needed: set[str] = set()
        stack = list(targets)
        while stack:
            name = stack.pop()
            if name in needed:
                continue
            needed.add(name)
            stack.extend(self.node(name).deps)
        return [name for name in self._nodes if name in needed]

    def topo_order(self, targets: Iterable[str] | None = None) -> list[str]:
        """Dependency-respecting order over the closure of ``targets``.

        Deterministic: the order is wave-structured (every node lands
        after the wave containing its last dependency) with registration
        order breaking ties inside each wave, so the serial reference
        execution is reproducible.  Orders are memoized per target set
        and invalidated by :meth:`register`; callers receive a copy.

        Raises:
            GraphError: on a dependency cycle.
        """
        key = None if targets is None else tuple(sorted(set(targets)))
        cached = self._topo_cache.get(key)
        if cached is not None:
            return list(cached)
        names = self.closure(key) if key is not None else self.names()
        in_set = set(names)
        position = {name: index for index, name in enumerate(names)}
        indegree: dict[str, int] = {}
        dependents: dict[str, list[str]] = {name: [] for name in names}
        for name in names:
            deps = [dep for dep in self.node(name).deps if dep in in_set]
            indegree[name] = len(deps)
            for dep in deps:
                dependents[dep].append(name)
        order: list[str] = []
        wave = [name for name in names if indegree[name] == 0]
        while wave:
            order.extend(wave)
            unlocked: list[str] = []
            for name in wave:
                for child in dependents[name]:
                    indegree[child] -= 1
                    if indegree[child] == 0:
                        unlocked.append(child)
            wave = sorted(unlocked, key=position.__getitem__)
        if len(order) != len(names):
            remaining = in_set.difference(order)
            raise GraphError(
                "dependency cycle among study-graph nodes: "
                + ", ".join(sorted(remaining))
            )
        self._topo_cache[key] = order
        return list(order)

    def edges(self) -> list[tuple[str, str]]:
        """``(dependency, node)`` pairs for every declared edge."""
        return [
            (dep, node.name) for node in self._nodes.values() for dep in node.deps
        ]

    def with_overrides(self, overrides: Mapping[str, Mapping[str, object]]) -> "Registry":
        """A copy with per-node parameter overrides applied.

        The CLI uses this to run ad-hoc variants (``figure gnome
        --granularity quarter``) through exactly the registered wiring:
        overridden params flow into the nodes' memo keys, so variants
        never collide with the canonical entries.
        """
        for name in overrides:
            self.node(name)  # raise early on unknown names
        copy = Registry(
            node.with_params(**overrides[node.name]) if node.name in overrides else node
            for node in self._nodes.values()
        )
        copy._families = dict(self._families)
        return copy


_DEFAULT: Registry | None = None
_DEFAULT_LOCK = threading.Lock()


def default_registry() -> Registry:
    """The full study graph, built once per process.

    The wiring lives in :mod:`repro.studygraph.nodes`; importing it is
    deferred so the registry layer stays free of domain imports.

    Thread-safe: concurrent first calls (the ``repro serve`` daemon's
    request threads) build the graph exactly once under a lock and every
    caller receives the same fully-wired registry; the scheduler never
    mutates it mid-request (:meth:`Registry.with_overrides` copies).
    """
    global _DEFAULT
    registry = _DEFAULT
    if registry is None:
        with _DEFAULT_LOCK:
            registry = _DEFAULT
            if registry is None:
                from repro.studygraph.nodes import build_registry

                registry = build_registry()
                _DEFAULT = registry
    return registry
