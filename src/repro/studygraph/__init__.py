"""``repro.studygraph`` -- one typed artifact graph for every experiment.

The paper is a single coherent study -- archives -> mining ->
classification -> tables/figures -> replay -- but historically each CLI
command and benchmark rebuilt that chain inline around the module-global
study memo.  This package turns every experiment in DESIGN section 4
(T1-T3, F1-F3, A1, A2, E1, M1, C1, plus the section 6 ablations) into a
registered :class:`~repro.studygraph.node.NodeSpec` that declares its
input artifacts and produces a content-addressed output payload.

A scheduler (:func:`~repro.studygraph.scheduler.run_study`) topo-sorts
the graph, runs independent nodes in parallel on the existing
:mod:`repro.harness` pool, and memoizes every node through the
:mod:`repro.pipeline` cache, keyed on input artifact digests plus node
version tags -- so ``repro study run`` reproduces the entire paper in
one parallel, resumable, warm-cache-fast command, with outputs
byte-identical to the per-command paths.

Layering: this package imports from ``corpus``, ``mining``, ``classify``,
``analysis``, ``recovery``, ``reports``, ``harness``, and ``pipeline``;
none of those import back (the CLI is the only caller above this layer).
"""

from repro.studygraph.artifact import ArtifactStore, artifact_digest, canonical_json
from repro.studygraph.context import StudyContext
from repro.studygraph.diff import DiffReport, NodeDiff, diff_caches
from repro.studygraph.node import (
    GridSpec,
    NodeSpec,
    format_grid_value,
    grid_point_label,
    grid_point_name,
)
from repro.studygraph.registry import GridFamily, Registry, default_registry
from repro.studygraph.scheduler import (
    NodeRun,
    StudyRunResult,
    memo_walls,
    order_longest_first,
    run_single_node,
    run_study,
    study_status,
    traced_node_walls,
)

__all__ = [
    "ArtifactStore",
    "DiffReport",
    "GridFamily",
    "GridSpec",
    "NodeDiff",
    "NodeRun",
    "NodeSpec",
    "Registry",
    "StudyContext",
    "StudyRunResult",
    "artifact_digest",
    "canonical_json",
    "default_registry",
    "diff_caches",
    "format_grid_value",
    "grid_point_label",
    "grid_point_name",
    "memo_walls",
    "order_longest_first",
    "run_single_node",
    "run_study",
    "study_status",
    "traced_node_walls",
]
