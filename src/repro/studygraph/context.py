"""The explicit study context threaded through graph execution.

:class:`StudyContext` replaces the hidden module-global
``full_study()`` memo as the way experiment code receives the curated
study: the scheduler builds one context and hands it to every node
producer, so what used to be ambient process state is now an explicit,
swappable argument.  Producers read ``ctx.study``; campaign-scale knobs
(worker count, memo cache, telemetry) ride along on the same object.

``full_study()`` remains as the compatibility path for direct callers
(examples, benchmarks, library users); :meth:`StudyContext.default`
wraps the same shared instance, so both paths see identical data.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.corpus.loader import StudyData, full_study
from repro.harness.telemetry import Telemetry
from repro.pipeline.cache import ParseMineCache


@dataclasses.dataclass
class StudyContext:
    """Everything a study-graph execution threads through its nodes.

    Attributes:
        study: the curated three-application study data.
        workers: worker processes for parallel node execution (1 runs
            inline, the reference path).
        cache: content-addressed node memo store (None disables
            memoization entirely).
        telemetry: counters/timers accumulated across the run.
    """

    study: StudyData
    workers: int = 1
    cache: ParseMineCache | None = None
    telemetry: Telemetry = dataclasses.field(default_factory=Telemetry)

    @classmethod
    def default(
        cls,
        *,
        workers: int = 1,
        cache_dir: str | Path | None = None,
        telemetry: Telemetry | None = None,
    ) -> "StudyContext":
        """A context over the shared curated study.

        Args:
            workers: worker processes for node execution.
            cache_dir: node memo directory (None disables memoization).
            telemetry: accumulate into an existing instance.
        """
        if workers < 1:
            raise ValueError("workers must be at least 1")
        return cls(
            study=full_study(),
            workers=workers,
            cache=ParseMineCache(cache_dir) if cache_dir is not None else None,
            telemetry=telemetry if telemetry is not None else Telemetry(),
        )
