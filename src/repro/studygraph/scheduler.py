"""The study-graph scheduler: parallel, memoized node execution.

:func:`run_study` executes a set of target nodes (every registered
experiment by default) plus their dependency closure:

1. the closure is topo-sorted (:meth:`~repro.studygraph.registry.
   Registry.topo_order`) and executed in dependency *waves* -- every
   node whose inputs are resolved runs in the current wave;
2. each wave's cache misses run as self-describing
   :class:`~repro.harness.workunit.WorkUnit`\\ s on the existing
   :mod:`repro.harness` campaign engine, so node execution inherits the
   pool's fork semantics, telemetry, and determinism contract;
3. every node is memoized through the :class:`~repro.pipeline.cache.
   ParseMineCache`: the memo key is the node's content digest over
   (name, version, params, input artifact digests).  Hits resolve from
   a tiny metadata entry -- the payload itself is loaded lazily, only
   if a downstream miss (or a requested output) needs it, so a fully
   warm re-run does no heavy deserialization at all.

Equivalence contract: for any worker count and any cache state, every
node's payload is identical to the serial cold execution -- producers
are deterministic functions of (study, inputs, params), seeds never
derive from scheduling, and memo hits are content-addressed.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Iterable, Mapping, Sequence

from repro import obs
from repro.obs import resources as obs_resources
from repro.harness.engine import run_campaign
from repro.harness.telemetry import ProgressReporter, Telemetry
from repro.harness.workunit import WorkUnit
from repro.studygraph.artifact import (
    DATA_TAG,
    META_TAG,
    ArtifactStore,
    artifact_digest,
)
from repro.studygraph.context import StudyContext
from repro.studygraph.node import NodeSpec
from repro.studygraph.registry import GraphError, Registry, default_registry

#: WorkUnit.kind for study-graph node executions.
KIND_STUDYGRAPH = "studygraph"

#: Memo payload format version (bump to invalidate every node entry).
MEMO_VERSION = 1

STATUS_EXECUTED = "executed"
STATUS_CACHED = "cached"


@dataclasses.dataclass(frozen=True)
class NodeRun:
    """How one node was satisfied during a run.

    Attributes:
        name: the node.
        status: ``"executed"`` (producer ran) or ``"cached"`` (memo hit).
        digest: the output artifact's content digest.
        key: the node's memo key for this run.
        wall_seconds: producer wall time (0.0 for memo hits).
        cpu_seconds: process CPU time the producer consumed (None for
            memo hits).
        peak_rss_bytes: peak RSS the resource sampler saw while the
            producer ran (None when sampling is off or the node was a
            memo hit).
    """

    name: str
    status: str
    digest: str
    key: str
    wall_seconds: float
    cpu_seconds: float | None = None
    peak_rss_bytes: int | None = None


@dataclasses.dataclass
class StudyRunResult:
    """One completed study-graph execution.

    Attributes:
        runs: per-node outcome, in topological execution order.
        outputs: materialized payloads for the requested output nodes.
        telemetry: counters/timers accumulated across all waves.
        waves: number of dependency waves executed.
    """

    runs: dict[str, NodeRun]
    outputs: dict[str, dict[str, Any]]
    telemetry: Telemetry
    waves: int

    @property
    def executed(self) -> int:
        """Nodes whose producer actually ran."""
        return sum(1 for run in self.runs.values() if run.status == STATUS_EXECUTED)

    @property
    def cached(self) -> int:
        """Nodes satisfied from the memo cache."""
        return sum(1 for run in self.runs.values() if run.status == STATUS_CACHED)

    def output_text(self, name: str) -> str:
        """The rendered text of one output node.

        Raises:
            KeyError: the node was not requested as an output, or its
                payload carries no ``"text"`` field.
        """
        return self.outputs[name]["text"]

    def summary_rows(self) -> list[list[Any]]:
        """``[node, status, wall ms, digest prefix]`` rows for the CLI."""
        return [
            [
                run.name,
                run.status,
                f"{run.wall_seconds * 1000:.1f}",
                run.digest[:12],
            ]
            for run in self.runs.values()
        ]


@dataclasses.dataclass
class _WaveContext:
    """Shared state a wave's forked workers inherit (never pickled)."""

    ctx: StudyContext
    nodes: dict[str, NodeSpec]
    inputs: dict[str, dict[str, Any]]


def _node_runner(unit: WorkUnit, wave: _WaveContext) -> dict[str, Any]:
    """Execute one node inside a pool worker.

    The unit's ``fault_id`` carries the node name; inputs were
    materialized by the parent before the fork.  The payload digest is
    computed worker-side so the parent never re-encodes large payloads.
    """
    node = wave.nodes[unit.fault_id]
    inputs = {dep: wave.inputs[dep] for dep in node.deps}
    started = time.monotonic()
    cpu_started = time.process_time()
    with obs.span(f"node:{node.name}", kind=node.kind):
        payload = node.producer(wave.ctx, inputs, node.params_dict())
    cpu = time.process_time() - cpu_started
    wall = time.monotonic() - started
    # Peak RSS over the node's window, when a sampler covers this
    # process (dispatcher-side on the serial path, worker-side after a
    # fork).  None when sampling is off or the node outran the interval.
    sampler = obs_resources.active_sampler()
    peak_rss = sampler.peak_rss_since(started) if sampler is not None else None
    return {
        "payload": payload,
        "digest": artifact_digest(payload),
        "wall_seconds": wall,
        "cpu_seconds": cpu,
        "peak_rss_bytes": peak_rss,
    }


def _make_store(
    context: StudyContext,
    registry: Registry,
    runs: dict[str, NodeRun],
) -> ArtifactStore:
    """An artifact store whose misses resolve through the memo cache.

    If a cached node's data entry has vanished or rotted (the cache
    treats corruption as a miss, never an error), the node is re-executed
    inline from its own (recursively materialized) inputs.
    """

    def load(name: str) -> dict[str, Any]:
        run = runs.get(name)
        if run is not None and context.cache is not None:
            entry = context.cache.load(run.key, DATA_TAG)
            if entry is not None and "payload" in entry:
                return entry["payload"]
        node = registry.node(name)
        inputs = {dep: store.get(dep) for dep in node.deps}
        context.telemetry.count("studygraph.payload_rebuilds")
        with obs.span(f"rebuild:{name}"):
            return node.producer(context, inputs, node.params_dict())

    store = ArtifactStore(loader=load)
    return store


def order_longest_first(
    names: Sequence[str], priorities: Mapping[str, float]
) -> list[str]:
    """Order a wave's ready nodes by expected cost, longest first.

    ``priorities`` is the perfdb ETA model (node name -> median wall
    seconds, :meth:`repro.obs.PerfDB.node_medians`).  Nodes with history
    run longest-first (name breaks ties deterministically); grid points
    the history has never seen fall back to their family's median (the
    median of the family's per-point medians); nodes with no estimate at
    all keep their FIFO position after the estimated ones.  A pure
    dispatch-order permutation: payloads and digests are unaffected.
    """
    families = obs.family_medians(priorities)
    known: list[tuple[float, str]] = []
    unseen: list[str] = []
    for name in names:
        estimate = priorities.get(name)
        if estimate is None:
            family = obs.grid_family(name)
            estimate = families.get(family) if family is not None else None
        if estimate is None:
            unseen.append(name)
        else:
            known.append((estimate, name))
    known.sort(key=lambda item: (-item[0], item[1]))
    return [name for _, name in known] + unseen


def run_study(
    context: StudyContext | None = None,
    *,
    nodes: Sequence[str] | None = None,
    outputs: Sequence[str] | None = None,
    registry: Registry | None = None,
    progress: ProgressReporter | None = None,
    monitor: Any = None,
    priorities: Mapping[str, float] | None = None,
) -> StudyRunResult:
    """Execute the study graph; see the module docstring for the story.

    Args:
        context: execution context (defaults to a serial, uncached
            context over the shared curated study).
        nodes: target node names (default: every registered experiment).
        outputs: node names whose payloads to materialize in the result
            (default: the targets).  Anything in the executed closure
            may be requested.
        registry: node registry (default: the full study graph).
        progress: optional reporter driven once per wave (resolved nodes
            out of the closure size).
        monitor: optional live monitor (e.g. :class:`repro.obs.
            RunMonitor`): receives run/wave/node lifecycle events here
            and the unit heartbeat from the campaign engine, and writes
            the snapshot ``repro study watch`` renders.  Monitoring
            never touches node payloads or memo keys.
        priorities: perfdb medians (node -> wall seconds) used to
            dispatch each wave's cache misses longest-first
            (:func:`order_longest_first`); None keeps FIFO dispatch.
            Ordering is scheduling-only -- results are bit-identical
            either way.

    Returns:
        Per-node outcomes, requested payloads, and telemetry.
    """
    context = context if context is not None else StudyContext.default()
    registry = registry if registry is not None else default_registry()
    targets = list(nodes) if nodes is not None else [
        node.name for node in registry.experiments()
    ]
    outputs = list(outputs) if outputs is not None else list(targets)
    order = registry.topo_order(targets)
    for name in outputs:
        if name not in order:
            raise GraphError(
                f"requested output {name!r} is not in the executed closure"
            )

    telemetry = context.telemetry
    cache = context.cache
    digests: dict[str, str] = {}
    runs: dict[str, NodeRun] = {}
    store = _make_store(context, registry, runs)
    node_map = {name: registry.node(name) for name in order}

    # In-degree bookkeeping: the reverse-dependency index is built once
    # and each finished node decrements its dependents, so computing the
    # next wave costs O(edges resolved) instead of rescanning every
    # remaining node's dep list per wave.
    position = {name: index for index, name in enumerate(order)}
    indegree: dict[str, int] = {}
    dependents: dict[str, list[str]] = {name: [] for name in order}
    for name in order:
        deps = node_map[name].deps
        indegree[name] = len(deps)
        for dep in deps:
            dependents[dep].append(name)

    waves = 0
    resolved = 0
    ready = [name for name in order if indegree[name] == 0]
    if monitor is not None:
        monitor.run_started(
            total=len(order), workers=context.workers, pending=list(order)
        )
    with telemetry.timed("studygraph.wall"), obs.span(
        "study.run", nodes=len(order), targets=len(targets), workers=context.workers
    ):
        while ready:
            waves += 1
            if monitor is not None:
                monitor.wave_started(waves, ready=len(ready))

            with obs.span("wave", index=waves, ready=len(ready)) as wave_span:
                to_run: list[tuple[str, str]] = []
                for name in ready:
                    node = node_map[name]
                    key = node.cache_digest(
                        {dep: digests[dep] for dep in node.deps}
                    )
                    with obs.span(f"memo:{name}") as memo_span:
                        meta = (
                            cache.load(key, META_TAG) if cache is not None else None
                        )
                        hit = (
                            meta is not None
                            and meta.get("memo_version") == MEMO_VERSION
                            and "digest" in meta
                        )
                        memo_span.set(hit=hit)
                    if hit:
                        digests[name] = meta["digest"]
                        runs[name] = NodeRun(
                            name, STATUS_CACHED, meta["digest"], key,
                            0.0,
                        )
                        telemetry.count("studygraph.nodes.cached")
                        if monitor is not None:
                            monitor.node_finished(name, status=STATUS_CACHED)
                    else:
                        to_run.append((name, key))
                wave_span.set(executed=len(to_run), cached=len(ready) - len(to_run))

                if priorities and len(to_run) > 1:
                    keys = dict(to_run)
                    to_run = [
                        (name, keys[name])
                        for name in order_longest_first(list(keys), priorities)
                    ]
                if to_run:
                    needed = sorted(
                        {dep for name, _ in to_run for dep in node_map[name].deps}
                    )
                    wave_ctx = _WaveContext(
                        ctx=_worker_context(context),
                        nodes=node_map,
                        inputs=store.subset(tuple(needed)),
                    )
                    units = [
                        WorkUnit.build(KIND_STUDYGRAPH, name, params={"key": key})
                        for name, key in to_run
                    ]
                    keys = dict(to_run)
                    campaign = run_campaign(
                        units,
                        _node_runner,
                        context=wave_ctx,
                        workers=context.workers,
                        telemetry=telemetry,
                        heartbeat=monitor,
                    )
                    for unit, result in campaign.pairs():
                        name = unit.fault_id
                        payload = result["payload"]
                        digest = result["digest"]
                        store.put(name, payload)
                        digests[name] = digest
                        runs[name] = NodeRun(
                            name, STATUS_EXECUTED, digest, keys[name],
                            result["wall_seconds"],
                            cpu_seconds=result.get("cpu_seconds"),
                            peak_rss_bytes=result.get("peak_rss_bytes"),
                        )
                        telemetry.count("studygraph.nodes.executed")
                        if cache is not None:
                            cache.store(keys[name], DATA_TAG, {"payload": payload})
                            meta_entry = {
                                "memo_version": MEMO_VERSION,
                                "node": name,
                                "digest": digest,
                                "wall_seconds": round(
                                    result["wall_seconds"], 6
                                ),
                            }
                            if result.get("cpu_seconds") is not None:
                                meta_entry["cpu_seconds"] = round(
                                    result["cpu_seconds"], 6
                                )
                            if result.get("peak_rss_bytes") is not None:
                                meta_entry["peak_rss_bytes"] = int(
                                    result["peak_rss_bytes"]
                                )
                            cache.store(keys[name], META_TAG, meta_entry)

            resolved += len(ready)
            unlocked: list[str] = []
            for name in ready:
                for child in dependents[name]:
                    indegree[child] -= 1
                    if indegree[child] == 0:
                        unlocked.append(child)
            ready = sorted(unlocked, key=position.__getitem__)
            if progress is not None:
                progress.update(len(digests))

        if resolved != len(order):  # topo_order guarantees progress; belt and braces
            raise GraphError(
                "scheduler stalled; unresolved nodes: "
                + ", ".join(name for name in order if name not in digests)
            )

    if progress is not None:
        progress.finish()
    if monitor is not None:
        monitor.run_finished()
    ordered_runs = {name: runs[name] for name in order}
    return StudyRunResult(
        runs=ordered_runs,
        outputs={name: store.get(name) for name in outputs},
        telemetry=telemetry,
        waves=waves,
    )


def _worker_context(context: StudyContext) -> StudyContext:
    """The context handed to producers inside pool workers.

    Producers always see ``workers=1`` so any nested campaign they start
    (the replay nodes run on the harness themselves) stays inline
    instead of forking from a forked worker.
    """
    return StudyContext(
        study=context.study,
        workers=1,
        cache=None,
        telemetry=Telemetry(),
    )


def run_single_node(
    name: str,
    *,
    overrides: Mapping[str, Mapping[str, Any]] | None = None,
    context: StudyContext | None = None,
    registry: Registry | None = None,
) -> dict[str, Any]:
    """Execute one node (plus dependencies) serially; return its payload.

    This is the CLI's per-command path: each classic command resolves
    its registered node, applies flag overrides, and prints the node's
    rendered text -- single-node invocations of the same graph that
    ``study run`` executes wholesale.
    """
    registry = registry if registry is not None else default_registry()
    if overrides:
        registry = registry.with_overrides(overrides)
    result = run_study(
        context if context is not None else StudyContext.default(),
        nodes=[name],
        outputs=[name],
        registry=registry,
    )
    return result.outputs[name]


def study_status(
    context: StudyContext,
    *,
    nodes: Sequence[str] | None = None,
    registry: Registry | None = None,
    trace_records: Sequence[Mapping[str, Any]] | None = None,
) -> list[list[str]]:
    """Per-node memo state without executing anything.

    Walks the closure in topo order resolving digests from metadata
    entries alone.  A node is ``cached`` when its memo entry exists,
    ``missing`` when its inputs resolve but no entry does, and
    ``unknown`` when an upstream miss makes its key uncomputable.

    Returns:
        ``[node, kind, state, digest-or-"-", wall-ms-or-"-"]`` rows; the
        wall column is the producer time recorded when the cached entry
        was originally executed (cached-vs-executed cost at a glance).
        With ``trace_records`` (the spans of a traced run) every row
        gains a ``traced-ms-or-"-"`` column: the summed wall time of
        that node's ``node:*`` spans, so recorded META time and traced
        time sit side by side.
    """
    registry = registry if registry is not None else default_registry()
    targets = list(nodes) if nodes is not None else [
        node.name for node in registry.experiments()
    ]
    order = registry.topo_order(targets)
    traced = (
        traced_node_walls(trace_records) if trace_records is not None else None
    )
    digests: dict[str, str] = {}
    rows: list[list[str]] = []
    for name in order:
        node = registry.node(name)
        if any(dep not in digests for dep in node.deps):
            row = [name, node.kind, "unknown", "-", "-"]
        else:
            key = node.cache_digest({dep: digests[dep] for dep in node.deps})
            meta = (
                context.cache.load(key, META_TAG)
                if context.cache is not None
                else None
            )
            if (
                meta is not None
                and meta.get("memo_version") == MEMO_VERSION
                and "digest" in meta
            ):
                digests[name] = meta["digest"]
                wall = meta.get("wall_seconds")
                row = [
                    name,
                    node.kind,
                    "cached",
                    meta["digest"][:12],
                    f"{wall * 1000:.1f}" if wall is not None else "-",
                ]
            else:
                row = [name, node.kind, "missing", "-", "-"]
        if traced is not None:
            seconds = traced.get(name)
            row.append(f"{seconds * 1000:.1f}" if seconds is not None else "-")
        rows.append(row)
    return rows


def traced_node_walls(
    trace_records: Sequence[Mapping[str, Any]],
) -> dict[str, float]:
    """Wall seconds per node from a trace's ``node:*`` spans.

    Repeated executions of one node (a rebuild after payload rot) sum.
    """
    walls: dict[str, float] = {}
    for record in trace_records:
        name = record.get("name", "")
        if not name.startswith("node:") or "start" not in record or "end" not in record:
            continue
        node = name[len("node:"):]
        seconds = max(0.0, record.get("end", 0.0) - record.get("start", 0.0))
        walls[node] = walls.get(node, 0.0) + seconds
    return walls


def memo_walls(
    context: StudyContext,
    *,
    nodes: Sequence[str] | None = None,
    registry: Registry | None = None,
) -> dict[str, float]:
    """Recorded producer wall seconds for memo-satisfied nodes.

    The same metadata walk as :func:`study_status`, reduced to
    ``{node: wall_seconds}`` for every node whose memo entry resolves
    and recorded a producer time -- the join ``repro perf record`` uses
    to carry cache-satisfied nodes into the perf history.
    """
    registry = registry if registry is not None else default_registry()
    targets = list(nodes) if nodes is not None else [
        node.name for node in registry.experiments()
    ]
    if context.cache is None:
        return {}
    digests: dict[str, str] = {}
    walls: dict[str, float] = {}
    for name in registry.topo_order(targets):
        node = registry.node(name)
        if any(dep not in digests for dep in node.deps):
            continue
        key = node.cache_digest({dep: digests[dep] for dep in node.deps})
        meta = context.cache.load(key, META_TAG)
        if (
            meta is not None
            and meta.get("memo_version") == MEMO_VERSION
            and "digest" in meta
        ):
            digests[name] = meta["digest"]
            if meta.get("wall_seconds") is not None:
                walls[name] = float(meta["wall_seconds"])
    return walls
