"""Content-addressed artifacts: canonical JSON, digests, and the store.

Every node in the study graph produces a JSON payload; the payload's
digest (SHA-256 over its canonical encoding) *is* the artifact's
identity.  Downstream nodes key their own cache entries on these input
digests, so a change anywhere -- a curated fault edited, a miner
version bumped, a parameter overridden -- re-executes exactly the
affected subgraph and nothing else.

:class:`ArtifactStore` is the scheduler's working set: executed payloads
live in memory; payloads of cache-satisfied nodes are loaded lazily from
the :class:`~repro.pipeline.cache.ParseMineCache` only when a downstream
cache miss (or a requested output) actually needs them.  A warm re-run
therefore never deserializes the heavy parsed-archive artifacts at all.
"""

from __future__ import annotations

import datetime as _dt
import enum
import hashlib
import json
from typing import Any, Callable, Mapping

#: Cache tags for studygraph entries (see ParseMineCache path layout).
META_TAG = "sgmeta"
DATA_TAG = "sgdata"


def jsonable(value: Any) -> Any:
    """Recursively convert a value into plain JSON-compatible data.

    Enums become their values, dates their ISO strings, tuples lists,
    and mappings plain dicts with string keys (enum keys use ``.value``).
    Used by fingerprint helpers that serialize domain objects; node
    payloads themselves must already be plain JSON data.
    """
    if isinstance(value, enum.Enum):
        return jsonable(value.value)
    if isinstance(value, (_dt.datetime, _dt.date)):
        return value.isoformat()
    if isinstance(value, Mapping):
        return {
            (key.value if isinstance(key, enum.Enum) else str(key)): jsonable(item)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot make {type(value).__name__} JSON-compatible")


def canonical_json(data: Any) -> str:
    """The canonical encoding digests are computed over.

    Sorted keys, no whitespace, ASCII-only escapes: byte-for-byte stable
    across processes and platforms for any JSON-compatible payload.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"), ensure_ascii=True)


def artifact_digest(payload: Any) -> str:
    """SHA-256 hex digest of a payload's canonical JSON encoding."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class ArtifactStore:
    """Payloads by node name, with lazy loads for cache-satisfied nodes.

    Args:
        loader: ``name -> payload`` fallback invoked on a miss (the
            scheduler wires this to a cache read or, failing that, an
            inline re-execution of the node).
    """

    def __init__(self, loader: Callable[[str], dict[str, Any]] | None = None):
        self._payloads: dict[str, dict[str, Any]] = {}
        self._loader = loader

    def put(self, name: str, payload: dict[str, Any]) -> None:
        """Record an in-memory payload for ``name``."""
        self._payloads[name] = payload

    def has(self, name: str) -> bool:
        """Whether ``name`` is materialized in memory."""
        return name in self._payloads

    def get(self, name: str) -> dict[str, Any]:
        """The payload for ``name``, loading it through the fallback.

        Raises:
            KeyError: unknown artifact and no loader configured.
        """
        if name not in self._payloads:
            if self._loader is None:
                raise KeyError(f"artifact {name!r} is not materialized")
            self._payloads[name] = self._loader(name)
        return self._payloads[name]

    def subset(self, names: tuple[str, ...] | list[str]) -> dict[str, dict[str, Any]]:
        """Materialize and return ``{name: payload}`` for ``names``."""
        return {name: self.get(name) for name in names}
