"""Node-by-node drift report between two study memo caches.

``diff_caches`` walks the study graph in topological order and resolves
each node's memo entry in two caches independently, chaining digests
exactly the way :func:`~repro.studygraph.scheduler.study_status` does.
Because memo keys are content digests over (name, version, params,
input digests), two caches populated by equivalent runs must resolve
every node to the same digest; any divergence is classified:

``match``
    both caches resolve the node to the same output digest.
``payload-drift``
    the node's inputs agree between the caches but its output digest
    differs -- the producer (or its environment) changed behaviour.
``inherited-drift``
    the output digests differ only because an upstream node already
    drifted; the memo keys themselves diverge.
``only-a`` / ``only-b``
    the node resolves in one cache but not the other.
``absent``
    neither cache has an entry (or an upstream gap makes the node's
    key uncomputable in both).

This is the equivalence contract's audit tool: a warm cache diffed
against a fresh cold run of the same code must report zero drift.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Sequence

from repro.pipeline.cache import ParseMineCache
from repro.studygraph.artifact import META_TAG
from repro.studygraph.registry import Registry, default_registry
from repro.studygraph.scheduler import MEMO_VERSION

STATE_MATCH = "match"
STATE_PAYLOAD_DRIFT = "payload-drift"
STATE_INHERITED_DRIFT = "inherited-drift"
STATE_ONLY_A = "only-a"
STATE_ONLY_B = "only-b"
STATE_ABSENT = "absent"

#: States that indicate the two caches disagree about a resolvable node.
DRIFT_STATES = frozenset(
    {STATE_PAYLOAD_DRIFT, STATE_INHERITED_DRIFT, STATE_ONLY_A, STATE_ONLY_B}
)


@dataclasses.dataclass(frozen=True)
class NodeDiff:
    """How one node compares between cache A and cache B.

    Attributes:
        name: the node.
        kind: the node's registered kind.
        state: one of the ``STATE_*`` constants above.
        digest_a: output digest resolved in cache A (None if unresolved).
        digest_b: output digest resolved in cache B (None if unresolved).
        wall_a: producer wall seconds recorded in cache A's memo entry.
        wall_b: producer wall seconds recorded in cache B's memo entry.
    """

    name: str
    kind: str
    state: str
    digest_a: str | None
    digest_b: str | None
    wall_a: float | None
    wall_b: float | None

    @property
    def drifted(self) -> bool:
        """True when the caches disagree about this node."""
        return self.state in DRIFT_STATES

    @property
    def wall_delta(self) -> float | None:
        """B minus A producer wall seconds, when both sides recorded it."""
        if self.wall_a is None or self.wall_b is None:
            return None
        return self.wall_b - self.wall_a


@dataclasses.dataclass(frozen=True)
class DiffReport:
    """The full node-by-node comparison, in topological order."""

    nodes: tuple[NodeDiff, ...]

    @property
    def drifted(self) -> tuple[NodeDiff, ...]:
        """Nodes where the caches disagree."""
        return tuple(node for node in self.nodes if node.drifted)

    @property
    def clean(self) -> bool:
        """True when no resolvable node drifted."""
        return not self.drifted

    def rows(self) -> list[list[str]]:
        """``[node, kind, state, digest a, digest b, Δwall ms]`` CLI rows."""

        def _digest(digest: str | None) -> str:
            return digest[:12] if digest else "-"

        rows = []
        for node in self.nodes:
            delta = node.wall_delta
            rows.append(
                [
                    node.name,
                    node.kind,
                    node.state,
                    _digest(node.digest_a),
                    _digest(node.digest_b),
                    f"{delta * 1000:+.1f}" if delta is not None else "-",
                ]
            )
        return rows


def _resolve(
    cache: ParseMineCache,
    registry: Registry,
    order: Sequence[str],
) -> tuple[dict[str, str], dict[str, float]]:
    """Chain memo digests through one cache (``study_status`` semantics)."""
    digests: dict[str, str] = {}
    walls: dict[str, float] = {}
    for name in order:
        node = registry.node(name)
        if any(dep not in digests for dep in node.deps):
            continue
        key = node.cache_digest({dep: digests[dep] for dep in node.deps})
        meta = cache.load(key, META_TAG)
        if (
            meta is not None
            and meta.get("memo_version") == MEMO_VERSION
            and "digest" in meta
        ):
            digests[name] = meta["digest"]
            wall = meta.get("wall_seconds")
            if wall is not None:
                walls[name] = wall
    return digests, walls


def diff_caches(
    cache_a: str | Path,
    cache_b: str | Path,
    *,
    nodes: Sequence[str] | None = None,
    registry: Registry | None = None,
) -> DiffReport:
    """Compare two memo caches node by node.

    Args:
        cache_a: first memo directory (the baseline).
        cache_b: second memo directory (the candidate).
        nodes: restrict to these targets plus dependencies (default:
            every registered experiment).
        registry: node registry (default: the full study graph).

    Returns:
        A :class:`DiffReport` in topological order; ``report.clean`` is
        the "zero drift" assertion.
    """
    registry = registry if registry is not None else default_registry()
    targets = list(nodes) if nodes is not None else [
        node.name for node in registry.experiments()
    ]
    order = registry.topo_order(targets)

    digests_a, walls_a = _resolve(ParseMineCache(cache_a), registry, order)
    digests_b, walls_b = _resolve(ParseMineCache(cache_b), registry, order)

    diffs: list[NodeDiff] = []
    drifted: set[str] = set()
    for name in order:
        node = registry.node(name)
        in_a, in_b = name in digests_a, name in digests_b
        if in_a and in_b:
            if digests_a[name] == digests_b[name]:
                state = STATE_MATCH
            elif any(dep in drifted for dep in node.deps):
                state = STATE_INHERITED_DRIFT
            else:
                state = STATE_PAYLOAD_DRIFT
        elif in_a:
            state = STATE_ONLY_A
        elif in_b:
            state = STATE_ONLY_B
        else:
            state = STATE_ABSENT
        if state in DRIFT_STATES:
            drifted.add(name)
        diffs.append(
            NodeDiff(
                name=name,
                kind=node.kind,
                state=state,
                digest_a=digests_a.get(name),
                digest_b=digests_b.get(name),
                wall_a=walls_a.get(name),
                wall_b=walls_b.get(name),
            )
        )
    return DiffReport(nodes=tuple(diffs))
