"""The full study graph: every DESIGN §4 experiment, declaratively wired.

This module is pure wiring -- each node names its producer adapter (in
the owning subsystem's ``nodes`` module), its input artifacts, and its
scalar parameters.  Reading it top to bottom *is* reading the study::

    corpus.<app>   curated corpora (roots; content-fingerprinted)
    parsed.<app>   rendered + parsed 1999-style archives
    mined.<app>    mined study sets with narrowing traces
    T1-T3 F1-F3    per-application tables and figures
    A1 A2 C1 E1    aggregate, Lee & Iyer, classifier fidelity, replay
    M1 mine.* funnel.*   the Section 4 mining narrowing
    report catalog       the top-level documents
    ablate.*             the Section 6 sensitivity ablations
    sweep.*              the §5a parameter-grid families (one memoized
                         artifact node per grid point, one aggregation
                         experiment per family rendering the classic
                         sweep table byte-identically)
    scenario.*           the multi-fault scenario sweep (single-fault
                         baseline artifact, one memoized point per
                         sampled catalog pair, the pair-interaction
                         matrix, and temporal clustering)

Bump a node's ``version`` whenever its producer's behaviour changes;
memoized results for it (and its downstream cone) become unreachable.
"""

from __future__ import annotations

from repro.analysis import nodes as analysis_nodes
from repro.bugdb.enums import Application
from repro.classify import nodes as classify_nodes
from repro.corpus import nodes as corpus_nodes
from repro.mining import nodes as mining_nodes
from repro.recovery import nodes as recovery_nodes
from repro.reports import nodes as reports_nodes
from repro.scenarios import nodes as scenario_nodes
from repro.studygraph.node import KIND_ARTIFACT, GridSpec, NodeSpec
from repro.studygraph.registry import Registry

#: MySQL keyword subsets for the Section 6 mining ablation.  Three (not
#: one per prefix length) so the ablation wave packs evenly onto four
#: workers alongside the other long-running nodes.
KEYWORD_SUBSETS = {
    "crash": "crash",
    "crash-seg": "crash,segmentation",
    "crash-seg-race": "crash,segmentation,race",
}

_APPS = (Application.APACHE, Application.GNOME, Application.MYSQL)
_CORPUS_DEPS = tuple(f"corpus.{app.value}" for app in _APPS)
_TABLE_NODES = {Application.APACHE: "T1", Application.GNOME: "T2", Application.MYSQL: "T3"}
_FIGURE_NODES = {Application.APACHE: "F1", Application.GNOME: "F2", Application.MYSQL: "F3"}


def build_registry() -> Registry:
    """Construct the default study graph."""
    registry = Registry()

    for app in _APPS:
        registry.register(
            NodeSpec.build(
                f"corpus.{app.value}",
                corpus_nodes.corpus_artifact,
                params={"application": app.value},
                kind=KIND_ARTIFACT,
                title=f"Curated {app.display_name} corpus (fingerprinted root)",
            )
        )

    for app in _APPS:
        registry.register(
            NodeSpec.build(
                f"parsed.{app.value}",
                mining_nodes.parsed_archive,
                deps=(f"corpus.{app.value}",),
                params={"application": app.value, "scale": None},
                kind=KIND_ARTIFACT,
                title=f"Rendered + parsed {app.display_name} archive",
            )
        )
        registry.register(
            NodeSpec.build(
                f"mined.{app.value}",
                mining_nodes.mined_result,
                deps=(f"parsed.{app.value}",),
                params={"application": app.value},
                kind=KIND_ARTIFACT,
                title=f"Mined {app.display_name} study set + narrowing trace",
            )
        )
        registry.register(
            NodeSpec.build(
                f"mine.{app.value}",
                mining_nodes.mine_report_text,
                deps=(f"mined.{app.value}",),
                params={"application": app.value},
                title=f"Section 4 narrowing report for {app.display_name}",
            )
        )
        registry.register(
            NodeSpec.build(
                f"funnel.{app.value}",
                mining_nodes.funnel_text,
                deps=(f"mined.{app.value}",),
                params={"application": app.value},
                title=f"Narrowing funnel selectivity for {app.display_name}",
            )
        )

    for app in _APPS:
        registry.register(
            NodeSpec.build(
                _TABLE_NODES[app],
                analysis_nodes.table_text,
                deps=(f"corpus.{app.value}",),
                params={"application": app.value},
                title=f"Table: {app.display_name} fault classification",
            )
        )
    for app in _APPS:
        params = {"application": app.value, "width": 40}
        if app is Application.GNOME:
            params["granularity"] = "month"
        registry.register(
            NodeSpec.build(
                _FIGURE_NODES[app],
                analysis_nodes.figure_text,
                deps=(f"corpus.{app.value}",),
                params=params,
                title=f"Figure: {app.display_name} fault distribution",
            )
        )

    registry.register(
        NodeSpec.build(
            "A1",
            analysis_nodes.aggregate_text,
            deps=_CORPUS_DEPS,
            title="Section 5.4 aggregate across applications",
        )
    )
    registry.register(
        NodeSpec.build(
            "A2",
            analysis_nodes.leeiyer_text,
            title="Section 7 Lee & Iyer reconciliation",
        )
    )
    registry.register(
        NodeSpec.build(
            "C1",
            classify_nodes.classifier_fidelity,
            deps=_CORPUS_DEPS,
            title="Classifier fidelity vs. the paper's hand labels",
        )
    )
    registry.register(
        NodeSpec.build(
            "E1",
            recovery_nodes.e1_replay,
            deps=_CORPUS_DEPS,
            params={"techniques": recovery_nodes.ALL_TECHNIQUES},
            title="Recovery replay under the five techniques",
        )
    )
    registry.register(
        NodeSpec.build(
            "M1",
            mining_nodes.m1_narrowing,
            deps=("mine.apache", "mine.gnome", "mine.mysql"),
            title="Section 4 narrowing across all three archives",
        )
    )

    registry.register(
        NodeSpec.build(
            "report",
            reports_nodes.report_text,
            deps=_CORPUS_DEPS,
            params={"format": "text", "with_replay": False},
            title="The full study report",
        )
    )
    registry.register(
        NodeSpec.build(
            "catalog",
            reports_nodes.catalog_text,
            deps=_CORPUS_DEPS,
            title="The 139-fault markdown catalog",
        )
    )

    _register_sweep_grids(registry)
    scenario_nodes.register_scenario_nodes(registry, corpus_deps=_CORPUS_DEPS)

    registry.register(
        NodeSpec.build(
            "ablate.dedup",
            mining_nodes.ablate_dedup,
            deps=("parsed.apache",),
            title="Section 6 ablation: Apache dedup strategies",
        )
    )
    for label, keywords in KEYWORD_SUBSETS.items():
        registry.register(
            NodeSpec.build(
                f"ablate.keywords.{label}",
                mining_nodes.ablate_keywords,
                deps=("parsed.mysql",),
                params={"keywords": keywords},
                title=f"Section 6 ablation: MySQL keywords [{keywords}]",
            )
        )

    return registry


def _register_sweep_grids(registry: Registry) -> None:
    """Register the §5a sweeps as grid families.

    Each family expands into one memoized artifact node per grid point
    (axis values folded into the point's name, version tag, and memo
    key) plus one aggregation experiment, named after the family,
    depending on every point and rendering the classic sweep table
    byte-identically (``tests/recovery/test_sweep_grids.py`` pins the
    equivalences).
    """
    retry_grid = GridSpec.build(
        "sweep.retry-budget",
        recovery_nodes.sweep_retry_budget_point,
        axes={"budget": recovery_nodes.RETRY_BUDGETS},
        deps=_CORPUS_DEPS,
        params={
            "technique": recovery_nodes.SWEEP_TECHNIQUE,
            "race_window": recovery_nodes.SWEEP_RACE_WINDOW,
            "replications": recovery_nodes.SWEEP_REPLICATIONS,
        },
        kind=KIND_ARTIFACT,
        title="§5a retry-budget sweep point",
    )
    registry.register_grid(
        retry_grid,
        aggregate=NodeSpec.build(
            "sweep.retry-budget",
            recovery_nodes.sweep_retry_budget_table,
            deps=tuple(retry_grid.point_names()),
            params={"race_window": recovery_nodes.SWEEP_RACE_WINDOW},
            title="§5a sweep: survival vs. recovery retry budget",
        ),
    )

    race_grid = GridSpec.build(
        "sweep.race-window",
        recovery_nodes.sweep_race_window_point,
        axes={"window": recovery_nodes.RACE_WINDOWS},
        deps=_CORPUS_DEPS,
        params={
            "technique": recovery_nodes.SWEEP_TECHNIQUE,
            "replications": recovery_nodes.SWEEP_REPLICATIONS,
        },
        kind=KIND_ARTIFACT,
        title="§5a race-window sweep point",
    )
    registry.register_grid(
        race_grid,
        aggregate=NodeSpec.build(
            "sweep.race-window",
            recovery_nodes.sweep_race_window_table,
            deps=tuple(race_grid.point_names()),
            params={"technique": recovery_nodes.SWEEP_TECHNIQUE},
            title="§5a sweep: survival vs. racy-window width",
        ),
    )

    rejuvenation_grid = GridSpec.build(
        "sweep.rejuvenation",
        recovery_nodes.sweep_rejuvenation_point,
        axes={
            "interval_hours": recovery_nodes.REJUVENATION_INTERVALS,
            "downtime_minutes": recovery_nodes.REJUVENATION_DOWNTIMES,
        },
        params=recovery_nodes.REJUVENATION_FIXED_PARAMS,
        kind=KIND_ARTIFACT,
        title="§5a rejuvenation-schedule point",
    )
    registry.register_grid(
        rejuvenation_grid,
        aggregate=NodeSpec.build(
            "sweep.rejuvenation",
            recovery_nodes.sweep_rejuvenation_table,
            deps=tuple(rejuvenation_grid.point_names()),
            params={
                "table_downtime_minutes": recovery_nodes.REJUVENATION_TABLE_DOWNTIME
            },
            title="§5a sweep: availability vs. rejuvenation schedule",
        ),
    )

    model_grid = GridSpec.build(
        "sweep.recovery-model",
        classify_nodes.recovery_model_point,
        axes={"model": tuple(label for label, _ in classify_nodes.RECOVERY_MODELS)},
        deps=_CORPUS_DEPS,
        kind=KIND_ARTIFACT,
        title="§5.4 recovery-model point",
    )
    registry.register_grid(
        model_grid,
        aggregate=NodeSpec.build(
            "ablate.recovery-model",
            classify_nodes.ablate_recovery_model_from_points,
            deps=tuple(model_grid.point_names()),
            title="Section 6 ablation: recovery-model boundary",
        ),
    )
