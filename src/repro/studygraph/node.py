"""Typed node specifications: the study graph's unit of declaration.

A :class:`NodeSpec` declares one experiment or intermediate artifact:
its name, the artifacts it consumes (``deps``), scalar parameters, a
version tag, and the producer adapter that computes its payload.  The
spec is pure data plus a function reference -- scheduling, parallelism,
and memoization live in :mod:`repro.studygraph.scheduler`.

Memo keys are content-addressed: :meth:`NodeSpec.cache_digest` hashes
the node's identity (name, version, params) together with the digests
of its input artifacts, so editing an upstream corpus or bumping a
node's version invalidates exactly the downstream cone.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Callable, Mapping, TYPE_CHECKING

from repro.studygraph.artifact import canonical_json

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.studygraph.context import StudyContext

#: Producer signature: ``(context, inputs, params) -> JSON payload``.
#: ``inputs`` maps each dependency name to its payload.
Producer = Callable[["StudyContext", Mapping[str, Any], Mapping[str, Any]], dict[str, Any]]

#: Node roles: experiments are the default ``repro study run`` targets;
#: artifacts are intermediate data (corpora, parsed archives, mined sets).
KIND_EXPERIMENT = "experiment"
KIND_ARTIFACT = "artifact"

_SCALARS = (str, int, float, bool, type(None))


def _canonical_params(params: Mapping[str, Any] | None) -> tuple[tuple[str, Any], ...]:
    """Sort and validate node parameters into a hashable tuple."""
    if not params:
        return ()
    items = []
    for name in sorted(params):
        value = params[name]
        if not isinstance(value, _SCALARS):
            raise TypeError(
                f"node parameter {name!r} must be a JSON scalar, "
                f"got {type(value).__name__}"
            )
        items.append((name, value))
    return tuple(items)


@dataclasses.dataclass(frozen=True)
class NodeSpec:
    """One declared node of the study graph.

    Attributes:
        name: unique node name (``"T1"``, ``"parsed.mysql"``, ...).
        producer: the adapter computing this node's payload.
        deps: names of the input artifacts, in declaration order.
        params: canonicalized scalar parameters, part of the memo key.
        version: bump to invalidate memoized results after a behavioural
            change in the producer (or anything it calls).
        kind: ``"experiment"`` or ``"artifact"``.
        title: human-readable one-liner for catalogs and ``study graph``.
    """

    name: str
    producer: Producer
    deps: tuple[str, ...] = ()
    params: tuple[tuple[str, Any], ...] = ()
    version: str = "1"
    kind: str = KIND_EXPERIMENT
    title: str = ""

    @classmethod
    def build(
        cls,
        name: str,
        producer: Producer,
        *,
        deps: tuple[str, ...] = (),
        params: Mapping[str, Any] | None = None,
        version: str = "1",
        kind: str = KIND_EXPERIMENT,
        title: str = "",
    ) -> "NodeSpec":
        """Construct a spec, canonicalising the parameters."""
        return cls(
            name=name,
            producer=producer,
            deps=tuple(deps),
            params=_canonical_params(params),
            version=version,
            kind=kind,
            title=title,
        )

    def params_dict(self) -> dict[str, Any]:
        """The parameters as a plain dict (what the producer receives)."""
        return dict(self.params)

    def with_params(self, **overrides: Any) -> "NodeSpec":
        """A copy with some parameters overridden (same name and deps).

        Unknown parameter names are rejected so CLI flags cannot drift
        from the node's declaration.
        """
        current = self.params_dict()
        for key in overrides:
            if key not in current:
                raise KeyError(f"node {self.name!r} has no parameter {key!r}")
        current.update(overrides)
        return dataclasses.replace(self, params=_canonical_params(current))

    def cache_digest(self, input_digests: Mapping[str, str]) -> str:
        """The content-addressed memo key for this node.

        Args:
            input_digests: dependency name -> output artifact digest;
                must cover exactly :attr:`deps`.
        """
        missing = [dep for dep in self.deps if dep not in input_digests]
        if missing:
            raise KeyError(f"node {self.name!r} missing input digests for {missing}")
        identity = {
            "node": self.name,
            "version": self.version,
            "params": [[key, value] for key, value in self.params],
            "inputs": {dep: input_digests[dep] for dep in self.deps},
        }
        return hashlib.sha256(canonical_json(identity).encode("utf-8")).hexdigest()
