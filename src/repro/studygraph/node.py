"""Typed node specifications: the study graph's unit of declaration.

A :class:`NodeSpec` declares one experiment or intermediate artifact:
its name, the artifacts it consumes (``deps``), scalar parameters, a
version tag, and the producer adapter that computes its payload.  The
spec is pure data plus a function reference -- scheduling, parallelism,
and memoization live in :mod:`repro.studygraph.scheduler`.

Memo keys are content-addressed: :meth:`NodeSpec.cache_digest` hashes
the node's identity (name, version, params) together with the digests
of its input artifacts, so editing an upstream corpus or bumping a
node's version invalidates exactly the downstream cone.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
from typing import Any, Callable, Mapping, Sequence, TYPE_CHECKING

from repro.studygraph.artifact import canonical_json

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.studygraph.context import StudyContext

#: Producer signature: ``(context, inputs, params) -> JSON payload``.
#: ``inputs`` maps each dependency name to its payload.
Producer = Callable[["StudyContext", Mapping[str, Any], Mapping[str, Any]], dict[str, Any]]

#: Node roles: experiments are the default ``repro study run`` targets;
#: artifacts are intermediate data (corpora, parsed archives, mined sets).
KIND_EXPERIMENT = "experiment"
KIND_ARTIFACT = "artifact"

_SCALARS = (str, int, float, bool, type(None))


def _canonical_params(params: Mapping[str, Any] | None) -> tuple[tuple[str, Any], ...]:
    """Sort and validate node parameters into a hashable tuple."""
    if not params:
        return ()
    items = []
    for name in sorted(params):
        value = params[name]
        if not isinstance(value, _SCALARS):
            raise TypeError(
                f"node parameter {name!r} must be a JSON scalar, "
                f"got {type(value).__name__}"
            )
        items.append((name, value))
    return tuple(items)


@dataclasses.dataclass(frozen=True)
class NodeSpec:
    """One declared node of the study graph.

    Attributes:
        name: unique node name (``"T1"``, ``"parsed.mysql"``, ...).
        producer: the adapter computing this node's payload.
        deps: names of the input artifacts, in declaration order.
        params: canonicalized scalar parameters, part of the memo key.
        version: bump to invalidate memoized results after a behavioural
            change in the producer (or anything it calls).
        kind: ``"experiment"`` or ``"artifact"``.
        title: human-readable one-liner for catalogs and ``study graph``.
        family: owning grid family name for grid-expanded points
            (``""`` for ordinary nodes).  Presentation metadata only --
            deliberately *not* part of :meth:`cache_digest`, which
            already covers the point via its name, version, and params.
    """

    name: str
    producer: Producer
    deps: tuple[str, ...] = ()
    params: tuple[tuple[str, Any], ...] = ()
    version: str = "1"
    kind: str = KIND_EXPERIMENT
    title: str = ""
    family: str = ""

    @classmethod
    def build(
        cls,
        name: str,
        producer: Producer,
        *,
        deps: tuple[str, ...] = (),
        params: Mapping[str, Any] | None = None,
        version: str = "1",
        kind: str = KIND_EXPERIMENT,
        title: str = "",
        family: str = "",
    ) -> "NodeSpec":
        """Construct a spec, canonicalising the parameters."""
        return cls(
            name=name,
            producer=producer,
            deps=tuple(deps),
            params=_canonical_params(params),
            version=version,
            kind=kind,
            title=title,
            family=family,
        )

    def params_dict(self) -> dict[str, Any]:
        """The parameters as a plain dict (what the producer receives)."""
        return dict(self.params)

    def with_params(self, **overrides: Any) -> "NodeSpec":
        """A copy with some parameters overridden (same name and deps).

        Unknown parameter names are rejected so CLI flags cannot drift
        from the node's declaration.
        """
        current = self.params_dict()
        for key in overrides:
            if key not in current:
                raise KeyError(f"node {self.name!r} has no parameter {key!r}")
        current.update(overrides)
        return dataclasses.replace(self, params=_canonical_params(current))

    def cache_digest(self, input_digests: Mapping[str, str]) -> str:
        """The content-addressed memo key for this node.

        Args:
            input_digests: dependency name -> output artifact digest;
                must cover exactly :attr:`deps`.
        """
        missing = [dep for dep in self.deps if dep not in input_digests]
        if missing:
            raise KeyError(f"node {self.name!r} missing input digests for {missing}")
        identity = {
            "node": self.name,
            "version": self.version,
            "params": [[key, value] for key, value in self.params],
            "inputs": {dep: input_digests[dep] for dep in self.deps},
        }
        return hashlib.sha256(canonical_json(identity).encode("utf-8")).hexdigest()


# -- parameter grids ------------------------------------------------------ #

#: Characters an axis name or string value may not contain -- they carry
#: structure in grid-point node names (``family[axis=value,...]``).
_GRID_FORBIDDEN = frozenset("[],= \t\r\n")


def format_grid_value(value: Any) -> str:
    """Render one axis value for a grid-point node name.

    ``None`` renders as ``none`` and booleans as ``true``/``false`` so
    every scalar has exactly one spelling; numbers use their canonical
    ``str`` form (``0.05``, ``30.0``, ``4``).
    """
    if value is None:
        return "none"
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def grid_point_label(point: Mapping[str, Any]) -> str:
    """The canonical ``axis=value,...`` label (axes in sorted order)."""
    return ",".join(
        f"{name}={format_grid_value(point[name])}" for name in sorted(point)
    )


def grid_point_name(family: str, point: Mapping[str, Any]) -> str:
    """The node name of one grid point: ``family[axis=value,...]``.

    This is the naming contract between :meth:`GridSpec.expand` and
    everything that addresses points from outside -- aggregation
    producers wiring their inputs, the CLI's family collapsing, and the
    livestatus ETA fallback all rely on it.
    """
    return f"{family}[{grid_point_label(point)}]"


def _validate_grid_token(kind: str, token: str) -> None:
    if not token:
        raise ValueError(f"grid {kind} must be non-empty")
    bad = _GRID_FORBIDDEN.intersection(token)
    if bad:
        raise ValueError(
            f"grid {kind} {token!r} contains reserved characters "
            + "".join(sorted(bad))
        )


@dataclasses.dataclass(frozen=True)
class GridSpec:
    """A ``NodeSpec`` template plus named scalar-parameter axes.

    A grid expands into one content-digested :class:`NodeSpec` per point
    of the cartesian product of its axes: the point's axis assignment is
    folded into the node *name* (``family[axis=value,...]``), its
    *version* tag (``base.version+axis=value,...``), and -- because axis
    values land in ``params`` -- its memo key.  Each point is therefore
    individually memoized, individually schedulable, and individually
    addressable from the CLI and the serve daemon.

    Attributes:
        base: the template; its name is the family name, its params are
            the fixed (non-swept) parameters shared by every point.
        axes: ``(axis name, values)`` pairs in sorted axis-name order;
            values keep their declared order (it defines the expansion
            order).
    """

    base: NodeSpec
    axes: tuple[tuple[str, tuple[Any, ...]], ...]

    @classmethod
    def build(
        cls,
        name: str,
        producer: Producer,
        *,
        axes: Mapping[str, Sequence[Any]],
        deps: tuple[str, ...] = (),
        params: Mapping[str, Any] | None = None,
        version: str = "1",
        kind: str = KIND_EXPERIMENT,
        title: str = "",
    ) -> "GridSpec":
        """Construct a grid, validating axes against the base template.

        Raises:
            ValueError: empty axes, an axis colliding with a fixed
                parameter, duplicate values on one axis, or a name/value
                carrying the reserved ``[],=`` characters.
            TypeError: a non-scalar axis value.
        """
        base = NodeSpec.build(
            name,
            producer,
            deps=deps,
            params=params,
            version=version,
            kind=kind,
            title=title,
        )
        _validate_grid_token("family name", name)
        if not axes:
            raise ValueError(f"grid {name!r} declares no axes")
        fixed = base.params_dict()
        canonical: list[tuple[str, tuple[Any, ...]]] = []
        for axis in sorted(axes):
            _validate_grid_token("axis name", axis)
            if axis in fixed:
                raise ValueError(
                    f"grid {name!r} axis {axis!r} collides with a fixed parameter"
                )
            values = tuple(axes[axis])
            if not values:
                raise ValueError(f"grid {name!r} axis {axis!r} has no values")
            seen: set[Any] = set()
            for value in values:
                if not isinstance(value, _SCALARS):
                    raise TypeError(
                        f"grid {name!r} axis {axis!r} value must be a JSON "
                        f"scalar, got {type(value).__name__}"
                    )
                if isinstance(value, str):
                    _validate_grid_token("axis value", value)
                key = (type(value).__name__, value)
                if key in seen:
                    raise ValueError(
                        f"grid {name!r} axis {axis!r} repeats value {value!r}"
                    )
                seen.add(key)
            canonical.append((axis, values))
        return cls(base=base, axes=tuple(canonical))

    @property
    def name(self) -> str:
        """The family name (the base template's name)."""
        return self.base.name

    @property
    def size(self) -> int:
        """Number of grid points (product of axis lengths)."""
        size = 1
        for _, values in self.axes:
            size *= len(values)
        return size

    def points(self) -> list[dict[str, Any]]:
        """Every axis assignment, in deterministic expansion order.

        The cartesian product iterates the (sorted) axes with the last
        axis fastest, each axis's values in declared order.
        """
        names = [axis for axis, _ in self.axes]
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(values for _, values in self.axes))
        ]

    def point_names(self) -> list[str]:
        """The node names of every point, in expansion order."""
        return [grid_point_name(self.name, point) for point in self.points()]

    def expand(self) -> list[NodeSpec]:
        """One :class:`NodeSpec` per grid point, in expansion order.

        Point params are the fixed params overlaid with the axis
        assignment; the version tag carries the assignment too, so a
        family-level version bump *or* an axis re-definition invalidates
        exactly the affected memo entries.
        """
        specs: list[NodeSpec] = []
        for point in self.points():
            label = grid_point_label(point)
            merged = self.base.params_dict()
            merged.update(point)
            specs.append(
                NodeSpec.build(
                    grid_point_name(self.name, point),
                    self.base.producer,
                    deps=self.base.deps,
                    params=merged,
                    version=f"{self.base.version}+{label}",
                    kind=self.base.kind,
                    title=f"{self.base.title} [{label}]" if self.base.title else "",
                    family=self.name,
                )
            )
        return specs
