"""Multi-fault replay driver and the interaction taxonomy.

Layered on the same inject -> fail -> recover -> retry core as
:mod:`repro.recovery.driver`, but with several defects armed per attempt:
one application per composed fault's program (faults of the same program
share an application and therefore a fault injector), one fresh recovery
technique instance per application, and a merged workload timeline built
from the scenario's activation offsets.

The joint outcome is classified against the single-fault baselines:

* ``recovery-defeated`` -- recovery survives each fault alone but not the
  composition (the headline interaction: generic recovery's per-fault
  guarantees do not compose);
* ``masked`` -- a fault that manifests alone never manifests in the
  composition (an earlier fault crashes the task first, or its recovery
  repairs the later fault's condition as a side effect);
* ``amplified`` -- the composition survives, but consumes more recovery
  attempts than the two faults needed alone combined;
* ``independent`` -- the joint outcome is what the alone outcomes
  predict.

Determinism: the environment seed derives from the scenario's content
digest, each timing defect draws from its own ``(scenario_id, fault_id)``
scheduler stream, and nothing depends on wall clock or scheduling -- the
same scenario replays bit-identically at any worker count.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro import obs
from repro.apps.base import MiniApplication
from repro.apps.faults import InjectedDefect
from repro.apps.registry import make_application
from repro.corpus.loader import StudyData
from repro.corpus.studyspec import StudyFault
from repro.envmodel.environment import Environment
from repro.envmodel.perturb import compose_recovery_models
from repro.errors import ApplicationCrash, SimulationError
from repro.recovery.base import RecoveryTechnique
from repro.recovery.driver import replay_fault
from repro.recovery.nodes import TECHNIQUES
from repro.rng import DEFAULT_SEED
from repro.scenarios.spec import Scenario

#: Joint outcome matches what the alone outcomes predict.
CLASS_INDEPENDENT = "independent"
#: A fault that manifests alone never manifests in the composition.
CLASS_MASKED = "masked"
#: The composition survives but needs more attempts than the parts.
CLASS_AMPLIFIED = "amplified"
#: Each fault is survivable alone; the composition is not.
CLASS_RECOVERY_DEFEATED = "recovery-defeated"

#: The interaction taxonomy, in presentation order.
INTERACTION_CLASSES: tuple[str, ...] = (
    CLASS_INDEPENDENT,
    CLASS_MASKED,
    CLASS_AMPLIFIED,
    CLASS_RECOVERY_DEFEATED,
)

#: Warm-up operations per application before the fault phase.
WARMUP_OPS = 2

#: Neutral operation name for cascaded phase gaps (guards no fault).
_GAP_OP_PREFIX = "phase-gap-"


@dataclasses.dataclass(frozen=True)
class Manifestation:
    """When one composed defect first fired in the joint replay.

    Attributes:
        fault_id: the composed fault.
        first_run: 1-based workload run in which it first fired.
        first_step: 0-based timeline step of that first firing.
        fires: total times the defect fired across all runs.
    """

    fault_id: str
    first_run: int
    first_step: int
    fires: int


@dataclasses.dataclass(frozen=True)
class BaselineOutcome:
    """The single-fault baseline a pair is classified against.

    Attributes:
        fault_id: the fault replayed alone.
        survived: whether recovery survived it alone.
        attempts_used: recovery attempts it consumed alone.
    """

    fault_id: str
    survived: bool
    attempts_used: int


@dataclasses.dataclass(frozen=True)
class ScenarioOutcome:
    """The result of replaying one multi-fault scenario.

    Attributes:
        scenario_id: the scenario's content digest.
        shape: its activation shape.
        technique: recovery technique name.
        fault_ids: composed faults, canonical order.
        survived: whether a retry completed the full merged workload.
        attempts_used: recovery attempts consumed across all apps.
        manifested: defects that fired, in first-fire order.
        collateral: non-defect failure labels observed (a fault's armed
            condition breaking another fault's operation), in first-seen
            order.
    """

    scenario_id: str
    shape: str
    technique: str
    fault_ids: tuple[str, ...]
    survived: bool
    attempts_used: int
    manifested: tuple[Manifestation, ...]
    collateral: tuple[str, ...]

    @property
    def manifested_ids(self) -> tuple[str, ...]:
        """Fault ids that fired, in first-fire order."""
        return tuple(record.fault_id for record in self.manifested)


def scenario_timeline(
    scenario: Scenario, faults: Mapping[str, StudyFault]
) -> tuple[tuple[str, str], ...]:
    """The merged (application, operation) timeline of a scenario.

    Each application warms up first (the same two warm-up operations the
    single-fault workload uses), then the fault operations run in
    activation-offset order -- equal offsets back to back, gaps in a
    cascaded scenario filled with neutral phase-gap operations on the
    first application.

    Returns:
        Steps as ``(application value, operation)`` pairs; the full
        timeline is replayed on every recovery retry (Section 3: the
        request sequence is fixed).
    """
    resolved = scenario.resolve(faults)
    app_order: list[str] = []
    for fault in resolved:
        if fault.application.value not in app_order:
            app_order.append(fault.application.value)
    steps: list[tuple[str, str]] = [
        (app, f"warmup-{index}")
        for app in app_order
        for index in range(WARMUP_OPS)
    ]
    by_offset: dict[int, list[StudyFault]] = {}
    for component, fault in zip(scenario.components, resolved):
        by_offset.setdefault(component.activation_offset, []).append(fault)
    max_offset = max(by_offset)
    for offset in range(max_offset + 1):
        slot = by_offset.get(offset)
        if slot is None:
            steps.append((app_order[0], f"{_GAP_OP_PREFIX}{offset}"))
        else:
            steps.extend((fault.application.value, fault.workload_op) for fault in slot)
    return tuple(steps)


def _failure_label(error: SimulationError) -> str:
    if isinstance(error, ApplicationCrash):
        return error.fault_id
    return f"resource:{getattr(error, 'resource', 'unknown')}"


def run_scenario(
    scenario: Scenario,
    faults: Mapping[str, StudyFault],
    technique_name: str,
    *,
    seed: int = DEFAULT_SEED,
) -> ScenarioOutcome:
    """Replay one multi-fault scenario under one recovery technique.

    Builds one application per composed program in a single shared
    environment (seeded from the scenario digest), injects every defect
    with its own scheduler stream label, arms the triggering conditions
    in canonical order, then drives the merged timeline to failure and
    lets the crashed application's technique recover until the timeline
    completes or that application's budget is exhausted.

    Arming failures are tolerated: when one fault's condition prevents
    another's from being established (e.g. the disk is already full),
    the second defect simply never fires -- which the classifier then
    reports as masking.

    Args:
        scenario: the composition to replay.
        faults: fault_id -> fault covering the scenario's components.
        technique_name: a :data:`repro.recovery.nodes.TECHNIQUES` key.
        seed: base seed; the environment seed derives from it and the
            scenario id.
    """
    factory = TECHNIQUES[technique_name]
    resolved = scenario.resolve(faults)
    env = Environment(seed=scenario.seed_for(seed))
    env.dns.add_record("client.example.net", "10.0.0.99")
    env.dns.add_record("client5.example.net", "10.0.0.5")

    with obs.span(
        f"scenario:{scenario.scenario_id}",
        technique=technique_name,
        shape=scenario.shape,
        faults=",".join(scenario.fault_ids),
    ) as scenario_span:
        apps: dict[str, MiniApplication] = {}
        techniques: dict[str, RecoveryTechnique] = {}
        for fault in resolved:
            key = fault.application.value
            if key not in apps:
                apps[key] = make_application(fault.application, env)
                techniques[key] = factory()
        # All techniques come from one factory, so composing their models
        # is trivially conflict-free; the call still guards the invariant
        # if per-application technique mixes ever land here.
        compose_recovery_models([t.model for t in techniques.values()])

        for component, fault in zip(scenario.components, resolved):
            app = apps[fault.application.value]
            defect = InjectedDefect(
                fault,
                race_window=component.overlap_window,
                stream_label=scenario.stream_label_for(fault.fault_id),
            )
            app.injector.inject(defect, allow_stacking=True)
            try:
                defect.arm(env, app)
            except SimulationError:
                # The condition could not be established on top of the
                # previously armed ones; the defect stays dormant.
                pass

        for key in apps:
            techniques[key].prepare(apps[key])

        timeline = scenario_timeline(scenario, faults)
        composed_ids = set(scenario.fault_ids)
        manifested: dict[str, Manifestation] = {}
        collateral: list[str] = []
        attempts_by_app = {key: 0 for key in apps}
        survived = False
        run_index = 0
        max_runs = 1 + sum(t.max_attempts for t in techniques.values())
        while run_index < max_runs:
            run_index += 1
            failure: SimulationError | None = None
            failed_app = ""
            for step_index, (app_key, op) in enumerate(timeline):
                try:
                    apps[app_key].run_op(op)
                except SimulationError as error:
                    failure = error
                    failed_app = app_key
                    break
            if failure is None:
                survived = True
                break
            label = _failure_label(failure)
            if label in composed_ids:
                record = manifested.get(label)
                if record is None:
                    manifested[label] = Manifestation(
                        fault_id=label,
                        first_run=run_index,
                        first_step=step_index,
                        fires=1,
                    )
                else:
                    manifested[label] = dataclasses.replace(
                        record, fires=record.fires + 1
                    )
            elif label not in collateral:
                collateral.append(label)
            technique = techniques[failed_app]
            if attempts_by_app[failed_app] >= technique.max_attempts:
                break
            attempts_by_app[failed_app] += 1
            technique.recover(apps[failed_app], attempts_by_app[failed_app])

        ordered = sorted(
            manifested.values(), key=lambda m: (m.first_run, m.first_step)
        )
        outcome = ScenarioOutcome(
            scenario_id=scenario.scenario_id,
            shape=scenario.shape,
            technique=technique_name,
            fault_ids=scenario.fault_ids,
            survived=survived,
            attempts_used=sum(attempts_by_app.values()),
            manifested=tuple(ordered),
            collateral=tuple(collateral),
        )
        scenario_span.set(
            survived=survived,
            attempts=outcome.attempts_used,
            manifested=",".join(outcome.manifested_ids),
        )
        return outcome


def baseline_outcomes(
    study: StudyData,
    technique_name: str,
    *,
    seed: int = DEFAULT_SEED,
) -> dict[str, BaselineOutcome]:
    """Single-fault baselines for every catalog fault under one technique.

    These are ordinary :func:`repro.recovery.driver.replay_fault` runs
    with the standard per-fault seed labels -- byte-identical to the E1
    replay verdicts -- so the pair classifier compares the composition
    against exactly what the single-fault study measured.
    """
    factory = TECHNIQUES[technique_name]
    baselines: dict[str, BaselineOutcome] = {}
    for fault in study.all_faults():
        outcome = replay_fault(fault, factory(), seed=seed)
        baselines[fault.fault_id] = BaselineOutcome(
            fault_id=fault.fault_id,
            survived=outcome.survived,
            attempts_used=outcome.attempts_used,
        )
    return baselines


def classify_interaction(
    outcome: ScenarioOutcome,
    baselines: Mapping[str, BaselineOutcome],
) -> str:
    """Classify one joint outcome against the single-fault baselines.

    Precedence: ``recovery-defeated`` (the strongest statement about
    generic recovery) over ``masked`` over ``amplified`` over
    ``independent``.

    Raises:
        KeyError: if a composed fault has no baseline.
    """
    missing = [fid for fid in outcome.fault_ids if fid not in baselines]
    if missing:
        raise KeyError(f"no baselines for {missing}")
    alone = [baselines[fid] for fid in outcome.fault_ids]
    all_survive_alone = all(b.survived for b in alone)
    if all_survive_alone and not outcome.survived:
        return CLASS_RECOVERY_DEFEATED
    manifested = set(outcome.manifested_ids)
    if any(fid not in manifested for fid in outcome.fault_ids):
        return CLASS_MASKED
    if outcome.survived and outcome.attempts_used > sum(
        b.attempts_used for b in alone
    ):
        return CLASS_AMPLIFIED
    return CLASS_INDEPENDENT
