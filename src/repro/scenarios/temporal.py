"""Temporal clustering of the synthetic fault archives.

The multi-fault repository study (PAPERS.md) characterises *when* faults
arrive, not just what they are: inter-arrival gaps, burstiness, and the
size distribution of temporal clusters.  The same statistics computed
over the curated corpora (whose report dates drive the paper's Figures
1-3) show how strongly the study faults cluster in time -- the
empirical justification for replaying faults *together* rather than one
at a time.

Burstiness is Goh & Barabasi's coefficient ``B = (cv - 1) / (cv + 1)``
over the inter-arrival gaps: -1 for a perfectly regular arrival process,
0 for Poisson, approaching +1 for extreme bursts.
"""

from __future__ import annotations

import dataclasses
import datetime
import math
from typing import Iterable, Sequence

from repro.bugdb.enums import Application
from repro.corpus.loader import StudyData

#: Default clustering window: reports within a week form one burst.
DEFAULT_CLUSTER_WINDOW_DAYS = 7


def arrival_gaps(dates: Iterable[datetime.date]) -> list[float]:
    """Inter-arrival gaps (days) between consecutive sorted dates.

    Simultaneous reports produce zero-length gaps; fewer than two dates
    produce no gaps.
    """
    ordered = sorted(dates)
    return [
        float((later - earlier).days)
        for earlier, later in zip(ordered, ordered[1:])
    ]


def burstiness(gaps: Sequence[float]) -> float:
    """Goh-Barabasi burstiness of a gap sequence.

    Returns 0.0 for degenerate inputs (fewer than two gaps, or an
    all-zero sequence, where the coefficient is undefined).
    """
    if len(gaps) < 2:
        return 0.0
    mean = sum(gaps) / len(gaps)
    if mean == 0.0:
        return 0.0
    variance = sum((gap - mean) ** 2 for gap in gaps) / len(gaps)
    cv = math.sqrt(variance) / mean
    return (cv - 1.0) / (cv + 1.0)


def cluster_sizes(
    dates: Iterable[datetime.date],
    *,
    window_days: int = DEFAULT_CLUSTER_WINDOW_DAYS,
) -> list[int]:
    """Sizes of temporal clusters under a threshold window.

    Consecutive (sorted) reports no more than ``window_days`` apart join
    the same cluster; the result lists cluster sizes in time order.
    """
    ordered = sorted(dates)
    if not ordered:
        return []
    sizes = [1]
    for earlier, later in zip(ordered, ordered[1:]):
        if (later - earlier).days <= window_days:
            sizes[-1] += 1
        else:
            sizes.append(1)
    return sizes


@dataclasses.dataclass(frozen=True)
class TemporalProfile:
    """Temporal statistics of one application's fault archive.

    Attributes:
        application: archive owner (``"all"`` for the combined study).
        faults: number of dated reports.
        span_days: days between first and last report.
        mean_gap_days: mean inter-arrival gap.
        median_gap_days: median inter-arrival gap.
        burstiness: Goh-Barabasi coefficient of the gaps.
        clusters: number of temporal clusters at the window.
        largest_cluster: size of the largest cluster.
        multi_fault_share: fraction of faults arriving in clusters of
            two or more -- the population multi-fault scenarios model.
        window_days: the clustering window used.
    """

    application: str
    faults: int
    span_days: int
    mean_gap_days: float
    median_gap_days: float
    burstiness: float
    clusters: int
    largest_cluster: int
    multi_fault_share: float
    window_days: int


def _median(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def profile_dates(
    application: str,
    dates: Sequence[datetime.date],
    *,
    window_days: int = DEFAULT_CLUSTER_WINDOW_DAYS,
) -> TemporalProfile:
    """Compute the temporal profile of one dated archive."""
    gaps = arrival_gaps(dates)
    sizes = cluster_sizes(dates, window_days=window_days)
    ordered = sorted(dates)
    span = (ordered[-1] - ordered[0]).days if len(ordered) >= 2 else 0
    clustered = sum(size for size in sizes if size >= 2)
    return TemporalProfile(
        application=application,
        faults=len(ordered),
        span_days=span,
        mean_gap_days=sum(gaps) / len(gaps) if gaps else 0.0,
        median_gap_days=_median(gaps),
        burstiness=burstiness(gaps),
        clusters=len(sizes),
        largest_cluster=max(sizes) if sizes else 0,
        multi_fault_share=clustered / len(ordered) if ordered else 0.0,
        window_days=window_days,
    )


def temporal_profile(
    study: StudyData,
    *,
    window_days: int = DEFAULT_CLUSTER_WINDOW_DAYS,
) -> list[TemporalProfile]:
    """Per-application temporal profiles plus the combined study row.

    Rows come in catalog order (Apache, GNOME, MySQL) followed by the
    ``"all"`` aggregate.
    """
    profiles: list[TemporalProfile] = []
    all_dates: list[datetime.date] = []
    for application in Application:
        dates = [fault.date for fault in study.corpus(application).faults]
        all_dates.extend(dates)
        profiles.append(
            profile_dates(application.value, dates, window_days=window_days)
        )
    profiles.append(profile_dates("all", all_dates, window_days=window_days))
    return profiles
