"""Study-graph producers and registration for the scenario sweeps.

The ``scenario.*`` nodes put the multi-fault workload on the same
machinery every other experiment uses -- memoized wave scheduling,
perfdb longest-first dispatch, obs tracing, and the serve daemon all
absorb it unchanged:

* ``scenario.baseline`` (artifact) -- the 139 single-fault replay
  verdicts under the scenario technique, shared by every pair point;
* ``scenario.pairs[pair=A+B]`` (grid family) -- one memoized point per
  sampled catalog pair, replaying the composition and classifying it
  against the baseline;
* ``scenario.pairs`` (aggregate) -- the pair-interaction matrix
  (stratum x interaction-class counts) plus the recovery-defeated roll;
* ``scenario.temporal`` -- temporal clustering of the synthetic
  archives (arrival gaps, burstiness, cluster sizes).

Verdicts are bit-identical across worker counts, dispatch orders, and
served-vs-batch execution: every seed derives from the scenario content
digest, never from scheduling.
"""

from __future__ import annotations

from typing import Any, Mapping, TYPE_CHECKING

from repro.corpus.loader import StudyData, default_study
from repro.reports.tableformat import format_table
from repro.rng import DEFAULT_SEED
from repro.scenarios.engine import (
    CLASS_RECOVERY_DEFEATED,
    INTERACTION_CLASSES,
    BaselineOutcome,
    baseline_outcomes,
    classify_interaction,
    run_scenario,
)
from repro.scenarios.enumerate import (
    fault_index,
    pair_stratum,
    stratified_pair_sample,
)
from repro.scenarios.spec import SHAPE_CONCURRENT, pair_label, pair_scenario
from repro.scenarios.temporal import DEFAULT_CLUSTER_WINDOW_DAYS, temporal_profile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.studygraph.context import StudyContext
    from repro.studygraph.registry import Registry

#: Technique the scenario sweep replays under.
SCENARIO_TECHNIQUE = "checkpoint-rollback"

#: Default pair budget for the registered grid (stratified sample of the
#: 9591-pair space; the tiny interaction-dense strata enter whole).
SCENARIO_BUDGET = 40

#: Sample seed for the registered grid.
SCENARIO_SAMPLE_SEED = DEFAULT_SEED

#: Activation shape of the registered grid's scenarios.
SCENARIO_SHAPE = SHAPE_CONCURRENT

#: The grid family / aggregate node name.
PAIRS_FAMILY = "scenario.pairs"

#: The shared single-fault baseline artifact node name.
BASELINE_NODE = "scenario.baseline"

#: The temporal-clustering experiment node name.
TEMPORAL_NODE = "scenario.temporal"


def scenario_pair_labels(
    study: StudyData | None = None,
    *,
    budget: int = SCENARIO_BUDGET,
    seed: int = SCENARIO_SAMPLE_SEED,
    shape: str = SCENARIO_SHAPE,
) -> list[str]:
    """The pair-axis values of the scenario grid, in sample order.

    A pure function of (catalog, budget, seed, shape): the registry, the
    CLI, and tests all derive the same point set from it.
    """
    if study is None:
        study = default_study()
    sample = stratified_pair_sample(study, budget, seed=seed, shape=shape)
    return [pair_label(scenario) for scenario in sample]


def _baselines_from_payload(payload: Mapping[str, Any]) -> dict[str, BaselineOutcome]:
    return {
        fault_id: BaselineOutcome(
            fault_id=fault_id,
            survived=bool(entry["survived"]),
            attempts_used=int(entry["attempts"]),
        )
        for fault_id, entry in payload["baselines"].items()
    }


def scenario_baseline(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Artifact node: single-fault baselines under the scenario technique.

    One standard replay per catalog fault (the same per-fault seed labels
    as E1, so these verdicts are byte-identical to the single-fault
    study).  Every pair point consumes this payload instead of re-running
    139 replays each.
    """
    baselines = baseline_outcomes(ctx.study, params["technique"])
    survived = sum(b.survived for b in baselines.values())
    return {
        "technique": params["technique"],
        "baselines": {
            fault_id: {"survived": b.survived, "attempts": b.attempts_used}
            for fault_id, b in sorted(baselines.items())
        },
        "text": (
            f"single-fault baselines ({params['technique']}): "
            f"{survived}/{len(baselines)} survived"
        ),
    }


def scenario_pair_point(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """One pair-scenario grid point: replay the composition, classify it.

    Params:
        pair: the ``FAULT-A+FAULT-B`` axis value.
        technique: recovery technique name.
        shape: activation shape.
        window: racy-window width for timing components.
    """
    fault_a, fault_b = params["pair"].split("+")
    scenario = pair_scenario(
        fault_a,
        fault_b,
        shape=params["shape"],
        overlap_window=params["window"],
    )
    faults = fault_index(ctx.study)
    outcome = run_scenario(scenario, faults, params["technique"])
    baselines = _baselines_from_payload(inputs[BASELINE_NODE])
    classification = classify_interaction(outcome, baselines)
    stratum = pair_stratum(faults[fault_a], faults[fault_b])
    return {
        "pair": params["pair"],
        "scenario_id": outcome.scenario_id,
        "shape": outcome.shape,
        "technique": outcome.technique,
        "stratum": list(stratum),
        "classification": classification,
        "survived": outcome.survived,
        "attempts": outcome.attempts_used,
        "manifested": [
            {
                "fault_id": record.fault_id,
                "first_run": record.first_run,
                "first_step": record.first_step,
                "fires": record.fires,
            }
            for record in outcome.manifested
        ],
        "collateral": list(outcome.collateral),
        "text": (
            f"{params['pair']}: {classification} "
            f"(survived={outcome.survived}, attempts={outcome.attempts_used})"
        ),
    }


def render_interaction_matrix(points: list[Mapping[str, Any]]) -> str:
    """The pair-interaction matrix: stratum rows x interaction columns.

    Byte-stable: rows in sorted stratum order, a fixed column per
    interaction class, and a totals row.
    """
    by_stratum: dict[tuple[str, str], dict[str, int]] = {}
    for payload in points:
        stratum = (payload["stratum"][0], payload["stratum"][1])
        counts = by_stratum.setdefault(
            stratum, {name: 0 for name in INTERACTION_CLASSES}
        )
        counts[payload["classification"]] += 1
    totals = {name: 0 for name in INTERACTION_CLASSES}
    rows = []
    for stratum in sorted(by_stratum):
        counts = by_stratum[stratum]
        for name in INTERACTION_CLASSES:
            totals[name] += counts[name]
        rows.append(
            [" x ".join(stratum)]
            + [counts[name] for name in INTERACTION_CLASSES]
            + [sum(counts.values())]
        )
    rows.append(
        ["all"] + [totals[name] for name in INTERACTION_CLASSES] + [len(points)]
    )
    return format_table(
        ["stratum"] + list(INTERACTION_CLASSES) + ["pairs"],
        rows,
        title="Pair-interaction matrix (multi-fault scenario sweep)",
    )


def scenario_pair_matrix(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Aggregation node: the interaction matrix over every pair point."""
    points = sorted(
        (dict(payload) for payload in inputs.values()),
        key=lambda payload: payload["pair"],
    )
    counts = {name: 0 for name in INTERACTION_CLASSES}
    defeated = []
    for payload in points:
        counts[payload["classification"]] += 1
        if payload["classification"] == CLASS_RECOVERY_DEFEATED:
            defeated.append(payload["pair"])
    matrix = render_interaction_matrix(points)
    lines = [matrix, ""]
    lines.append(
        "recovery-defeated pairs (each fault survivable alone, pair not):"
    )
    if defeated:
        lines.extend(f"  {pair}" for pair in sorted(defeated))
    else:
        lines.append("  (none in this sample)")
    return {
        "technique": params["technique"],
        "budget": params["budget"],
        "counts": counts,
        "defeated": sorted(defeated),
        "points": points,
        "text": "\n".join(lines),
    }


def scenario_temporal(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Temporal clustering of the synthetic archives.

    Params:
        window_days: reports at most this many days apart cluster.
    """
    profiles = temporal_profile(ctx.study, window_days=params["window_days"])
    rows = [
        [
            profile.application,
            profile.faults,
            profile.span_days,
            f"{profile.mean_gap_days:.1f}",
            f"{profile.median_gap_days:.1f}",
            f"{profile.burstiness:+.2f}",
            profile.clusters,
            profile.largest_cluster,
            f"{profile.multi_fault_share:.0%}",
        ]
        for profile in profiles
    ]
    text = format_table(
        [
            "archive",
            "faults",
            "span (d)",
            "mean gap",
            "median gap",
            "burstiness",
            "clusters",
            "largest",
            "multi-fault share",
        ],
        rows,
        title=(
            f"Temporal clustering of study faults "
            f"({params['window_days']}-day window)"
        ),
    )
    return {
        "window_days": params["window_days"],
        "profiles": [
            {
                "application": p.application,
                "faults": p.faults,
                "span_days": p.span_days,
                "mean_gap_days": p.mean_gap_days,
                "median_gap_days": p.median_gap_days,
                "burstiness": p.burstiness,
                "clusters": p.clusters,
                "largest_cluster": p.largest_cluster,
                "multi_fault_share": p.multi_fault_share,
            }
            for p in profiles
        ],
        "text": text,
    }


def register_scenario_nodes(
    registry: "Registry",
    *,
    corpus_deps: tuple[str, ...],
    budget: int = SCENARIO_BUDGET,
    seed: int = SCENARIO_SAMPLE_SEED,
    shape: str = SCENARIO_SHAPE,
    technique: str = SCENARIO_TECHNIQUE,
    study: StudyData | None = None,
) -> None:
    """Register the scenario nodes on a registry.

    The pair grid's axis values come from the stratified sample, so the
    registered point set is a pure function of (catalog, budget, seed,
    shape) -- rebuilding the registry anywhere reproduces the same grid.
    """
    from repro.scenarios.spec import DEFAULT_RACE_WINDOW
    from repro.studygraph.node import KIND_ARTIFACT, GridSpec, NodeSpec

    registry.register(
        NodeSpec.build(
            BASELINE_NODE,
            scenario_baseline,
            deps=corpus_deps,
            params={"technique": technique},
            kind=KIND_ARTIFACT,
            title="Single-fault baselines for the scenario sweep",
        )
    )
    pairs_grid = GridSpec.build(
        PAIRS_FAMILY,
        scenario_pair_point,
        axes={
            "pair": tuple(
                scenario_pair_labels(study, budget=budget, seed=seed, shape=shape)
            )
        },
        deps=(BASELINE_NODE,),
        params={
            "technique": technique,
            "shape": shape,
            "window": DEFAULT_RACE_WINDOW,
        },
        kind=KIND_ARTIFACT,
        title="Multi-fault pair-scenario point",
    )
    registry.register_grid(
        pairs_grid,
        aggregate=NodeSpec.build(
            PAIRS_FAMILY,
            scenario_pair_matrix,
            deps=tuple(pairs_grid.point_names()),
            params={"technique": technique, "budget": budget},
            title="Multi-fault pair-interaction matrix",
        ),
    )
    registry.register(
        NodeSpec.build(
            TEMPORAL_NODE,
            scenario_temporal,
            deps=corpus_deps,
            params={"window_days": DEFAULT_CLUSTER_WINDOW_DAYS},
            title="Temporal clustering of the synthetic archives",
        )
    )
