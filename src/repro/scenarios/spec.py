"""Typed multi-fault scenario model.

A :class:`Scenario` composes two or more catalog faults with relative
activation offsets.  Its identity is a *content digest* over the shape
and the canonicalised component list, so the same composition always
gets the same id no matter how it was enumerated, and every derived
seed or RNG stream label hangs off that digest:

* the scenario's environment seed derives from ``(base_seed,
  scenario_id)``, so distinct scenarios never share an interleaving;
* each composed defect's scheduler stream label is
  ``"{scenario_id}:{fault_id}"``, so two timing defects armed in the
  same attempt draw from independent deterministic streams instead of
  consuming each other's draws.

Shapes (the activation geometry):

* ``concurrent`` -- every fault activates at offset 0; their triggering
  operations run back to back inside one task.
* ``nested`` -- each fault activates one step inside the previous one's
  window (offsets 0, 1, 2, ...).
* ``cascaded`` -- faults activate in well-separated phases (offsets 0,
  2, 4, ... with neutral spacer operations between phases).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Iterable, Mapping, Sequence

from repro.apps.faults import DEFAULT_RACE_WINDOW
from repro.corpus.studyspec import StudyFault
from repro.rng import derive_seed

#: All faults activate together.
SHAPE_CONCURRENT = "concurrent"
#: Each fault activates inside the previous one's window.
SHAPE_NESTED = "nested"
#: Faults activate in separated phases (spacer operations between).
SHAPE_CASCADED = "cascaded"

#: The recognised activation shapes, in documentation order.
SHAPES: tuple[str, ...] = (SHAPE_CONCURRENT, SHAPE_NESTED, SHAPE_CASCADED)

#: Offset stride between cascaded phases (spacer ops fill the gap).
_CASCADE_STRIDE = 2

#: Digest prefix marking scenario identifiers.
_ID_PREFIX = "scn-"
_ID_HEX_CHARS = 12


@dataclasses.dataclass(frozen=True)
class ScenarioComponent:
    """One fault's role inside a scenario.

    Attributes:
        fault_id: the catalog fault composed in.
        activation_offset: relative activation slot (0 = task start);
            equal offsets mean concurrent activation.
        overlap_window: racy-window width for timing triggers (the
            fraction of interleavings in which a re-fire lands).
    """

    fault_id: str
    activation_offset: int = 0
    overlap_window: float = DEFAULT_RACE_WINDOW

    def __post_init__(self) -> None:
        if not self.fault_id:
            raise ValueError("scenario component needs a fault id")
        if self.activation_offset < 0:
            raise ValueError("activation offset must be non-negative")
        if not 0.0 <= self.overlap_window <= 1.0:
            raise ValueError("overlap window must be within [0, 1]")


def _canonical_components(
    components: Iterable[ScenarioComponent],
) -> tuple[ScenarioComponent, ...]:
    """Sort components into the canonical (offset, fault id) order.

    Canonicalisation is what makes scenario ids symmetric: composing
    ``(A, B)`` concurrently digests identically to ``(B, A)``.
    """
    ordered = sorted(components, key=lambda c: (c.activation_offset, c.fault_id))
    seen: set[str] = set()
    for component in ordered:
        if component.fault_id in seen:
            raise ValueError(
                f"scenario repeats fault {component.fault_id!r}; "
                "compose distinct faults"
            )
        seen.add(component.fault_id)
    return tuple(ordered)


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A composition of two or more catalog faults.

    Attributes:
        shape: one of :data:`SHAPES`; presentation + offset geometry.
        components: the composed faults in canonical order (sorted by
            activation offset then fault id -- construction enforces it).
    """

    shape: str
    components: tuple[ScenarioComponent, ...]

    def __post_init__(self) -> None:
        if self.shape not in SHAPES:
            raise ValueError(f"unknown scenario shape {self.shape!r}")
        canonical = _canonical_components(self.components)
        if len(canonical) < 2:
            raise ValueError("a scenario composes at least two faults")
        object.__setattr__(self, "components", canonical)

    @classmethod
    def build(
        cls, shape: str, components: Iterable[ScenarioComponent]
    ) -> "Scenario":
        """Construct a scenario, canonicalising component order."""
        return cls(shape=shape, components=tuple(components))

    @property
    def fault_ids(self) -> tuple[str, ...]:
        """The composed fault ids, in canonical component order."""
        return tuple(component.fault_id for component in self.components)

    @property
    def scenario_id(self) -> str:
        """The content-digested scenario identifier.

        Stable across processes and enumeration orders: it hashes the
        shape plus every component's (fault id, offset, window) triple in
        canonical order.
        """
        identity = {
            "shape": self.shape,
            "components": [
                [c.fault_id, c.activation_offset, c.overlap_window]
                for c in self.components
            ],
        }
        blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
        return _ID_PREFIX + digest[:_ID_HEX_CHARS]

    def seed_for(self, base_seed: int) -> int:
        """The environment seed for replaying this scenario.

        Derived from ``(base_seed, scenario_id)``, so every scenario gets
        its own interleaving stream no matter how many run in one sweep.
        """
        return derive_seed(base_seed, f"scenario:{self.scenario_id}")

    def stream_label_for(self, fault_id: str) -> str:
        """The scheduler stream label for one composed defect.

        Labels derive from ``(scenario_id, fault_id)``: two defects armed
        in the same attempt never share an RNG stream, and the same fault
        gets a fresh stream in every distinct scenario.

        Raises:
            KeyError: if ``fault_id`` is not part of this scenario.
        """
        if fault_id not in self.fault_ids:
            raise KeyError(f"fault {fault_id!r} is not part of {self.scenario_id}")
        return f"{self.scenario_id}:{fault_id}"

    def resolve(self, faults_by_id: Mapping[str, StudyFault]) -> tuple[StudyFault, ...]:
        """Look up the composed faults, in canonical component order.

        Raises:
            KeyError: if a component names a fault missing from the map.
        """
        missing = [fid for fid in self.fault_ids if fid not in faults_by_id]
        if missing:
            raise KeyError(f"scenario {self.scenario_id} names unknown faults {missing}")
        return tuple(faults_by_id[fid] for fid in self.fault_ids)


def _offsets_for_shape(shape: str, count: int) -> list[int]:
    if shape == SHAPE_CONCURRENT:
        return [0] * count
    if shape == SHAPE_NESTED:
        return list(range(count))
    if shape == SHAPE_CASCADED:
        return [index * _CASCADE_STRIDE for index in range(count)]
    raise ValueError(f"unknown scenario shape {shape!r}")


def compose_scenario(
    fault_ids: Sequence[str],
    *,
    shape: str = SHAPE_CONCURRENT,
    overlap_window: float = DEFAULT_RACE_WINDOW,
) -> Scenario:
    """Compose a scenario from fault ids using a shape's offset geometry.

    For non-concurrent shapes the activation order is the given id order
    (the first id activates first); for concurrent scenarios order is
    immaterial and the canonical sort makes the digest symmetric.
    """
    offsets = _offsets_for_shape(shape, len(fault_ids))
    return Scenario.build(
        shape,
        (
            ScenarioComponent(
                fault_id=fault_id,
                activation_offset=offset,
                overlap_window=overlap_window,
            )
            for fault_id, offset in zip(fault_ids, offsets)
        ),
    )


def pair_scenario(
    fault_a: str,
    fault_b: str,
    *,
    shape: str = SHAPE_CONCURRENT,
    overlap_window: float = DEFAULT_RACE_WINDOW,
) -> Scenario:
    """Compose the canonical two-fault scenario for a catalog pair."""
    return compose_scenario(
        (fault_a, fault_b), shape=shape, overlap_window=overlap_window
    )


def pair_label(scenario: Scenario) -> str:
    """The human-readable ``FAULT-A+FAULT-B`` label of a pair scenario.

    Used as the grid-axis value for ``scenario.pairs`` points; fault ids
    contain no grid-reserved characters, and the canonical component
    order makes the label deterministic.
    """
    return "+".join(scenario.fault_ids)
