"""Multi-fault scenarios: composed defects, interaction classification.

The source paper injects one fault at a time; this package composes two
or more catalog faults into a :class:`~repro.scenarios.spec.Scenario`
(concurrent, nested, or cascaded activation), replays the composition
under a generic recovery technique, and classifies the joint outcome
against the single-fault baselines -- does recovery that survives each
fault alone also survive the pair?

Modules:

* :mod:`repro.scenarios.spec` -- the typed scenario model (content-digested
  ids, deterministic per-scenario seeds, per-defect RNG stream labels).
* :mod:`repro.scenarios.enumerate` -- pairwise and sampled k-fault scenario
  generation over the catalog with symmetry dedup and stratified sampling.
* :mod:`repro.scenarios.engine` -- the multi-fault replay driver and the
  interaction taxonomy (independent / masked / amplified /
  recovery-defeated).
* :mod:`repro.scenarios.temporal` -- temporal clustering of the synthetic
  archives (arrival gaps, burstiness, cluster sizes).
* :mod:`repro.scenarios.nodes` -- study-graph producers and the
  ``scenario.*`` grid family registration.
"""

from repro.scenarios.spec import (
    SHAPE_CASCADED,
    SHAPE_CONCURRENT,
    SHAPE_NESTED,
    SHAPES,
    Scenario,
    ScenarioComponent,
    pair_scenario,
)
from repro.scenarios.enumerate import (
    enumerate_pairs,
    sample_k_scenarios,
    stratified_pair_sample,
)
from repro.scenarios.engine import (
    CLASS_AMPLIFIED,
    CLASS_INDEPENDENT,
    CLASS_MASKED,
    CLASS_RECOVERY_DEFEATED,
    INTERACTION_CLASSES,
    Manifestation,
    ScenarioOutcome,
    classify_interaction,
    run_scenario,
)
from repro.scenarios.temporal import (
    TemporalProfile,
    arrival_gaps,
    burstiness,
    cluster_sizes,
    temporal_profile,
)

__all__ = [
    "SHAPES",
    "SHAPE_CONCURRENT",
    "SHAPE_NESTED",
    "SHAPE_CASCADED",
    "Scenario",
    "ScenarioComponent",
    "pair_scenario",
    "enumerate_pairs",
    "stratified_pair_sample",
    "sample_k_scenarios",
    "INTERACTION_CLASSES",
    "CLASS_INDEPENDENT",
    "CLASS_MASKED",
    "CLASS_AMPLIFIED",
    "CLASS_RECOVERY_DEFEATED",
    "Manifestation",
    "ScenarioOutcome",
    "run_scenario",
    "classify_interaction",
    "TemporalProfile",
    "arrival_gaps",
    "burstiness",
    "cluster_sizes",
    "temporal_profile",
]
