"""Scenario enumeration over the 139-fault catalog.

The pairwise space is C(139, 2) = 9591 unordered pairs -- enumerable,
but large enough that sweeps need an explicit budget.  This module
provides both: full enumeration with dedup under symmetry (a pair is
generated once regardless of fault order), and reproducible stratified
sampling by fault-class pair so a 40-point budget still covers every
interaction stratum, including the timing-x-timing pairs where genuine
recovery-defeating interaction lives.

Strata are keyed by the unordered pair of *class labels*: the paper's
three classes (EI / EDN / EDT), with timing-triggered EDT faults split
into their own ``EDT-timing`` label because their retry behaviour (a
fresh scheduler draw per recovery) is what makes pair interaction
interesting.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.apps.faults import DEFAULT_RACE_WINDOW
from repro.bugdb.enums import FaultClass
from repro.corpus.loader import StudyData
from repro.corpus.studyspec import StudyFault
from repro.recovery.campaign import TIMING_TRIGGERS
from repro.rng import DEFAULT_SEED, make_rng
from repro.scenarios.spec import (
    SHAPE_CONCURRENT,
    Scenario,
    compose_scenario,
    pair_scenario,
)

#: Short class labels used for strata and matrix axes.
CLASS_LABELS = {
    FaultClass.ENV_INDEPENDENT: "EI",
    FaultClass.ENV_DEP_NONTRANSIENT: "EDN",
    FaultClass.ENV_DEP_TRANSIENT: "EDT",
}

#: The timing-triggered sub-label (EDT faults whose retry redraws).
TIMING_LABEL = "EDT-timing"


def class_label(fault: StudyFault) -> str:
    """The stratification label of one fault."""
    if fault.trigger in TIMING_TRIGGERS:
        return TIMING_LABEL
    return CLASS_LABELS[fault.fault_class]


def pair_stratum(fault_a: StudyFault, fault_b: StudyFault) -> tuple[str, str]:
    """The unordered class-label stratum of a pair."""
    labels = sorted((class_label(fault_a), class_label(fault_b)))
    return (labels[0], labels[1])


def fault_index(study: StudyData) -> dict[str, StudyFault]:
    """fault_id -> fault for the whole study (canonical catalog order)."""
    return {fault.fault_id: fault for fault in study.all_faults()}


def enumerate_pairs(
    study: StudyData,
    *,
    budget: int | None = None,
    seed: int = DEFAULT_SEED,
    shape: str = SHAPE_CONCURRENT,
    overlap_window: float = DEFAULT_RACE_WINDOW,
) -> list[Scenario]:
    """Generate pair scenarios over the catalog.

    With ``budget=None`` every unordered pair is generated exactly once
    (C(139, 2) = 9591 scenarios for the full catalog); symmetry dedup is
    structural -- pairs come from combinations, and the scenario digest
    is itself symmetric for concurrent shapes.  With a budget the pairs
    are stratified-sampled (see :func:`stratified_pair_sample`).

    Returns:
        Scenarios in a deterministic order (catalog order for full
        enumeration, stratum-then-id order for samples).
    """
    if budget is not None:
        return stratified_pair_sample(
            study,
            budget,
            seed=seed,
            shape=shape,
            overlap_window=overlap_window,
        )
    faults = study.all_faults()
    scenarios: list[Scenario] = []
    for index, fault_a in enumerate(faults):
        for fault_b in faults[index + 1 :]:
            scenarios.append(
                pair_scenario(
                    fault_a.fault_id,
                    fault_b.fault_id,
                    shape=shape,
                    overlap_window=overlap_window,
                )
            )
    return scenarios


def _strata(
    faults: Sequence[StudyFault],
) -> dict[tuple[str, str], list[tuple[str, str]]]:
    """Unordered fault-id pairs grouped by class-label stratum.

    Pairs within a stratum keep catalog order, so sampling is a pure
    function of the stratum contents and the sample RNG.
    """
    strata: dict[tuple[str, str], list[tuple[str, str]]] = {}
    for index, fault_a in enumerate(faults):
        for fault_b in faults[index + 1 :]:
            stratum = pair_stratum(fault_a, fault_b)
            strata.setdefault(stratum, []).append(
                (fault_a.fault_id, fault_b.fault_id)
            )
    return strata


#: Strata at most this large are enumerated exhaustively before any
#: sampling.  The interaction-dense strata are tiny -- EDT x EDT and
#: timing x timing are 15 pairs each on the full catalog -- and skipping
#: even one of their pairs can hide a genuine recovery-defeating
#: interaction, so a budget first buys them whole.
EXHAUSTIVE_STRATUM_LIMIT = 16


def _allocate(
    strata: Mapping[tuple[str, str], list[tuple[str, str]]], size: int
) -> dict[tuple[str, str], int]:
    """Allocate a sample budget across strata.

    Strata no larger than :data:`EXHAUSTIVE_STRATUM_LIMIT` are taken
    whole (in sorted stratum order) while the budget lasts; the remainder
    is split across the large strata by largest-remainder proportional
    allocation with a floor of one, so every stratum stays represented.
    """
    keys = sorted(strata)
    total = sum(len(strata[key]) for key in keys)
    if size >= total:
        return {key: len(strata[key]) for key in keys}
    counts = {key: 0 for key in keys}
    budget = size
    large: list[tuple[str, str]] = []
    for key in keys:
        if len(strata[key]) <= EXHAUSTIVE_STRATUM_LIMIT:
            take = min(len(strata[key]), budget)
            counts[key] = take
            budget -= take
        else:
            large.append(key)
    if budget <= 0 or not large:
        return counts
    large_total = sum(len(strata[key]) for key in large)
    shares = {key: budget * len(strata[key]) / large_total for key in large}
    for key in large:
        counts[key] = min(int(shares[key]), len(strata[key]))
    if budget >= len(large):
        for key in large:
            if counts[key] == 0:
                counts[key] = 1
    remaining = budget - sum(counts[key] for key in large)
    if remaining > 0:
        by_remainder = sorted(
            large, key=lambda key: (-(shares[key] - int(shares[key])), key)
        )
        for key in by_remainder:
            if remaining == 0:
                break
            if counts[key] < len(strata[key]):
                counts[key] += 1
                remaining -= 1
    while remaining < 0:
        # The floor of one can over-allocate; shave the largest counts
        # first (deterministic tie-break on the stratum key).
        key = min(
            (key for key in large if counts[key] > 1),
            key=lambda key: (-counts[key], key),
        )
        counts[key] -= 1
        remaining += 1
    return counts


def stratified_pair_sample(
    study: StudyData,
    size: int,
    *,
    seed: int = DEFAULT_SEED,
    shape: str = SHAPE_CONCURRENT,
    overlap_window: float = DEFAULT_RACE_WINDOW,
) -> list[Scenario]:
    """A reproducible stratified sample of pair scenarios.

    Args:
        study: the catalog to sample over.
        size: number of pairs to draw (clamped to the full space).
        seed: sample seed; the draw is a pure function of (catalog,
            size, seed, shape).
        shape: activation shape for the composed scenarios.
        overlap_window: racy-window width for timing components.

    Returns:
        Scenarios ordered by stratum then scenario id -- independent of
        enumeration internals, so callers can diff samples across runs.
    """
    if size < 1:
        raise ValueError("sample size must be at least 1")
    strata = _strata(study.all_faults())
    counts = _allocate(strata, size)
    scenarios: list[Scenario] = []
    for stratum in sorted(strata):
        wanted = counts.get(stratum, 0)
        if wanted == 0:
            continue
        pairs = strata[stratum]
        rng = make_rng(seed, f"scenario-sample:{shape}:{size}:{'x'.join(stratum)}")
        chosen = pairs if wanted >= len(pairs) else rng.sample(pairs, wanted)
        stratum_scenarios = [
            pair_scenario(a, b, shape=shape, overlap_window=overlap_window)
            for a, b in chosen
        ]
        stratum_scenarios.sort(key=lambda s: s.scenario_id)
        scenarios.extend(stratum_scenarios)
    return scenarios


def sample_k_scenarios(
    study: StudyData,
    *,
    k: int,
    count: int,
    seed: int = DEFAULT_SEED,
    shape: str = SHAPE_CONCURRENT,
    overlap_window: float = DEFAULT_RACE_WINDOW,
) -> list[Scenario]:
    """Reproducibly sample ``count`` scenarios of ``k`` distinct faults.

    The k > 2 space is far too large to enumerate (C(139, 3) alone is
    ~440k), so higher-order scenarios are always sampled.  Draws are
    deterministic for a fixed (catalog, k, count, seed, shape).
    """
    if k < 2:
        raise ValueError("scenarios compose at least two faults")
    if count < 1:
        raise ValueError("count must be at least 1")
    fault_ids = [fault.fault_id for fault in study.all_faults()]
    if k > len(fault_ids):
        raise ValueError(f"k={k} exceeds the {len(fault_ids)}-fault catalog")
    rng = make_rng(seed, f"scenario-sample-k:{shape}:{k}:{count}")
    seen: set[str] = set()
    scenarios: list[Scenario] = []
    while len(scenarios) < count:
        chosen = rng.sample(fault_ids, k)
        scenario = compose_scenario(
            chosen, shape=shape, overlap_window=overlap_window
        )
        if scenario.scenario_id in seen:
            continue
        seen.add(scenario.scenario_id)
        scenarios.append(scenario)
    return scenarios
