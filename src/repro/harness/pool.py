"""Worker pool: fork-based process parallelism with a serial fallback.

The pool runs a campaign's work units through a runner callable, either
inline (``workers=1``) or across a ``concurrent.futures``
``ProcessPoolExecutor`` using the **fork** start method.  Fork matters
for two reasons:

* **per-worker caching** -- the parent builds the campaign context once
  (study fault map, technique factories, the loaded
  :func:`~repro.corpus.loader.full_study` cache) and every worker
  inherits it at fork time for free, instead of re-deserialising it per
  task;
* **arbitrary factories** -- technique factories are often lambdas or
  closures, which cannot cross a pickle boundary; under fork they never
  have to.

On platforms without fork (or when ``workers <= 1``) the pool degrades
to the inline serial path, which is also the reference path for the
determinism contract: because every unit carries its own derived seed,
the verdicts are identical either way.

Failures propagate: if a runner raises, the campaign aborts with that
exception.  Completed units are already journaled, so rerunning resumes
past them.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import multiprocessing
import os
import threading
import time
from typing import Any, Callable, Sequence

from repro import obs
from repro.obs import resources as obs_resources
from repro.harness.shard import shard_count_for, shard_units
from repro.harness.workunit import WorkUnit

#: Runner signature: (unit, campaign context) -> JSON-serialisable result.
UnitRunner = Callable[[WorkUnit, Any], dict[str, Any]]

# Campaign runtime inherited by forked workers.  Only the *parallel*
# path uses it (workers read their forked copy inside _execute_shard);
# the serial path passes the runtime explicitly and is fully re-entrant,
# so concurrent serial campaigns (the serve daemon's request threads)
# never touch this global.  _RUNTIME_LOCK serialises concurrent parallel
# campaigns around the fork window.
_RUNTIME: tuple[UnitRunner, Any] | None = None
_RUNTIME_LOCK = threading.Lock()


@dataclasses.dataclass(frozen=True)
class UnitExecution:
    """One executed unit, as reported back from a worker.

    Attributes:
        key: the unit's content hash.
        result: the runner's JSON-serialisable result.
        wall_seconds: time spent inside the runner.
        queue_seconds: submission-to-start latency (includes time spent
            behind earlier units in the same shard).
        worker_pid: the executing process id.
        spans: trace-span records captured while the unit ran (empty
            when tracing is disabled); the dispatching side feeds them
            to its sink so a trace has exactly one writer process.
        resources: span-attributed resource-sample records taken in the
            worker while the unit ran (empty when sampling is off or
            the unit finished inside one sampling interval); shipped
            and ingested exactly like ``spans``.
    """

    key: str
    result: dict[str, Any]
    wall_seconds: float
    queue_seconds: float
    worker_pid: int
    spans: tuple[dict[str, Any], ...] = ()
    resources: tuple[dict[str, Any], ...] = ()


def _execute_shard(
    shard: Sequence[WorkUnit],
    submitted_at: float,
    trace_parent: dict[str, Any] | None = None,
    runtime: tuple[UnitRunner, Any] | None = None,
) -> list[UnitExecution]:
    """Run one shard of units in the current process (worker side).

    ``trace_parent`` is the dispatcher's span context: every unit span
    recorded here is parented under it, so worker-side spans link to the
    dispatching wave across the process boundary.

    ``runtime`` is passed explicitly on the serial path; forked workers
    leave it None and read the module global inherited at fork time.

    When resource sampling is configured (the worker inherited the
    dispatcher's :func:`repro.obs.resources.configure` at fork time), a
    shard-scoped sampler runs alongside and its records ship back on
    each unit, attributed to the span open at sample time.  Only forked
    workers start one -- on the serial path the dispatcher's own
    campaign sampler already covers this process.  Sampler trouble
    never fails the shard.
    """
    runner, context = runtime if runtime is not None else _RUNTIME  # type: ignore[misc]
    sampler = None
    if runtime is None:
        interval = obs_resources.configured_interval()
        if interval is not None:
            try:
                sampler = obs_resources.ResourceSampler(interval).start()
            except Exception:
                sampler = None
    executions = []
    try:
        for unit in shard:
            started = time.monotonic()
            with obs.capture(trace_parent) as captured:
                attrs: dict[str, Any] = {"unit": unit.fault_id}
                if unit.technique:
                    attrs["technique"] = unit.technique
                with obs.span(f"unit:{unit.kind}", **attrs) as unit_span:
                    result = runner(unit, context)
                    unit_span.set(queue_ms=round((started - submitted_at) * 1000, 3))
            finished = time.monotonic()
            executions.append(
                UnitExecution(
                    key=unit.key(),
                    result=result,
                    wall_seconds=finished - started,
                    queue_seconds=max(0.0, started - submitted_at),
                    worker_pid=os.getpid(),
                    spans=tuple(captured),
                    resources=tuple(sampler.take()) if sampler is not None else (),
                )
            )
    finally:
        if sampler is not None:
            try:
                sampler.stop()
            except Exception:
                pass
    return executions


def fork_available() -> bool:
    """Whether the fork start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


class WorkerPool:
    """Executes work units, in-process or across forked workers.

    Args:
        workers: requested worker count; ``1`` (or an unavailable fork
            start method) selects the inline serial path.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.parallel = workers > 1 and fork_available()

    def execute(
        self,
        units: Sequence[WorkUnit],
        runner: UnitRunner,
        context: Any,
        *,
        on_unit: Callable[[UnitExecution], None],
        on_dispatch: Callable[[Sequence[WorkUnit]], None] | None = None,
    ) -> None:
        """Run every unit, invoking ``on_unit`` as each completes.

        Serial execution preserves unit order; parallel execution
        completes in scheduling order.  Callers must therefore key any
        state they accumulate by ``UnitExecution.key`` (the engine does).

        ``on_dispatch`` (if given) fires in the dispatching process as
        units are handed to workers -- per unit on the serial path, per
        shard at submission on the parallel path -- so live monitors can
        track which units are in flight between dispatch and completion.
        """
        if not units:
            return

        # Unit spans captured in workers (or buffered on the serial path)
        # are sunk here, in the dispatching process, before the caller
        # sees the completion -- one writer per trace, whatever the
        # worker count.
        def deliver(execution: UnitExecution) -> None:
            if execution.spans:
                obs.ingest(execution.spans)
            if execution.resources:
                obs.ingest(execution.resources)
            on_unit(execution)

        trace_parent = obs.current_context()
        if not self.parallel:
            self._execute_serial(
                units, runner, context, deliver, trace_parent, on_dispatch
            )
        else:
            self._execute_parallel(
                units, runner, context, deliver, trace_parent, on_dispatch
            )

    def _execute_serial(
        self,
        units: Sequence[WorkUnit],
        runner: UnitRunner,
        context: Any,
        on_unit: Callable[[UnitExecution], None],
        trace_parent: dict[str, Any] | None,
        on_dispatch: Callable[[Sequence[WorkUnit]], None] | None,
    ) -> None:
        runtime = (runner, context)
        submitted = time.monotonic()
        # One unit at a time so completions reach the caller (and the
        # journal) before a later unit can fail the campaign.
        for unit in units:
            if on_dispatch is not None:
                on_dispatch([unit])
            for execution in _execute_shard(
                [unit], submitted, trace_parent, runtime
            ):
                on_unit(execution)

    def _execute_parallel(
        self,
        units: Sequence[WorkUnit],
        runner: UnitRunner,
        context: Any,
        on_unit: Callable[[UnitExecution], None],
        trace_parent: dict[str, Any] | None,
        on_dispatch: Callable[[Sequence[WorkUnit]], None] | None,
    ) -> None:
        global _RUNTIME
        # Workers inherit the runtime at fork time; nothing is pickled.
        # The lock serialises concurrent parallel campaigns (forked
        # workers spawn lazily, so the global must hold *this* campaign's
        # runtime for the executor's whole lifetime).
        with _RUNTIME_LOCK:
            _RUNTIME = (runner, context)
            shards = shard_units(units, shard_count_for(len(units), self.workers))
            try:
                with concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=multiprocessing.get_context("fork"),
                ) as executor:
                    futures = []
                    for shard in shards:
                        if on_dispatch is not None:
                            on_dispatch(shard)
                        futures.append(
                            executor.submit(
                                _execute_shard, shard, time.monotonic(), trace_parent
                            )
                        )
                    for future in concurrent.futures.as_completed(futures):
                        for execution in future.result():
                            on_unit(execution)
            finally:
                _RUNTIME = None
