"""JSONL run journal: crash-safe campaign persistence.

Every completed work unit is appended to the journal as one JSON line,
flushed immediately, so a killed campaign loses at most the units that
were in flight.  On resume the engine loads the journal, skips every
unit whose content key already has a record, and appends the rest to the
same file -- the final report is identical to an uninterrupted run.

The first line is a header carrying campaign metadata (kind, technique,
seed, scope), which lets ``repro campaign resume`` rebuild the unit
stream from the journal alone.  Loading tolerates a truncated or corrupt
trailing line (the usual artifact of a kill mid-write): undecodable
lines are counted and skipped, never fatal.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Any, Mapping

JOURNAL_MAGIC = "repro.harness.journal"
JOURNAL_VERSION = 1


@dataclasses.dataclass(frozen=True)
class JournalContents:
    """A loaded journal: header metadata plus completed-unit records."""

    meta: dict[str, Any]
    records: dict[str, dict[str, Any]]  # unit key -> record
    skipped_lines: int

    @property
    def completed(self) -> int:
        return len(self.records)


def load_journal(path: str | os.PathLike[str]) -> JournalContents:
    """Load a journal file, tolerating truncated/corrupt lines.

    Returns:
        The header metadata (empty dict if the header is missing or
        unreadable) and a ``key -> record`` map; later records win on
        duplicate keys, so a unit journaled twice is counted once.
    """
    meta: dict[str, Any] = {}
    records: dict[str, dict[str, Any]] = {}
    skipped = 0
    with open(path, "r", encoding="utf-8") as handle:
        for index, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(entry, dict):
                skipped += 1
                continue
            if entry.get("type") == "header":
                if index == 0 and entry.get("journal") == JOURNAL_MAGIC:
                    meta = entry.get("meta", {})
                continue
            if entry.get("type") == "unit" and "key" in entry:
                records[entry["key"]] = entry
            else:
                skipped += 1
    return JournalContents(meta=meta, records=records, skipped_lines=skipped)


class JournalWriter:
    """Append-only JSONL writer with per-line flush.

    Args:
        path: the journal file; created (with a header) when missing,
            appended to when present.
        meta: campaign metadata for the header of a new journal.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        meta: Mapping[str, Any] | None = None,
    ) -> None:
        self.path = os.fspath(path)
        fresh = not (os.path.exists(self.path) and os.path.getsize(self.path) > 0)
        self._handle = open(self.path, "a", encoding="utf-8")
        if fresh:
            self._write_line(
                {
                    "type": "header",
                    "journal": JOURNAL_MAGIC,
                    "version": JOURNAL_VERSION,
                    "created": time.time(),
                    "meta": dict(meta or {}),
                }
            )

    def _write_line(self, entry: dict[str, Any]) -> None:
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()

    def append(
        self,
        key: str,
        unit: Mapping[str, Any],
        result: Mapping[str, Any],
        *,
        wall_seconds: float = 0.0,
    ) -> None:
        """Journal one completed unit (immediately durable)."""
        self._write_line(
            {
                "type": "unit",
                "key": key,
                "unit": dict(unit),
                "result": dict(result),
                "wall_ms": round(wall_seconds * 1000.0, 3),
            }
        )

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
