"""The campaign engine: journal-aware, parallel unit execution.

:func:`run_campaign` is the harness's core loop.  Given a stream of
:class:`~repro.harness.workunit.WorkUnit`\\ s and a runner callable, it

1. loads the journal (if any) and *resumes*: units whose content key is
   already journaled are satisfied from the journal, never re-run;
2. executes the remaining units on a
   :class:`~repro.harness.pool.WorkerPool` (inline for ``workers=1``,
   forked processes otherwise);
3. journals every completion as it happens, so a killed campaign loses
   only in-flight units;
4. records telemetry (per-unit wall time, queue latency, worker
   utilization, survival counters) and drives an optional progress
   reporter;
5. reassembles results into submission order, regardless of worker
   count or completion order.

Determinism contract: the engine never derives seeds and never feeds
scheduling information to the runner -- every unit arrives fully
self-described, so results depend only on unit content.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Mapping, Sequence

from repro import obs
from repro.obs import resources as obs_resources
from repro.harness.journal import JournalWriter, load_journal
from repro.harness.pool import UnitExecution, UnitRunner, WorkerPool
from repro.harness.shard import assemble_results
from repro.harness.telemetry import ProgressReporter, Telemetry
from repro.harness.workunit import WorkUnit, check_unique


@dataclasses.dataclass(frozen=True)
class CampaignResult:
    """A completed campaign.

    Attributes:
        units: the campaign's work units, in submission order.
        results: one runner result per unit, aligned with ``units``.
        telemetry: counters/timers/gauges recorded during the run.
        executed: units actually run this invocation.
        resumed: units satisfied from the journal.
    """

    units: tuple[WorkUnit, ...]
    results: tuple[dict[str, Any], ...]
    telemetry: Telemetry
    executed: int
    resumed: int

    def pairs(self) -> list[tuple[WorkUnit, dict[str, Any]]]:
        """``(unit, result)`` pairs in submission order."""
        return list(zip(self.units, self.results))


def _record_outcome_counters(telemetry: Telemetry, result: Mapping[str, Any]) -> None:
    """Survival counters for replay-shaped results (no-ops otherwise)."""
    if "survived" not in result:
        return
    telemetry.count("units.finished")
    if result["survived"]:
        telemetry.count("units.survived")
    if result.get("triggered"):
        telemetry.count("units.triggered")


def run_campaign(
    units: Sequence[WorkUnit],
    runner: UnitRunner,
    *,
    context: Any = None,
    workers: int = 1,
    journal_path: str | None = None,
    journal_meta: Mapping[str, Any] | None = None,
    resume: bool = True,
    telemetry: Telemetry | None = None,
    progress: ProgressReporter | None = None,
    heartbeat: Any = None,
) -> CampaignResult:
    """Execute a campaign; see the module docstring for the full story.

    Args:
        units: self-describing work units (content keys must be unique).
        runner: ``(unit, context) -> result dict``; must be deterministic
            in the unit alone.
        context: shared campaign state handed to every runner call
            (inherited by forked workers, never pickled).
        workers: worker processes; ``1`` runs inline.
        journal_path: JSONL run log; created if missing.  Completions are
            appended as they happen.
        journal_meta: metadata for a newly created journal's header.
        resume: when True (default), journaled units are not re-run.
        telemetry: accumulate into an existing instance (a fresh one is
            created otherwise).
        progress: optional progress reporter to drive.
        heartbeat: optional live monitor (e.g. :class:`repro.obs.
            RunMonitor`) driven as the dispatcher submits and drains
            units: ``campaign_started``/``dispatched``/``completed``/
            ``campaign_finished``.  Monitoring never touches unit
            content, results, or the journal.

    Returns:
        The result stream in submission order plus telemetry.
    """
    units = list(units)
    check_unique(units)
    telemetry = telemetry if telemetry is not None else Telemetry()
    telemetry.count("units.total", len(units))

    by_key = {unit.key(): unit for unit in units}
    results_by_key: dict[str, dict[str, Any]] = {}

    resumed = 0
    if journal_path is not None and resume:
        try:
            contents = load_journal(journal_path)
        except FileNotFoundError:
            contents = None
        if contents is not None:
            if contents.skipped_lines:
                telemetry.count("journal.skipped_lines", contents.skipped_lines)
            for key, record in contents.records.items():
                if key in by_key:
                    results_by_key[key] = record["result"]
                    _record_outcome_counters(telemetry, record["result"])
    resumed = len(results_by_key)
    telemetry.count("units.resumed", resumed)

    pending = [unit for unit in units if unit.key() not in results_by_key]
    writer = (
        JournalWriter(journal_path, meta=journal_meta)
        if journal_path is not None
        else None
    )

    pool = WorkerPool(workers)
    telemetry.gauge("workers.count", float(pool.workers if pool.parallel else 1))
    started = time.monotonic()
    done = [resumed]  # list for closure mutation

    # Campaign-level resource observation (when configured): a sampler
    # covering the dispatching process -- which on the serial path IS
    # the executing process -- plus a rollup of worker-shipped samples.
    # Peak RSS and CPU land in telemetry gauges; sampler trouble never
    # fails the campaign.
    sampler = None
    sample_interval = obs_resources.configured_interval()
    if sample_interval is not None:
        try:
            sampler = obs_resources.ResourceSampler(sample_interval).start()
        except Exception:
            sampler = None
    peak_rss = [0]
    cpu_bounds: dict[int, list[float]] = {}

    def _fold_resources(records: Any) -> None:
        for record in records:
            rss = int(record.get("rss_bytes", 0))
            if rss > peak_rss[0]:
                peak_rss[0] = rss
            pid = int(record.get("pid", 0))
            cpu = float(record.get("cpu_seconds", 0.0))
            bounds = cpu_bounds.get(pid)
            if bounds is None:
                cpu_bounds[pid] = [cpu, cpu]
            else:
                bounds[0] = min(bounds[0], cpu)
                bounds[1] = max(bounds[1], cpu)

    def on_unit(execution: UnitExecution) -> None:
        results_by_key[execution.key] = execution.result
        telemetry.count("units.executed")
        telemetry.observe("unit.wall", execution.wall_seconds)
        telemetry.observe("unit.queue", execution.queue_seconds)
        if execution.resources:
            _fold_resources(execution.resources)
            if heartbeat is not None:
                notify = getattr(heartbeat, "resource_peak", None)
                if notify is not None:
                    notify(peak_rss[0])
        _record_outcome_counters(telemetry, execution.result)
        if writer is not None:
            writer.append(
                execution.key,
                by_key[execution.key].to_dict(),
                execution.result,
                wall_seconds=execution.wall_seconds,
            )
        done[0] += 1
        if progress is not None:
            progress.update(done[0], resumed=resumed)
        if heartbeat is not None:
            heartbeat.completed(
                by_key[execution.key].fault_id,
                wall_seconds=execution.wall_seconds,
            )

    if heartbeat is not None:
        heartbeat.campaign_started(total=len(pending), resumed=resumed)
    try:
        with obs.span(
            "campaign",
            units=len(pending),
            resumed=resumed,
            workers=pool.workers if pool.parallel else 1,
        ):
            pool.execute(
                pending,
                runner,
                context,
                on_unit=on_unit,
                on_dispatch=heartbeat.dispatched if heartbeat is not None else None,
            )
    finally:
        if sampler is not None:
            try:
                sampler.stop()
                dispatcher_records = sampler.take()
                obs.ingest(dispatcher_records)
                _fold_resources(dispatcher_records)
            except Exception:
                pass
        if writer is not None:
            writer.close()
        if heartbeat is not None:
            heartbeat.campaign_finished()

    if peak_rss[0]:
        telemetry.gauge("resources.peak_rss_bytes", float(peak_rss[0]))
    campaign_cpu = sum(high - low for low, high in cpu_bounds.values())
    if campaign_cpu > 0:
        telemetry.gauge("resources.cpu_seconds", campaign_cpu)
    span = time.monotonic() - started
    if pending and span > 0:
        busy = telemetry.timer("unit.wall").total
        worker_count = pool.workers if pool.parallel else 1
        telemetry.gauge(
            "workers.utilization", min(1.0, busy / (worker_count * span))
        )
    if progress is not None:
        progress.finish(resumed=resumed)

    ordered = assemble_results(units, results_by_key)
    return CampaignResult(
        units=tuple(units),
        results=tuple(ordered),
        telemetry=telemetry,
        executed=len(pending),
        resumed=resumed,
    )
