"""repro.harness: parallel, resumable campaign execution.

The replay experiments (full-study replay, retry-budget and race-window
sweeps, and any future replay-shaped workload) all reduce to thousands
of independent ``(fault, technique, parameters, seed)`` executions.
This package turns such workloads into streams of self-describing
:class:`~repro.harness.workunit.WorkUnit`\\ s and executes them on a
journal-aware engine:

* :mod:`~repro.harness.workunit` -- the unit of execution, content-hash
  keyed;
* :mod:`~repro.harness.shard` -- batching units across workers and
  reassembling results in submission order;
* :mod:`~repro.harness.pool` -- fork-based process pool with per-worker
  context caching and an inline serial path;
* :mod:`~repro.harness.journal` -- crash-safe JSONL run log; interrupted
  campaigns resume without recomputation;
* :mod:`~repro.harness.telemetry` -- counters, timers, utilization, and
  progress reporting;
* :mod:`~repro.harness.engine` -- :func:`run_campaign`, tying the above
  together;
* :mod:`~repro.harness.campaigns` -- the study's replay experiments
  ported onto the engine.

**Determinism contract**: seeds are derived per work unit from the
campaign's base seed and the unit's identity -- never from worker
identity, worker count, or scheduling order -- so survival verdicts are
bit-identical for any ``workers=N``, including the serial path.
"""

from repro.harness.engine import CampaignResult, run_campaign
from repro.harness.journal import JournalContents, JournalWriter, load_journal
from repro.harness.pool import UnitExecution, WorkerPool, fork_available
from repro.harness.shard import assemble_results, shard_count_for, shard_units
from repro.harness.telemetry import ProgressReporter, Telemetry, TimerStats
from repro.harness.workunit import WorkUnit, check_unique
from repro.harness.campaigns import (
    KIND_RACE_WINDOW,
    KIND_REPLAY,
    KIND_RETRY_BUDGET,
    ReplayContext,
    build_race_window_units,
    build_replay_units,
    build_retry_budget_units,
    outcome_from_result,
    replay_runner,
    run_replay_campaign,
    run_replay_study,
    run_sweep_race_window,
    run_sweep_retry_budget,
)

__all__ = [
    "CampaignResult",
    "JournalContents",
    "JournalWriter",
    "KIND_RACE_WINDOW",
    "KIND_REPLAY",
    "KIND_RETRY_BUDGET",
    "ProgressReporter",
    "ReplayContext",
    "Telemetry",
    "TimerStats",
    "UnitExecution",
    "WorkUnit",
    "WorkerPool",
    "assemble_results",
    "build_race_window_units",
    "build_replay_units",
    "build_retry_budget_units",
    "check_unique",
    "fork_available",
    "load_journal",
    "outcome_from_result",
    "replay_runner",
    "run_campaign",
    "run_replay_campaign",
    "run_replay_study",
    "run_sweep_race_window",
    "run_sweep_retry_budget",
    "shard_count_for",
    "shard_units",
]
