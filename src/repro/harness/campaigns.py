"""Replay-shaped campaigns: the study experiments on the engine.

This module turns the three serial entry points of
:mod:`repro.recovery.driver` and :mod:`repro.recovery.campaign` --
``replay_study``, ``sweep_retry_budget``, ``sweep_race_window`` -- into
work-unit streams for :func:`repro.harness.engine.run_campaign`.  The
public functions here preserve the legacy semantics bit-for-bit:

* unit seeds are derived with exactly the legacy labels
  (``replay:{fault_id}``, ``budget:{b}:{fault_id}:{r}``,
  ``window:{w}:{fault_id}:{r}``), so every replay sees the same
  :class:`~repro.envmodel.environment.Environment` stream as the serial
  loops did;
* each unit builds a fresh technique from the caller's factory, as the
  serial loops did;
* results are reassembled in submission order, so reports compare equal
  (``==``) to the legacy ones for any worker count.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.bugdb.enums import FaultClass
from repro.corpus.loader import StudyData
from repro.corpus.studyspec import StudyFault
from repro.envmodel.environment import Environment
from repro.harness.engine import CampaignResult, run_campaign
from repro.harness.telemetry import ProgressReporter, Telemetry
from repro.harness.workunit import WorkUnit
from repro.recovery.base import RecoveryTechnique
from repro.recovery.campaign import SweepPoint, timing_faults
from repro.recovery.driver import (
    FaultReplayOutcome,
    ReplayReport,
    run_replay_attempts,
)
from repro.rng import DEFAULT_SEED, derive_seed

KIND_REPLAY = "replay"
KIND_RETRY_BUDGET = "retry-budget"
KIND_RACE_WINDOW = "race-window"


@dataclasses.dataclass
class ReplayContext:
    """Per-worker campaign state (inherited by forked workers).

    Attributes:
        faults: fault id -> study fault, built once per campaign.
        technique_for: builds a fresh technique for one unit (techniques
            hold per-run state such as checkpoints).
    """

    faults: dict[str, StudyFault]
    technique_for: Callable[[WorkUnit], RecoveryTechnique]


def replay_runner(unit: WorkUnit, context: ReplayContext) -> dict[str, Any]:
    """Execute one replay-shaped unit: inject, fail, recover, retry.

    ``"replay"`` units reproduce :func:`repro.recovery.driver.replay_fault`
    exactly (including its healthy-path DNS records); sweep units
    reproduce the timing-fault replay with an overridden race window.
    """
    fault = context.faults[unit.fault_id]
    technique = context.technique_for(unit)
    env = Environment(seed=unit.seed)
    if unit.kind == KIND_REPLAY:
        # Reverse record for the default client so healthy DNS paths work.
        env.dns.add_record("client.example.net", "10.0.0.99")
        env.dns.add_record("client5.example.net", "10.0.0.5")
        race_window = None
    else:
        race_window = unit.params_dict()["race_window"]
    triggered, survived, attempts_used = run_replay_attempts(
        fault, technique, env=env, race_window=race_window
    )
    return {
        "fault_id": fault.fault_id,
        "fault_class": fault.fault_class.value,
        "technique": technique.name,
        "triggered": triggered,
        "survived": survived,
        "attempts_used": attempts_used,
    }


def outcome_from_result(result: Mapping[str, Any]) -> FaultReplayOutcome:
    """Rehydrate a journaled/worker result into a replay outcome."""
    return FaultReplayOutcome(
        fault_id=result["fault_id"],
        fault_class=FaultClass(result["fault_class"]),
        technique=result["technique"],
        triggered=result["triggered"],
        survived=result["survived"],
        attempts_used=result["attempts_used"],
    )


# --------------------------------------------------------------------- #
# unit builders
# --------------------------------------------------------------------- #


def build_replay_units(
    faults: Iterable[StudyFault], technique_name: str, seed: int
) -> list[WorkUnit]:
    """One ``"replay"`` unit per fault, with the legacy seed derivation."""
    return [
        WorkUnit.build(
            KIND_REPLAY,
            fault.fault_id,
            technique=technique_name,
            seed=derive_seed(seed, f"replay:{fault.fault_id}"),
        )
        for fault in faults
    ]


def build_retry_budget_units(
    faults: Sequence[StudyFault],
    technique_name: str,
    *,
    budgets: Sequence[int],
    race_window: float,
    replications: int,
    seed: int,
) -> list[WorkUnit]:
    """Units for the retry-budget sweep (duplicate budgets collapsed)."""
    units = []
    for budget in _unique(budgets):
        for fault in faults:
            for replication in range(replications):
                units.append(
                    WorkUnit.build(
                        KIND_RETRY_BUDGET,
                        fault.fault_id,
                        technique=technique_name,
                        params={
                            "budget": budget,
                            "race_window": race_window,
                            "replication": replication,
                        },
                        seed=derive_seed(
                            seed, f"budget:{budget}:{fault.fault_id}:{replication}"
                        ),
                    )
                )
    return units


def build_race_window_units(
    faults: Sequence[StudyFault],
    technique_name: str,
    *,
    windows: Sequence[float],
    replications: int,
    seed: int,
) -> list[WorkUnit]:
    """Units for the race-window sweep (duplicate windows collapsed)."""
    units = []
    for window in _unique(windows):
        for fault in faults:
            for replication in range(replications):
                units.append(
                    WorkUnit.build(
                        KIND_RACE_WINDOW,
                        fault.fault_id,
                        technique=technique_name,
                        params={"race_window": window, "replication": replication},
                        seed=derive_seed(
                            seed, f"window:{window}:{fault.fault_id}:{replication}"
                        ),
                    )
                )
    return units


def _unique(values: Sequence[Any]) -> list[Any]:
    """Order-preserving dedup (identical sweep points share verdicts)."""
    seen = set()
    out = []
    for value in values:
        if value not in seen:
            seen.add(value)
            out.append(value)
    return out


# --------------------------------------------------------------------- #
# campaign entry points
# --------------------------------------------------------------------- #


def run_replay_campaign(
    faults: Sequence[StudyFault],
    technique_factory: Callable[[], RecoveryTechnique],
    *,
    seed: int = DEFAULT_SEED,
    workers: int = 1,
    journal_path: str | None = None,
    journal_meta: Mapping[str, Any] | None = None,
    telemetry: Telemetry | None = None,
    progress: ProgressReporter | None = None,
) -> ReplayReport:
    """Replay ``faults`` under fresh instances of one technique.

    The campaign-scoped generalisation of ``replay_study``: any fault
    subset, optional parallelism, optional resumable journal.
    """
    # One up-front factory call fixes the technique name even when the
    # fault list is empty (the legacy loop reported "" in that case).
    technique_name = technique_factory().name
    faults = list(faults)
    units = build_replay_units(faults, technique_name, seed)
    context = ReplayContext(
        faults={fault.fault_id: fault for fault in faults},
        technique_for=lambda unit: technique_factory(),
    )
    if journal_meta is None:
        journal_meta = {
            "kind": KIND_REPLAY,
            "technique": technique_name,
            "seed": seed,
            "total_units": len(units),
        }
    campaign = run_campaign(
        units,
        replay_runner,
        context=context,
        workers=workers,
        journal_path=journal_path,
        journal_meta=journal_meta,
        telemetry=telemetry,
        progress=progress,
    )
    return ReplayReport(
        technique=technique_name,
        outcomes=tuple(outcome_from_result(result) for result in campaign.results),
    )


def run_replay_study(
    study: StudyData,
    technique_factory: Callable[[], RecoveryTechnique],
    *,
    seed: int = DEFAULT_SEED,
    workers: int = 1,
    journal_path: str | None = None,
    telemetry: Telemetry | None = None,
    progress: ProgressReporter | None = None,
) -> ReplayReport:
    """The full-study replay on the engine (`replay_study`'s core)."""
    return run_replay_campaign(
        study.all_faults(),
        technique_factory,
        seed=seed,
        workers=workers,
        journal_path=journal_path,
        telemetry=telemetry,
        progress=progress,
    )


def _sweep_points(
    campaign: CampaignResult,
    parameter_name: str,
    parameters: Sequence[Any],
) -> list[SweepPoint]:
    """Group unit verdicts into sweep points, in parameter order."""
    grouped: dict[Any, list[bool]] = {}
    for unit, result in campaign.pairs():
        value = unit.params_dict()[parameter_name]
        grouped.setdefault(value, []).append(result["survived"])
    points = []
    for parameter in parameters:
        verdicts = grouped.get(parameter, [])
        points.append(
            SweepPoint(
                parameter=float(parameter),
                survived=sum(verdicts),
                total=len(verdicts),
            )
        )
    return points


def run_sweep_retry_budget(
    study: StudyData,
    technique_factory: Callable[[int], RecoveryTechnique],
    *,
    budgets: Sequence[int],
    race_window: float,
    replications: int,
    seed: int = DEFAULT_SEED,
    workers: int = 1,
    journal_path: str | None = None,
    telemetry: Telemetry | None = None,
    progress: ProgressReporter | None = None,
) -> list[SweepPoint]:
    """The retry-budget sweep on the engine (`sweep_retry_budget`'s core)."""
    faults = timing_faults(study)
    technique_name = technique_factory(max(budgets)).name if budgets else ""
    units = build_retry_budget_units(
        faults,
        technique_name,
        budgets=budgets,
        race_window=race_window,
        replications=replications,
        seed=seed,
    )
    context = ReplayContext(
        faults={fault.fault_id: fault for fault in faults},
        technique_for=lambda unit: technique_factory(unit.params_dict()["budget"]),
    )
    campaign = run_campaign(
        units,
        replay_runner,
        context=context,
        workers=workers,
        journal_path=journal_path,
        journal_meta={
            "kind": KIND_RETRY_BUDGET,
            "technique": technique_name,
            "seed": seed,
            "total_units": len(units),
        },
        telemetry=telemetry,
        progress=progress,
    )
    return _sweep_points(campaign, "budget", list(budgets))


def run_sweep_race_window(
    study: StudyData,
    technique_factory: Callable[[], RecoveryTechnique],
    *,
    windows: Sequence[float],
    replications: int,
    seed: int = DEFAULT_SEED,
    workers: int = 1,
    journal_path: str | None = None,
    telemetry: Telemetry | None = None,
    progress: ProgressReporter | None = None,
) -> list[SweepPoint]:
    """The race-window sweep on the engine (`sweep_race_window`'s core)."""
    faults = timing_faults(study)
    technique_name = technique_factory().name
    units = build_race_window_units(
        faults,
        technique_name,
        windows=windows,
        replications=replications,
        seed=seed,
    )
    context = ReplayContext(
        faults={fault.fault_id: fault for fault in faults},
        technique_for=lambda unit: technique_factory(),
    )
    campaign = run_campaign(
        units,
        replay_runner,
        context=context,
        workers=workers,
        journal_path=journal_path,
        journal_meta={
            "kind": KIND_RACE_WINDOW,
            "technique": technique_name,
            "seed": seed,
            "total_units": len(units),
        },
        telemetry=telemetry,
        progress=progress,
    )
    return _sweep_points(campaign, "race_window", list(windows))
