"""Structured campaign telemetry: counters, timers, and progress.

The engine records per-unit wall time, queue latency, worker
utilization, and survival counters here; the CLI renders a summary after
the run and a :class:`ProgressReporter` line while it is going.
Everything is plain Python -- cheap enough to leave on for every
campaign, including the serial ``workers=1`` path.
"""

from __future__ import annotations

import contextlib
import dataclasses
import sys
import time
from typing import Any, Iterator, TextIO


@dataclasses.dataclass(frozen=True)
class TimerStats:
    """Aggregate statistics for one named timer."""

    count: int
    total: float
    min: float
    max: float

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count


class Telemetry:
    """Named counters, timers, and gauges for one campaign run.

    Counters accumulate integers (``units.executed``, ``units.survived``);
    timers accumulate observed durations (``unit.wall``, ``unit.queue``);
    gauges hold last-written floats (``workers.utilization``).
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._timers: dict[str, list[float]] = {}  # [count, total, min, max]
        self._gauges: dict[str, float] = {}

    # -- counters ------------------------------------------------------ #

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    # -- timers -------------------------------------------------------- #

    def observe(self, name: str, seconds: float) -> None:
        """Record one observed duration under timer ``name``."""
        stats = self._timers.get(name)
        if stats is None:
            self._timers[name] = [1, seconds, seconds, seconds]
        else:
            stats[0] += 1
            stats[1] += seconds
            stats[2] = min(stats[2], seconds)
            stats[3] = max(stats[3], seconds)

    @contextlib.contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Context manager observing the enclosed block's wall time."""
        started = time.monotonic()
        try:
            yield
        finally:
            self.observe(name, time.monotonic() - started)

    def timer(self, name: str) -> TimerStats:
        """Aggregate stats for timer ``name`` (zeros if never observed)."""
        stats = self._timers.get(name)
        if stats is None:
            return TimerStats(count=0, total=0.0, min=0.0, max=0.0)
        return TimerStats(count=stats[0], total=stats[1], min=stats[2], max=stats[3])

    # -- gauges -------------------------------------------------------- #

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = value

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        """Current value of gauge ``name``."""
        return self._gauges.get(name, default)

    # -- snapshots ----------------------------------------------------- #

    def snapshot(self) -> dict[str, Any]:
        """All telemetry as one JSON-serialisable dict."""
        return {
            "counters": dict(self._counters),
            "timers": {
                name: dataclasses.asdict(self.timer(name)) for name in self._timers
            },
            "gauges": dict(self._gauges),
        }

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold another run's :meth:`snapshot` into this telemetry."""
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)
        for name, stats in snapshot.get("timers", {}).items():
            current = self._timers.get(name)
            if current is None:
                self._timers[name] = [
                    stats["count"], stats["total"], stats["min"], stats["max"],
                ]
            else:
                current[0] += stats["count"]
                current[1] += stats["total"]
                current[2] = min(current[2], stats["min"])
                current[3] = max(current[3], stats["max"])
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)

    def summary_lines(self) -> list[str]:
        """Human-readable one-liners for the CLI footer."""
        lines = []
        executed = self.counter("units.executed")
        resumed = self.counter("units.resumed")
        lines.append(
            f"units: {self.counter('units.total')} total, "
            f"{executed} executed, {resumed} resumed from journal"
        )
        wall = self.timer("unit.wall")
        if wall.count:
            lines.append(
                f"unit wall time: mean {wall.mean * 1000:.2f} ms, "
                f"max {wall.max * 1000:.2f} ms"
            )
        queue = self.timer("unit.queue")
        if queue.count:
            lines.append(f"queue latency: mean {queue.mean * 1000:.2f} ms")
        if "workers.utilization" in self._gauges:
            lines.append(
                f"workers: {self.gauge_value('workers.count'):.0f} "
                f"({self.gauge_value('workers.utilization'):.0%} utilized)"
            )
        survived = self.counter("units.survived")
        if executed or survived:
            lines.append(f"survived: {survived}/{self.counter('units.finished')}")
        return lines


class ProgressReporter:
    """Periodic one-line progress output for long campaigns.

    Writes at most one line every ``interval`` seconds (plus a final
    line), so tight serial campaigns stay quiet and journal-heavy resumes
    do not flood the terminal.
    """

    def __init__(
        self,
        total: int,
        *,
        stream: TextIO | None = None,
        interval: float = 1.0,
        label: str = "campaign",
    ) -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.label = label
        self._started = time.monotonic()
        self._last_emit = self._started
        self._done = 0
        self._emitted_done: int | None = None

    def update(self, done: int, *, resumed: int = 0, force: bool = False) -> None:
        """Report ``done`` completed units (emits only when due)."""
        self._done = done
        now = time.monotonic()
        if not force and now - self._last_emit < self.interval and done < self.total:
            return
        if done == self._emitted_done and done >= self.total:
            return
        self._last_emit = now
        self._emitted_done = done
        elapsed = now - self._started
        fraction = done / self.total if self.total else 1.0
        parts = [f"[{self.label}] {done}/{self.total} units ({fraction:.0%})"]
        if resumed:
            parts.append(f"{resumed} resumed")
        parts.append(f"{elapsed:.1f}s elapsed")
        print(" · ".join(parts), file=self.stream)

    def finish(self, *, resumed: int = 0) -> None:
        """Emit the final progress line."""
        self.update(self.total, resumed=resumed, force=True)
