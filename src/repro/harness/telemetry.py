"""Structured campaign telemetry: counters, timers, and progress.

The engine records per-unit wall time, queue latency, worker
utilization, and survival counters here; the CLI renders a summary after
the run and a :class:`ProgressReporter` line while it is going.

The metrics implementation lives in :mod:`repro.obs.metrics` --
:class:`Telemetry` is the :class:`~repro.obs.metrics.MetricsRegistry`
under its historical name, kept so harness callers (and everything that
imports ``repro.harness.Telemetry``) keep working while harness,
pipeline, and studygraph all report into the same registry type.  The
move also fixed gauge folding: merged gauges reduce deterministically by
shard id instead of last-write-wins across arrival order.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

from repro.obs.metrics import MetricsRegistry, TimerStats

__all__ = ["ProgressReporter", "Telemetry", "TimerStats"]


class Telemetry(MetricsRegistry):
    """The campaign metrics registry, under its historical harness name.

    Counters accumulate integers (``units.executed``, ``units.survived``);
    timers accumulate observed durations (``unit.wall``, ``unit.queue``);
    gauges hold last-written floats per shard (``workers.utilization``).
    """


class ProgressReporter:
    """Periodic one-line progress output for long campaigns.

    Writes at most one line every ``interval`` seconds (plus a final
    line), so tight serial campaigns stay quiet and journal-heavy resumes
    do not flood the terminal.
    """

    def __init__(
        self,
        total: int,
        *,
        stream: TextIO | None = None,
        interval: float = 1.0,
        label: str = "campaign",
    ) -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.label = label
        self._started = time.monotonic()
        self._last_emit = self._started
        self._done = 0
        self._emitted_done: int | None = None

    @classmethod
    def if_interactive(
        cls,
        total: int,
        *,
        quiet: bool = False,
        stream: TextIO | None = None,
        interval: float = 1.0,
        label: str = "campaign",
    ) -> "ProgressReporter | None":
        """A reporter only when progress lines will reach a person.

        Returns None when ``quiet`` is set or the stream is not a TTY
        (redirected CI logs must not be flooded with progress lines).
        """
        target = stream if stream is not None else sys.stderr
        isatty = getattr(target, "isatty", None)
        if quiet or isatty is None or not isatty():
            return None
        return cls(total, stream=target, interval=interval, label=label)

    def update(self, done: int, *, resumed: int = 0, force: bool = False) -> None:
        """Report ``done`` completed units (emits only when due)."""
        self._done = done
        now = time.monotonic()
        if not force and now - self._last_emit < self.interval and done < self.total:
            return
        if done == self._emitted_done and done >= self.total:
            return
        self._last_emit = now
        self._emitted_done = done
        elapsed = now - self._started
        fraction = done / self.total if self.total else 1.0
        parts = [f"[{self.label}] {done}/{self.total} units ({fraction:.0%})"]
        if resumed:
            parts.append(f"{resumed} resumed")
        parts.append(f"{elapsed:.1f}s elapsed")
        print(" · ".join(parts), file=self.stream)

    def finish(self, *, resumed: int = 0) -> None:
        """Emit the final progress line."""
        self.update(self.total, resumed=resumed, force=True)
