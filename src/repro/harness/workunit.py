"""Self-describing work units: the harness's unit of execution.

A campaign is a stream of independent :class:`WorkUnit`\\ s, each carrying
everything a worker needs to execute it deterministically: which study
fault to replay, which campaign family it belongs to (``kind``), the
technique label, any parameter overrides (race window, retry budget,
replication index, ...), and the **fully derived seed**.

The seed is derived by the unit *builder* (from the campaign's base seed
and the unit's identity, via :func:`repro.rng.derive_seed`), never by the
worker -- so verdicts cannot depend on worker identity, worker count, or
scheduling order.  Two units with the same content are the same unit:
:meth:`WorkUnit.key` hashes the canonical JSON encoding, and the journal
(:mod:`repro.harness.journal`) uses that hash to recognise already
completed units on resume.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Mapping

#: JSON-scalar types allowed as parameter values (keeps keys canonical).
_SCALARS = (str, int, float, bool, type(None))


def _canonical_params(params: Mapping[str, Any] | None) -> tuple[tuple[str, Any], ...]:
    """Sort and validate parameter overrides into a hashable tuple."""
    if not params:
        return ()
    items = []
    for name in sorted(params):
        value = params[name]
        if not isinstance(value, _SCALARS):
            raise TypeError(
                f"work-unit parameter {name!r} must be a JSON scalar, "
                f"got {type(value).__name__}"
            )
        items.append((name, value))
    return tuple(items)


@dataclasses.dataclass(frozen=True)
class WorkUnit:
    """One independent replay in a campaign.

    Attributes:
        kind: the campaign family (``"replay"``, ``"retry-budget"``,
            ``"race-window"``, or any user-defined family).
        fault_id: the study fault to replay.
        technique: the recovery technique's display name (informational,
            but part of the unit's identity and hence its journal key).
        params: canonicalised ``(name, value)`` parameter overrides,
            sorted by name.
        seed: the fully derived seed for this unit's environment.
    """

    kind: str
    fault_id: str
    technique: str
    params: tuple[tuple[str, Any], ...]
    seed: int

    @classmethod
    def build(
        cls,
        kind: str,
        fault_id: str,
        *,
        technique: str = "",
        params: Mapping[str, Any] | None = None,
        seed: int = 0,
    ) -> "WorkUnit":
        """Construct a unit, canonicalising the parameter overrides."""
        return cls(
            kind=kind,
            fault_id=fault_id,
            technique=technique,
            params=_canonical_params(params),
            seed=seed,
        )

    def params_dict(self) -> dict[str, Any]:
        """The parameter overrides as a plain dict."""
        return dict(self.params)

    def key(self) -> str:
        """Content hash identifying this unit (stable across processes).

        The journal is keyed by this hash, so a resumed campaign
        recognises a completed unit by *what it is*, not by its position
        in the stream.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable encoding (used for hashing and journaling)."""
        return {
            "kind": self.kind,
            "fault_id": self.fault_id,
            "technique": self.technique,
            "params": [[name, value] for name, value in self.params],
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkUnit":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=data["kind"],
            fault_id=data["fault_id"],
            technique=data.get("technique", ""),
            params=tuple((name, value) for name, value in data.get("params", ())),
            seed=data["seed"],
        )


def check_unique(units: list[WorkUnit]) -> None:
    """Raise if two units in a campaign share a content key.

    Duplicate keys would make the journal ambiguous (one completion would
    satisfy both units), so campaign builders must disambiguate -- e.g.
    with a ``replication`` parameter.
    """
    seen: dict[str, WorkUnit] = {}
    for unit in units:
        key = unit.key()
        if key in seen:
            raise ValueError(
                f"duplicate work units in campaign: {unit} and {seen[key]} "
                "share a content key; add a disambiguating parameter"
            )
        seen[key] = unit
