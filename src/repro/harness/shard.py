"""Sharding: batching work units for the worker pool.

Units are tiny (a dataclass of scalars) but numerous, so the pool ships
them in contiguous *shards* -- several units per inter-process round
trip -- to amortise pickling and queue overhead.  Results come back
keyed by unit content hash and are reassembled into the original
submission order, so sharding (and hence worker count and completion
order) can never reorder a campaign's results.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence, TypeVar

from repro.harness.workunit import WorkUnit

T = TypeVar("T")

#: Shards per worker: enough slack for load balancing without drowning
#: the queue in tiny messages.
CHUNKS_PER_WORKER = 4


def shard_count_for(unit_count: int, workers: int) -> int:
    """How many shards to cut ``unit_count`` units into for ``workers``."""
    if unit_count <= 0:
        return 0
    return max(1, min(unit_count, workers * CHUNKS_PER_WORKER))


def shard_units(units: Sequence[T], shard_count: int) -> list[list[T]]:
    """Split ``units`` into ``shard_count`` contiguous, near-equal shards.

    Every unit lands in exactly one shard; shard sizes differ by at most
    one unit.  Generic over the element type: campaigns shard
    :class:`WorkUnit` streams, the mining pipeline shards raw archive
    chunks.
    """
    if shard_count <= 0:
        return []
    shard_count = min(shard_count, len(units))
    base, extra = divmod(len(units), shard_count)
    shards = []
    start = 0
    for index in range(shard_count):
        size = base + (1 if index < extra else 0)
        shards.append(list(units[start : start + size]))
        start += size
    return shards


def assemble_results(
    units: Sequence[WorkUnit], results_by_key: Mapping[str, T]
) -> list[T]:
    """Order results to match the original unit stream.

    Args:
        units: the campaign's units in submission order.
        results_by_key: unit content hash -> result.

    Raises:
        KeyError: if any unit has no result (a harness bug or a journal
            claiming completion it does not contain).
    """
    ordered = []
    for unit in units:
        key = unit.key()
        if key not in results_by_key:
            raise KeyError(f"no result for work unit {unit.fault_id} (key {key})")
        ordered.append(results_by_key[key])
    return ordered
