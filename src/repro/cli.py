"""Command-line interface for the reproduction.

Usage (after ``pip install -e .``, or via ``python -m repro``)::

    repro table apache            # Table 1 / 2 / 3
    repro figure gnome            # Figure 1 / 2 / 3 (ASCII)
    repro aggregate               # Section 5.4 numbers
    repro mine mysql              # run the mining pipeline, print the trace
    repro replay --technique process-pairs
    repro campaign run --workers 4 --journal run.jsonl   # parallel, resumable
    repro campaign status --journal run.jsonl
    repro report                  # the full study report
    repro export-archive apache apache.gnats   # write a raw archive
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.aggregate import aggregate_summary
from repro.analysis.distributions import release_distribution, time_distribution
from repro.analysis.tables import classification_table, classify_and_tabulate
from repro.bugdb import debbugs, gnats, mbox
from repro.bugdb.enums import Application, FaultClass
from repro.corpus.apache import RELEASES as APACHE_RELEASES
from repro.corpus.loader import full_study
from repro.corpus.mysql import RELEASES as MYSQL_RELEASES
from repro.corpus.render import (
    apache_raw_archive,
    gnome_raw_archive,
    mysql_raw_archive,
)
from repro.mining import GNOME_STUDY_COMPONENTS, mine_apache, mine_gnome, mine_mysql
from repro.recovery import (
    CheckpointRollback,
    ProcessPairs,
    ProgressiveRetry,
    RestartFresh,
    SoftwareRejuvenation,
    replay_study,
)
from repro.reports.figures import render_figure
from repro.reports.studyreport import render_study_report
from repro.reports.tableformat import format_table, render_classification_table
from repro.rng import DEFAULT_SEED as _CAMPAIGN_DEFAULT_SEED

_TECHNIQUES = {
    "process-pairs": ProcessPairs,
    "checkpoint-rollback": CheckpointRollback,
    "progressive-retry": ProgressiveRetry,
    "restart-fresh": RestartFresh,
    "software-rejuvenation": SoftwareRejuvenation,
}


def _application(name: str) -> Application:
    try:
        return Application(name.lower())
    except ValueError:
        raise SystemExit(
            f"unknown application {name!r}; choose from "
            + ", ".join(app.value for app in Application)
        ) from None


def _cmd_table(args: argparse.Namespace) -> int:
    corpus = full_study().corpus(_application(args.application))
    print(render_classification_table(classification_table(corpus)))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    application = _application(args.application)
    corpus = full_study().corpus(application)
    if application is Application.APACHE:
        series = release_distribution(
            corpus, release_order=tuple(v for v, _ in APACHE_RELEASES)
        )
    elif application is Application.MYSQL:
        series = release_distribution(
            corpus, release_order=tuple(v for v, _ in MYSQL_RELEASES)
        )
    else:
        series = time_distribution(corpus, granularity=args.granularity)
    print(render_figure(series, width=args.width))
    return 0


def _cmd_aggregate(_args: argparse.Namespace) -> int:
    summary = aggregate_summary(full_study())
    ei = summary.fraction_range(FaultClass.ENV_INDEPENDENT)
    edt = summary.fraction_range(FaultClass.ENV_DEP_TRANSIENT)
    print(
        format_table(
            ["quantity", "value"],
            [
                ["total unique faults", summary.total_faults],
                ["environment-independent", summary.counts[FaultClass.ENV_INDEPENDENT]],
                [
                    "environment-dependent-nontransient",
                    summary.counts[FaultClass.ENV_DEP_NONTRANSIENT],
                ],
                [
                    "environment-dependent-transient",
                    summary.counts[FaultClass.ENV_DEP_TRANSIENT],
                ],
                ["EI range across apps", f"{ei[0]:.0%}-{ei[1]:.0%}"],
                ["transient range across apps", f"{edt[0]:.0%}-{edt[1]:.0%}"],
            ],
            title="Section 5.4 aggregate",
        )
    )
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    if args.application == "run":
        return _cmd_mine_run(args)
    application = _application(args.application)
    study = full_study()
    corpus = study.corpus(application)
    if application is Application.APACHE:
        archive = apache_raw_archive(corpus, total_reports=args.scale)
        result = mine_apache(gnats.parse_archive(archive))
    elif application is Application.GNOME:
        archive = gnome_raw_archive(corpus, study_components=GNOME_STUDY_COMPONENTS)
        result = mine_gnome(debbugs.parse_archive(archive))
    else:
        archive = mysql_raw_archive(corpus, total_messages=args.scale)
        result = mine_mysql(mbox.parse_archive(archive))
    print(
        format_table(
            ["stage", "survivors"],
            result.trace.as_rows(),
            title=f"Mining narrowing for {application.display_name}",
        )
    )
    table = classify_and_tabulate(application, result.items)
    print()
    print(render_classification_table(table))
    return 0


def _cmd_mine_run(args: argparse.Namespace) -> int:
    from repro.harness.telemetry import Telemetry
    from repro.pipeline import mine_application

    if not args.target_application:
        raise SystemExit("mine run requires --application")
    if args.workers < 1:
        raise SystemExit("--workers must be at least 1")
    application = _application(args.target_application)
    run = mine_application(
        application,
        scale=args.scale,
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        telemetry=Telemetry(),
    )
    print(
        format_table(
            ["stage", "survivors"],
            run.result.trace.as_rows(),
            title=f"Mining narrowing for {application.display_name} "
            f"(workers={args.workers})",
        )
    )
    print(f"final unique bugs: {len(run.result.items)}")
    for line in run.summary_lines():
        print(line)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    names = args.technique or list(_TECHNIQUES)
    study = full_study()
    rows = []
    for name in names:
        try:
            factory = _TECHNIQUES[name]
        except KeyError:
            raise SystemExit(
                f"unknown technique {name!r}; choose from " + ", ".join(_TECHNIQUES)
            ) from None
        report = replay_study(study, factory)
        rows.append(
            [
                report.technique,
                f"{report.survival_rate(FaultClass.ENV_INDEPENDENT):.0%}",
                f"{report.survival_rate(FaultClass.ENV_DEP_NONTRANSIENT):.0%}",
                f"{report.survival_rate(FaultClass.ENV_DEP_TRANSIENT):.0%}",
                f"{report.survival_rate():.1%}",
            ]
        )
    print(
        format_table(
            ["technique", "EI", "EDN", "EDT", "overall"],
            rows,
            title="Recovery replay over all 139 study faults",
        )
    )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.harness import ProgressReporter, Telemetry, load_journal
    from repro.harness.campaigns import KIND_REPLAY, run_replay_campaign
    from repro.rng import DEFAULT_SEED

    if args.workers < 1:
        raise SystemExit("--workers must be at least 1")

    def load(path: str):
        try:
            return load_journal(path)
        except FileNotFoundError:
            raise SystemExit(f"no journal at {path!r}") from None

    if args.action == "status":
        if not args.journal:
            raise SystemExit("campaign status requires --journal")
        contents = load(args.journal)
        meta = contents.meta
        total = meta.get("total_units", "?")
        survived = sum(
            1 for record in contents.records.values()
            if record["result"].get("survived")
        )
        rows = [
            ["kind", meta.get("kind", "?")],
            ["technique", meta.get("technique", "?")],
            ["seed", meta.get("seed", "?")],
            ["scope", meta.get("application") or "full study"],
            ["completed units", f"{contents.completed}/{total}"],
            ["survived so far", survived],
        ]
        if contents.skipped_lines:
            rows.append(["corrupt lines skipped", contents.skipped_lines])
        print(format_table(["field", "value"], rows, title=f"Campaign journal {args.journal}"))
        return 0

    if args.action == "resume":
        if not args.journal:
            raise SystemExit("campaign resume requires --journal")
        meta = load(args.journal).meta
        if meta.get("kind") != KIND_REPLAY:
            raise SystemExit(
                f"journal {args.journal!r} has no resumable replay-campaign header"
            )
        technique_name = meta.get("technique", args.technique)
        seed = meta.get("seed", DEFAULT_SEED)
        application = meta.get("application")
        limit = meta.get("limit")
    else:  # run
        technique_name = args.technique
        seed = args.seed
        application = args.application
        limit = args.limit

    try:
        factory = _TECHNIQUES[technique_name]
    except KeyError:
        raise SystemExit(
            f"unknown technique {technique_name!r}; choose from " + ", ".join(_TECHNIQUES)
        ) from None

    study = full_study()
    if application is not None:
        faults = list(study.corpus(_application(application)).faults)
    else:
        faults = study.all_faults()
    if limit is not None:
        faults = faults[: limit]

    telemetry = Telemetry()
    report = run_replay_campaign(
        faults,
        factory,
        seed=seed,
        workers=args.workers,
        journal_path=args.journal,
        journal_meta={
            "kind": KIND_REPLAY,
            "technique": technique_name,
            "seed": seed,
            "application": application,
            "limit": limit,
            "total_units": len(faults),
        },
        telemetry=telemetry,
        progress=ProgressReporter(len(faults), label=f"campaign {technique_name}"),
    )
    print(
        format_table(
            ["technique", "EI", "EDN", "EDT", "overall"],
            [[
                report.technique,
                f"{report.survival_rate(FaultClass.ENV_INDEPENDENT):.0%}",
                f"{report.survival_rate(FaultClass.ENV_DEP_NONTRANSIENT):.0%}",
                f"{report.survival_rate(FaultClass.ENV_DEP_TRANSIENT):.0%}",
                f"{report.survival_rate():.1%}",
            ]],
            title=f"Campaign replay over {len(faults)} study faults "
            f"(workers={args.workers})",
        )
    )
    for line in telemetry.summary_lines():
        print(line)
    if args.journal:
        print(f"journal: {args.journal}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.reports.studyreport import render_study_report_markdown

    study = full_study()
    replays = []
    if args.with_replay:
        for factory in (ProcessPairs, CheckpointRollback, RestartFresh):
            replays.append(replay_study(study, factory))
    if args.format == "markdown":
        print(render_study_report_markdown(study, replay_reports=replays))
    else:
        print(render_study_report(study, replay_reports=replays))
    return 0


def _cmd_catalog(_args: argparse.Namespace) -> int:
    from repro.reports.catalog import render_fault_catalog

    print(render_fault_catalog(full_study()))
    return 0


def _cmd_funnel(args: argparse.Namespace) -> int:
    from repro.mining.funnel import funnel_from_trace

    application = _application(args.application)
    corpus = full_study().corpus(application)
    if application is Application.APACHE:
        archive = apache_raw_archive(corpus, total_reports=args.scale)
        result = mine_apache(gnats.parse_archive(archive))
    elif application is Application.GNOME:
        archive = gnome_raw_archive(corpus, study_components=GNOME_STUDY_COMPONENTS)
        result = mine_gnome(debbugs.parse_archive(archive))
    else:
        archive = mysql_raw_archive(corpus, total_messages=args.scale)
        result = mine_mysql(mbox.parse_archive(archive))
    funnel = funnel_from_trace(result.trace)
    print(
        format_table(
            ["stage", "before", "after", "kept"],
            funnel.rows(),
            title=f"Narrowing funnel for {application.display_name}",
        )
    )
    print(f"overall selectivity: {funnel.overall_selectivity:.2%}")
    print(f"most selective stage: {funnel.most_selective_stage().name}")
    return 0


def _cmd_csv(args: argparse.Namespace) -> int:
    from repro.reports.csvexport import classification_table_csv, figure_series_csv

    application = _application(args.application)
    corpus = full_study().corpus(application)
    if args.kind == "table":
        print(classification_table_csv(classification_table(corpus)), end="")
    else:
        if application is Application.APACHE:
            series = release_distribution(
                corpus, release_order=tuple(v for v, _ in APACHE_RELEASES)
            )
        elif application is Application.MYSQL:
            series = release_distribution(
                corpus, release_order=tuple(v for v, _ in MYSQL_RELEASES)
            )
        else:
            series = time_distribution(corpus, granularity="month")
        print(figure_series_csv(series), end="")
    return 0


def _cmd_export_archive(args: argparse.Namespace) -> int:
    application = _application(args.application)
    corpus = full_study().corpus(application)
    if application is Application.APACHE:
        text = apache_raw_archive(corpus, total_reports=args.scale)
    elif application is Application.GNOME:
        text = gnome_raw_archive(corpus, study_components=GNOME_STUDY_COMPONENTS)
    else:
        text = mysql_raw_archive(corpus, total_messages=args.scale)
    with open(args.path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"wrote {len(text)} bytes to {args.path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Whither Generic Recovery from Application Faults?' (DSN 2000)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table = subparsers.add_parser("table", help="print Table 1/2/3 for an application")
    table.add_argument("application", help="apache | gnome | mysql")
    table.set_defaults(func=_cmd_table)

    figure = subparsers.add_parser("figure", help="print Figure 1/2/3 for an application")
    figure.add_argument("application", help="apache | gnome | mysql")
    figure.add_argument("--width", type=int, default=40, help="bar width in characters")
    figure.add_argument(
        "--granularity", choices=("month", "quarter"), default="month",
        help="time bucketing for GNOME",
    )
    figure.set_defaults(func=_cmd_figure)

    aggregate = subparsers.add_parser("aggregate", help="print the Section 5.4 numbers")
    aggregate.set_defaults(func=_cmd_aggregate)

    mine = subparsers.add_parser("mine", help="run the mining pipeline on a generated archive")
    mine.add_argument(
        "application",
        help="apache | gnome | mysql, or 'run' for the fast archive path "
        "(repro mine run --application mysql --workers 4)",
    )
    mine.add_argument(
        "--scale", type=int, default=None,
        help="raw archive size (defaults to the paper's full scale)",
    )
    mine.add_argument(
        "--application", dest="target_application", default=None,
        metavar="APP", help="(mine run) application to mine",
    )
    mine.add_argument(
        "--workers", type=int, default=1,
        help="(mine run) parse-shard worker processes "
        "(traces are identical for any count)",
    )
    mine.add_argument(
        "--cache-dir", default=None,
        help="(mine run) content-addressed parse/mine cache directory",
    )
    mine.add_argument(
        "--no-cache", action="store_true",
        help="(mine run) bypass the cache entirely, even with --cache-dir",
    )
    mine.set_defaults(func=_cmd_mine)

    replay = subparsers.add_parser("replay", help="replay all faults under recovery techniques")
    replay.add_argument(
        "--technique", action="append", choices=sorted(_TECHNIQUES),
        help="technique to replay (repeatable; default: all)",
    )
    replay.set_defaults(func=_cmd_replay)

    campaign = subparsers.add_parser(
        "campaign",
        help="run a parallel, resumable replay campaign (repro.harness)",
    )
    campaign.add_argument(
        "action", nargs="?", choices=("run", "resume", "status"), default="run",
        help="run a campaign, resume one from its journal, or inspect a journal",
    )
    campaign.add_argument(
        "--technique", choices=sorted(_TECHNIQUES), default="checkpoint-rollback",
        help="recovery technique to replay",
    )
    campaign.add_argument(
        "--application", choices=[app.value for app in Application], default=None,
        help="restrict the campaign to one application's faults",
    )
    campaign.add_argument(
        "--limit", type=int, default=None, help="replay only the first N faults"
    )
    campaign.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (verdicts are identical for any count)",
    )
    campaign.add_argument(
        "--journal", default=None,
        help="JSONL run log; reruns with the same journal resume completed units",
    )
    campaign.add_argument(
        "--seed", type=int, default=_CAMPAIGN_DEFAULT_SEED, help="base campaign seed"
    )
    campaign.set_defaults(func=_cmd_campaign)

    report = subparsers.add_parser("report", help="print the full study report")
    report.add_argument(
        "--with-replay", action="store_true",
        help="include the recovery replay (slower)",
    )
    report.add_argument(
        "--format", choices=("text", "markdown"), default="text",
        help="output format",
    )
    report.set_defaults(func=_cmd_report)

    catalog = subparsers.add_parser(
        "catalog", help="print the 139-fault catalog as markdown"
    )
    catalog.set_defaults(func=_cmd_catalog)

    funnel = subparsers.add_parser(
        "funnel", help="print the mining narrowing funnel for an application"
    )
    funnel.add_argument("application", help="apache | gnome | mysql")
    funnel.add_argument("--scale", type=int, default=None, help="raw archive size")
    funnel.set_defaults(func=_cmd_funnel)

    csv_command = subparsers.add_parser("csv", help="emit a table or figure as CSV")
    csv_command.add_argument("kind", choices=("table", "figure"))
    csv_command.add_argument("application", help="apache | gnome | mysql")
    csv_command.set_defaults(func=_cmd_csv)

    export = subparsers.add_parser(
        "export-archive", help="write a raw 1999-style archive to a file"
    )
    export.add_argument("application", help="apache | gnome | mysql")
    export.add_argument("path", help="output file")
    export.add_argument("--scale", type=int, default=None, help="archive size")
    export.set_defaults(func=_cmd_export_archive)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        import os

        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
