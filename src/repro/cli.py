"""Command-line interface for the reproduction.

Usage (after ``pip install -e .``, or via ``python -m repro``)::

    repro study run --workers 4   # every experiment, parallel + memoized
    repro study run --trace run.trace --workers 4   # same, traced
    repro study run --live live.json --perfdb perf.jsonl   # monitored + recorded
    repro study watch live.json   # refreshing status line for a live run
    repro study status            # per-node memo state, nothing executed
    repro study status --trace run.trace   # plus traced wall-ms per node
    repro study diff cache-a cache-b   # node-by-node digest drift report
    repro study graph             # the node catalog and its edges
    repro scenario run --workers 4   # the multi-fault pair sweep, memoized
    repro scenario matrix         # the pair-interaction matrix
    repro scenario status         # memo state of the scenario closure
    repro trace summary run.trace --flame   # attribution + ASCII icicle
    repro trace export run.trace --out run.json   # chrome://tracing JSON
    repro trace export run.trace --format folded --out run.folded
    repro trace export run.trace --format speedscope --out run.speedscope.json
    repro perf record --db perf.jsonl --trace run.trace   # append to history
    repro perf report --db perf.jsonl   # longitudinal per-node view
    repro perf check --db perf.jsonl    # gate vs rolling baseline (exit 1)
    repro serve start --workers 4 --warm T1,report   # warm daemon, detached
    repro serve request study --param node=T1        # served in milliseconds
    repro serve request ping --repeat 2000 --concurrency 8   # burst + p99
    repro serve status            # health, admission, request counters
    repro serve stop              # graceful drain and shutdown
    repro table apache            # Table 1 / 2 / 3
    repro figure gnome            # Figure 1 / 2 / 3 (ASCII)
    repro aggregate               # Section 5.4 numbers
    repro mine mysql              # run the mining pipeline, print the trace
    repro mine run --application mysql --workers 4   # fast archive path
    repro replay --technique process-pairs
    repro campaign run --workers 4 --journal run.jsonl   # parallel, resumable
    repro campaign status --journal run.jsonl
    repro report                  # the full study report
    repro export-archive apache apache.gnats   # write a raw archive

Every classic experiment command (``table``, ``figure``, ``aggregate``,
``mine <app>``, ``replay``, ``report``, ``catalog``, ``funnel``) is a
single-node invocation of the study graph: the command resolves its
registered node, applies flag overrides, and prints the node's rendered
text.  ``repro study run`` executes the same graph wholesale.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.bugdb.enums import Application, FaultClass
from repro.recovery.nodes import TECHNIQUES as _TECHNIQUES
from repro.reports.tableformat import format_table
from repro.rng import DEFAULT_SEED as _CAMPAIGN_DEFAULT_SEED

#: Default memo directory for ``repro study`` (gitignored).
DEFAULT_STUDY_CACHE = ".repro-study-cache"

_TABLE_NODES = {"apache": "T1", "gnome": "T2", "mysql": "T3"}
_FIGURE_NODES = {"apache": "F1", "gnome": "F2", "mysql": "F3"}


def _application(name: str) -> Application:
    try:
        return Application(name.lower())
    except ValueError:
        raise SystemExit(
            f"unknown application {name!r}; choose from "
            + ", ".join(app.value for app in Application)
        ) from None


def _node_text(name: str, overrides: Mapping[str, Mapping[str, Any]] | None = None) -> str:
    """Run one study-graph node serially and return its rendered text."""
    from repro.studygraph import run_single_node

    return run_single_node(name, overrides=overrides)["text"]


def _cmd_table(args: argparse.Namespace) -> int:
    application = _application(args.application)
    print(_node_text(_TABLE_NODES[application.value]))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    application = _application(args.application)
    node = _FIGURE_NODES[application.value]
    params: dict[str, Any] = {"width": args.width}
    if application is Application.GNOME:
        params["granularity"] = args.granularity
    print(_node_text(node, overrides={node: params}))
    return 0


def _cmd_aggregate(_args: argparse.Namespace) -> int:
    print(_node_text("A1"))
    return 0


def _cmd_mine_app(args: argparse.Namespace) -> int:
    application = _application(args.application)
    overrides = {f"parsed.{application.value}": {"scale": args.scale}}
    print(_node_text(f"mine.{application.value}", overrides=overrides))
    return 0


def _cmd_mine_run(args: argparse.Namespace) -> int:
    from repro.harness.telemetry import Telemetry
    from repro.pipeline import mine_application
    from repro.pipeline.cache import ParseMineCache
    from repro.pipeline.runner import mine_archive_file

    if args.workers < 1:
        raise SystemExit("--workers must be at least 1")
    if args.max_shard_bytes is not None and args.max_shard_bytes < 1:
        raise SystemExit("--max-shard-bytes must be positive")
    if not args.target_application:
        raise SystemExit("mine run requires --application")
    application = _application(args.target_application)

    if args.archive is not None:
        # Streaming byte-range path: the archive file is never loaded
        # whole; shards are record-aligned byte ranges.
        from repro.pipeline.streamsplit import DEFAULT_MAX_SHARD_BYTES

        cache = (
            ParseMineCache(args.cache_dir)
            if (args.cache_dir is not None and not args.no_cache)
            else None
        )
        run = mine_archive_file(
            application,
            args.archive,
            max_shard_bytes=args.max_shard_bytes or DEFAULT_MAX_SHARD_BYTES,
            workers=args.workers,
            cache=cache,
            telemetry=Telemetry(),
            index_dir=args.index_dir,
        )
    else:
        if args.max_shard_bytes is not None or args.index_dir is not None:
            raise SystemExit(
                "--max-shard-bytes/--index-dir require --archive "
                "(the streaming file path)"
            )
        run = mine_application(
            application,
            scale=args.scale,
            workers=args.workers,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            telemetry=Telemetry(),
        )
    print(
        format_table(
            ["stage", "survivors"],
            run.result.trace.as_rows(),
            title=f"Mining narrowing for {application.display_name} "
            f"(workers={args.workers})",
        )
    )
    print(f"final unique bugs: {len(run.result.items)}")
    for line in run.summary_lines():
        print(line)
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    from repro.bugdb.segments import SegmentedTextIndex

    root = Path(args.dir)
    if not (root / "manifest.json").exists():
        raise SystemExit(f"no segment manifest under {args.dir!r}")
    index = SegmentedTextIndex(root)
    if args.index_action == "status":
        status = index.status()
        rows = [
            ["documents", status["documents"]],
            ["segments", status["segment_count"]],
            ["size", f"{status['size_bytes'] / (1024 * 1024):.2f} MB"],
            ["memtable docs", status["memtable_documents"]],
            ["compactable tiers", len(status["compaction_candidates"])],
        ]
        print(format_table(["field", "value"], rows, title=f"Segment index {root}"))
        if args.segments:
            seg_rows = [
                [
                    seg["name"],
                    seg["doc_base"],
                    seg["doc_count"],
                    seg["token_count"],
                    f"{seg['size_bytes'] / 1024:.1f} KB",
                ]
                for seg in status["segments"]
            ]
            print(
                format_table(
                    ["segment", "doc base", "docs", "tokens", "size"],
                    seg_rows,
                )
            )
        return 0
    if args.index_action == "compact":
        stats = index.compact(full=args.full, tier_fanout=args.tier_fanout)
        if not stats.compacted:
            print("nothing to compact (no tier holds enough segments)")
        else:
            print(
                f"merged {stats.merged_segments} segment(s) into "
                f"{stats.produced_segments} "
                f"({stats.bytes_read / (1024 * 1024):.2f} MB read, "
                f"{stats.bytes_written / (1024 * 1024):.2f} MB written)"
            )
        print(
            f"now {index.segment_count} segment(s), "
            f"{index.document_count} document(s)"
        )
        return 0
    raise SystemExit(f"unknown index action {args.index_action!r}")


def _cmd_replay(args: argparse.Namespace) -> int:
    names = args.technique or list(_TECHNIQUES)
    print(_node_text("E1", overrides={"E1": {"techniques": ",".join(names)}}))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.corpus.loader import full_study
    from repro.harness import ProgressReporter, Telemetry, load_journal
    from repro.harness.campaigns import KIND_REPLAY, run_replay_campaign
    from repro.rng import DEFAULT_SEED

    if args.workers < 1:
        raise SystemExit("--workers must be at least 1")

    def load(path: str):
        try:
            return load_journal(path)
        except FileNotFoundError:
            raise SystemExit(f"no journal at {path!r}") from None

    if args.action == "status":
        if not args.journal:
            raise SystemExit("campaign status requires --journal")
        contents = load(args.journal)
        meta = contents.meta
        total = meta.get("total_units", "?")
        survived = sum(
            1 for record in contents.records.values()
            if record["result"].get("survived")
        )
        rows = [
            ["kind", meta.get("kind", "?")],
            ["technique", meta.get("technique", "?")],
            ["seed", meta.get("seed", "?")],
            ["scope", meta.get("application") or "full study"],
            ["completed units", f"{contents.completed}/{total}"],
            ["survived so far", survived],
        ]
        if contents.skipped_lines:
            rows.append(["corrupt lines skipped", contents.skipped_lines])
        print(format_table(["field", "value"], rows, title=f"Campaign journal {args.journal}"))
        return 0

    if args.action == "resume":
        if not args.journal:
            raise SystemExit("campaign resume requires --journal")
        meta = load(args.journal).meta
        if meta.get("kind") != KIND_REPLAY:
            raise SystemExit(
                f"journal {args.journal!r} has no resumable replay-campaign header"
            )
        technique_name = meta.get("technique", args.technique)
        seed = meta.get("seed", DEFAULT_SEED)
        application = meta.get("application")
        limit = meta.get("limit")
    else:  # run
        technique_name = args.technique
        seed = args.seed
        application = args.application
        limit = args.limit

    try:
        factory = _TECHNIQUES[technique_name]
    except KeyError:
        raise SystemExit(
            f"unknown technique {technique_name!r}; choose from " + ", ".join(_TECHNIQUES)
        ) from None

    study = full_study()
    if application is not None:
        faults = list(study.corpus(_application(application)).faults)
    else:
        faults = study.all_faults()
    if limit is not None:
        faults = faults[: limit]

    telemetry = Telemetry()
    report = run_replay_campaign(
        faults,
        factory,
        seed=seed,
        workers=args.workers,
        journal_path=args.journal,
        journal_meta={
            "kind": KIND_REPLAY,
            "technique": technique_name,
            "seed": seed,
            "application": application,
            "limit": limit,
            "total_units": len(faults),
        },
        telemetry=telemetry,
        progress=ProgressReporter.if_interactive(
            len(faults),
            quiet=args.quiet,
            label=f"campaign {technique_name}",
        ),
    )
    print(
        format_table(
            ["technique", "EI", "EDN", "EDT", "overall"],
            [[
                report.technique,
                f"{report.survival_rate(FaultClass.ENV_INDEPENDENT):.0%}",
                f"{report.survival_rate(FaultClass.ENV_DEP_NONTRANSIENT):.0%}",
                f"{report.survival_rate(FaultClass.ENV_DEP_TRANSIENT):.0%}",
                f"{report.survival_rate():.1%}",
            ]],
            title=f"Campaign replay over {len(faults)} study faults "
            f"(workers={args.workers})",
        )
    )
    for line in telemetry.summary_lines():
        print(line)
    if args.journal:
        print(f"journal: {args.journal}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    overrides = {
        "report": {"format": args.format, "with_replay": bool(args.with_replay)}
    }
    print(_node_text("report", overrides=overrides))
    return 0


def _cmd_catalog(_args: argparse.Namespace) -> int:
    print(_node_text("catalog"))
    return 0


def _cmd_funnel(args: argparse.Namespace) -> int:
    application = _application(args.application)
    overrides = {f"parsed.{application.value}": {"scale": args.scale}}
    print(_node_text(f"funnel.{application.value}", overrides=overrides))
    return 0


def _cmd_csv(args: argparse.Namespace) -> int:
    from repro.analysis.distributions import study_figure_series
    from repro.analysis.tables import classification_table
    from repro.corpus.loader import full_study
    from repro.reports.csvexport import classification_table_csv, figure_series_csv

    application = _application(args.application)
    study = full_study()
    if args.kind == "table":
        table = classification_table(study.corpus(application))
        print(classification_table_csv(table), end="")
    else:
        series = study_figure_series(study, application)
        print(figure_series_csv(series), end="")
    return 0


def _cmd_export_archive(args: argparse.Namespace) -> int:
    from repro.corpus.loader import full_study
    from repro.pipeline.formats import format_for

    application = _application(args.application)
    corpus = full_study().corpus(application)
    text = format_for(application).render(corpus, args.scale)
    with open(args.path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"wrote {len(text)} bytes to {args.path}")
    return 0


def _split_node_list(value: str) -> list[str]:
    """Split a comma-joined node list, keeping grid-point names whole.

    Grid points are named ``family[axis=value,...]`` -- commas inside
    the brackets are part of the name, not separators.
    """
    names: list[str] = []
    part: list[str] = []
    depth = 0
    for char in value:
        if char == "," and depth == 0:
            if part:
                names.append("".join(part))
                part = []
            continue
        depth += {"[": 1, "]": -1}.get(char, 0)
        part.append(char)
    if part:
        names.append("".join(part))
    return names


def _study_nodes(args: argparse.Namespace) -> list[str] | None:
    """Flatten repeatable, comma-separated ``--nodes`` values."""
    if not args.nodes:
        return None
    names: list[str] = []
    for value in args.nodes:
        names.extend(_split_node_list(value))
    return names or None


def _study_cache_dir(args: argparse.Namespace) -> str | None:
    return None if args.no_cache else args.cache_dir


def _collapse_grid_rows(
    rows: Sequence[Sequence[Any]], registry: Any, merge: Any
) -> list[list[Any]]:
    """Collapse grid-point rows (name in column 0) to one row per family.

    Non-grid rows pass through in place; each family's points fold into
    a single ``merge(family, member_rows)`` row at the position of the
    family's first point.  ``study run|status --expand-grids`` skips
    this and shows every point.
    """
    family_of = {
        node.name: node.family for node in registry.nodes() if node.family
    }
    ordered: list[tuple[str, Any]] = []
    groups: dict[str, list[Sequence[Any]]] = {}
    for row in rows:
        family = family_of.get(row[0])
        if family is None:
            ordered.append(("row", row))
            continue
        if family not in groups:
            groups[family] = []
            ordered.append(("family", family))
        groups[family].append(row)
    collapsed: list[list[Any]] = []
    for kind, value in ordered:
        if kind == "row":
            collapsed.append(list(value))
        else:
            collapsed.append(merge(value, groups[value]))
    return collapsed


def _merge_run_rows(family: str, members: list[Sequence[Any]]) -> list[Any]:
    """One ``family[xN]`` summary row for ``study run`` output."""
    executed = sum(1 for row in members if row[1] == "executed")
    cached = len(members) - executed
    if cached == 0:
        status = "executed"
    elif executed == 0:
        status = "cached"
    else:
        status = f"{executed} executed, {cached} cached"
    wall = sum(float(row[2]) for row in members)
    return [f"{family}[x{len(members)}]", status, f"{wall:.1f}", "-"]


def _merge_status_rows(family: str, members: list[Sequence[Any]]) -> list[Any]:
    """One ``family[xN]`` summary row for ``study status`` output."""
    states: dict[str, int] = {}
    for row in members:
        states[row[2]] = states.get(row[2], 0) + 1
    if len(states) == 1:
        state = next(iter(states))
    else:
        state = " ".join(f"{name}:{count}" for name, count in sorted(states.items()))
    merged = [f"{family}[x{len(members)}]", "grid", state, "-"]
    for column in range(4, len(members[0])):
        walls = [float(row[column]) for row in members if row[column] != "-"]
        merged.append(f"{sum(walls):.1f}" if walls else "-")
    return merged


def _record_study_run(
    result: Any, context: Any, registry: Any, *, workers: int
) -> Any:
    """Build the perfdb record for one completed ``study run``."""
    from repro import obs

    nodes = {}
    for name, run in result.runs.items():
        nodes[name] = obs.NodePerf(
            wall_seconds=run.wall_seconds,
            status=run.status,
            version=registry.node(name).version,
            peak_rss_bytes=getattr(run, "peak_rss_bytes", None),
            cpu_seconds=getattr(run, "cpu_seconds", None),
        )
    counters: dict[str, float] = {
        "nodes.executed": result.executed,
        "nodes.cached": result.cached,
        "waves": result.waves,
    }
    if context.cache is not None:
        stats = context.cache.stats()
        counters["cache.hits"] = stats["hits"]
        counters["cache.misses"] = stats["misses"]
    return obs.PerfRecord.new(
        nodes, source="study-run", workers=workers, counters=counters
    )


def _cmd_study_run(args: argparse.Namespace) -> int:
    import contextlib

    from repro import obs
    from repro.harness.telemetry import ProgressReporter, Telemetry
    from repro.studygraph import StudyContext, default_registry, run_study
    from repro.studygraph.registry import GraphError

    from repro.obs import resources

    if args.workers < 1:
        raise SystemExit("--workers must be at least 1")
    telemetry = Telemetry()
    context = StudyContext.default(
        workers=args.workers,
        cache_dir=_study_cache_dir(args),
        telemetry=telemetry,
    )
    nodes = _study_nodes(args)
    registry = default_registry()
    monitor = obs.RunMonitor(args.live) if args.live else None
    priorities = None
    if args.perfdb and args.order == "longest-first":
        priorities = obs.PerfDB(args.perfdb).node_medians() or None
    if getattr(args, "sample_resources", None) is not None:
        if args.sample_resources <= 0:
            raise SystemExit("--sample-resources interval must be positive")
        # Module-global config: the engine starts the dispatcher sampler
        # and fork-pool workers inherit the interval across the fork.
        resources.configure(args.sample_resources)
    try:
        targets = nodes if nodes is not None else [
            node.name for node in registry.experiments()
        ]
        closure = registry.topo_order(targets)
        tracing = (
            obs.tracing(args.trace) if args.trace else contextlib.nullcontext()
        )
        with tracing:
            result = run_study(
                context,
                nodes=nodes,
                outputs=[args.show] if args.show else None,
                registry=registry,
                progress=ProgressReporter.if_interactive(
                    len(closure), quiet=args.quiet, label="study"
                ),
                monitor=monitor,
                priorities=priorities,
            )
    except GraphError as exc:
        raise SystemExit(str(exc)) from None
    finally:
        if getattr(args, "sample_resources", None) is not None:
            resources.configure(None)
    summary_rows = result.summary_rows()
    if not args.expand_grids:
        summary_rows = _collapse_grid_rows(summary_rows, registry, _merge_run_rows)
    print(
        format_table(
            ["node", "status", "wall ms", "digest"],
            summary_rows,
            title=f"Study run: {result.executed} executed, {result.cached} cached, "
            f"{result.waves} waves (workers={args.workers})",
        )
    )
    for line in telemetry.summary_lines():
        print(line)
    if args.trace:
        print(f"trace: {args.trace}")
    if args.live:
        print(f"live snapshot: {args.live}")
    if args.perfdb:
        record = _record_study_run(result, context, registry, workers=args.workers)
        obs.PerfDB(args.perfdb).append(record)
        print(
            f"perfdb: recorded {len(record.nodes)} node(s) as run "
            f"{record.run_id} -> {args.perfdb}"
        )
    if args.show:
        print()
        print(result.output_text(args.show))
    return 0


def _cmd_study_watch(args: argparse.Namespace) -> int:
    import time

    from repro import obs

    db = obs.PerfDB(args.perfdb) if args.perfdb else None
    deadline = time.monotonic() + args.timeout if args.timeout else None
    while True:
        # Cached behind the file's (mtime, size): each refresh is a stat
        # unless a recorder actually appended since the last loop.
        history = db.node_medians() or None if db is not None else None
        snapshot = obs.read_snapshot(args.snapshot)
        print(
            obs.render_watch_line(
                snapshot, history=history, stale_after=args.stale_after
            ),
            flush=True,
        )
        if snapshot is not None and snapshot.get("state") == "finished":
            return 0
        if args.once:
            return 0
        if deadline is not None and time.monotonic() >= deadline:
            print("watch timed out before the run finished", file=sys.stderr)
            return 1
        time.sleep(args.interval)


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro import obs

    db = obs.PerfDB(args.db)

    if args.perf_command == "record":
        from repro.studygraph import StudyContext, default_registry, memo_walls

        try:
            records = obs.read_trace(args.trace)
        except FileNotFoundError:
            raise SystemExit(f"no trace file at {args.trace!r}") from None
        if not records:
            raise SystemExit(f"no trace records in {args.trace!r}")
        versions = {
            node.name: node.version for node in default_registry().nodes()
        }
        memo = {}
        if args.cache_dir:
            memo = memo_walls(StudyContext.default(cache_dir=args.cache_dir))
        record = obs.record_from_trace(
            records, versions=versions, memo_walls=memo, label=args.label
        )
        if not record.nodes:
            raise SystemExit(
                f"trace {args.trace!r} has no node:* spans to record"
            )
        db.append(record)
        traced = sum(1 for p in record.nodes.values() if p.status == "traced")
        print(
            f"recorded run {record.run_id} ({traced} traced node(s), "
            f"{len(record.nodes) - traced} from memo META, git {record.git_sha[:10]}) "
            f"-> {args.db}"
        )
        return 0

    records = db.read_cached()
    if args.perf_command == "report":
        if not records:
            print(f"perf history {args.db} is empty")
            return 0
        print(
            format_table(
                ["run", "recorded at", "git", "source", "workers", "nodes", "total s"],
                obs.perfdb.run_rows(records, limit=args.runs),
                title=f"Perf history: {len(records)} run(s) in {args.db}",
            )
        )
        print(
            format_table(
                ["node", "ver", "runs", "latest ms", "median ms", "best ms", "vs median"],
                obs.perfdb.report_rows(records),
                title="Per-node history (measured runs only)",
            )
        )
        return 0

    # check
    latest, regressions = obs.check_regressions(
        records,
        window=args.window,
        tolerance=args.tolerance,
        min_seconds=args.min_ms / 1000.0,
    )
    if latest is None:
        print(f"perf history {args.db} is empty; nothing to check")
        return 0
    baseline_runs = sum(
        1 for record in records[:-1] if record.source == latest.source
    )
    if not regressions:
        print(
            f"no regressions: run {latest.run_id} vs a "
            f"{min(baseline_runs, args.window)}-run baseline window "
            f"(tolerance {args.tolerance:.0%})"
        )
        return 0
    print(
        format_table(
            ["node", "baseline ms", "latest ms", "ratio", "samples"],
            [
                [
                    r.node,
                    f"{r.baseline_seconds * 1000:.1f}",
                    f"{r.latest_seconds * 1000:.1f}",
                    f"{r.ratio:.2f}x",
                    r.samples,
                ]
                for r in regressions
            ],
            title=f"PERF REGRESSION: run {latest.run_id} vs median of "
            f"{min(baseline_runs, args.window)} baseline run(s), "
            f"tolerance {args.tolerance:.0%}",
        )
    )
    if args.warn_only:
        print("warn-only mode: not failing the check")
        return 0
    return 1


def _cmd_study_diff(args: argparse.Namespace) -> int:
    from repro.studygraph import diff_caches
    from repro.studygraph.registry import GraphError

    try:
        report = diff_caches(args.cache_a, args.cache_b, nodes=_study_nodes(args))
    except GraphError as exc:
        raise SystemExit(str(exc)) from None
    print(
        format_table(
            ["node", "kind", "state", "digest a", "digest b", "Δwall ms"],
            report.rows(),
            title=f"Study memo diff: {args.cache_a} vs {args.cache_b}",
        )
    )
    if report.clean:
        print("no drift")
        return 0
    print(f"{len(report.drifted)} node(s) drifted")
    return 1


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro import obs

    try:
        records = obs.read_trace(args.path)
    except FileNotFoundError:
        raise SystemExit(f"no trace file at {args.path!r}") from None
    if not records:
        raise SystemExit(f"no trace records in {args.path!r}")

    if args.trace_command == "summary":
        summary = obs.summarize_trace(records, top=args.top)
        root_name = summary.root.get("name", "?") if summary.root else "-"
        fields = [
            ["spans", summary.spans],
            ["processes", summary.processes],
            ["root span", root_name],
            ["root wall ms", f"{summary.root_seconds * 1000:.1f}"],
            ["root coverage", f"{summary.coverage:.1%}"],
        ]
        if summary.orphaned:
            fields.append(["orphaned spans", summary.orphaned])
        print(
            format_table(
                ["field", "value"],
                fields,
                title=f"Trace summary: {args.path}",
            )
        )
        print(
            format_table(
                ["phase", "spans", "total ms", "max ms"],
                summary.phase_rows(),
                title="Wall time by phase",
            )
        )
        self_rows = summary.self_time_rows(args.top)
        print(
            format_table(
                ["span", "calls", "self ms", "total ms", "peak RSS MB", "cpu ms"],
                self_rows,
                title=f"Self time (top {len(self_rows)})",
            )
        )
        print(
            format_table(
                ["span", "wall ms", "pid", "parent"],
                summary.slowest_rows(),
                title=f"Slowest {len(summary.slowest)} spans",
            )
        )
        if args.flame:
            print()
            print(
                obs.render_icicle(
                    records, width=args.flame_width, max_depth=args.flame_depth
                )
            )
        return 0

    # export
    if args.format == "folded":
        text = obs.format_folded(records)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"wrote {len(text.splitlines())} folded stacks to {args.out} "
            "(feed to flamegraph.pl or speedscope)"
        )
        return 0
    if args.format == "speedscope":
        payload = obs.speedscope_document(records, name=args.path)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
        print(
            f"wrote {len(payload['profiles'])} profile(s), "
            f"{len(payload['shared']['frames'])} frames to {args.out} "
            "(load at https://www.speedscope.app)"
        )
        return 0
    payload = obs.chrome_trace(records)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"))
    print(
        f"wrote {len(payload['traceEvents'])} events to {args.out} "
        "(load in chrome://tracing or https://ui.perfetto.dev)"
    )
    return 0


def _cmd_study_status(args: argparse.Namespace) -> int:
    from repro.studygraph import StudyContext, study_status
    from repro.studygraph.registry import GraphError

    cache_dir = _study_cache_dir(args)
    context = StudyContext.default(cache_dir=cache_dir)
    trace_records = None
    if getattr(args, "trace", None):
        from repro import obs

        try:
            trace_records = obs.read_trace(args.trace)
        except FileNotFoundError:
            raise SystemExit(f"no trace file at {args.trace!r}") from None
    try:
        rows = study_status(
            context, nodes=_study_nodes(args), trace_records=trace_records
        )
    except GraphError as exc:
        raise SystemExit(str(exc)) from None
    if not args.expand_grids:
        from repro.studygraph import default_registry

        rows = _collapse_grid_rows(rows, default_registry(), _merge_status_rows)
    headers = ["node", "kind", "state", "digest", "wall ms"]
    if trace_records is not None:
        headers.append("traced ms")
    print(
        format_table(
            headers,
            rows,
            title=f"Study memo status ({cache_dir or 'cache disabled'})",
        )
    )
    return 0


#: Targets `repro scenario run|status` default to: the pair-interaction
#: sweep (its closure pulls in the baseline and every pair point) plus
#: the temporal-clustering experiment.
_SCENARIO_DEFAULT_NODES = "scenario.pairs,scenario.temporal"


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    """``repro scenario run``: ``study run`` scoped to the scenario nodes.

    Same engine, same flags -- memoized waves, perfdb-informed dispatch,
    tracing, live snapshots -- just targeted at ``scenario.*`` unless
    ``--nodes`` says otherwise.
    """
    if not args.nodes:
        args.nodes = [_SCENARIO_DEFAULT_NODES]
    return _cmd_study_run(args)


def _cmd_scenario_status(args: argparse.Namespace) -> int:
    """``repro scenario status``: memo state of the scenario closure."""
    if not args.nodes:
        args.nodes = [_SCENARIO_DEFAULT_NODES]
    return _cmd_study_status(args)


def _cmd_scenario_matrix(args: argparse.Namespace) -> int:
    """``repro scenario matrix``: print the pair-interaction matrix.

    Resolves from the memo cache when warm; otherwise runs the closure
    serially (the default 40-pair grid takes seconds).
    """
    from repro.studygraph import StudyContext, run_single_node

    context = StudyContext.default(cache_dir=_study_cache_dir(args))
    print(run_single_node("scenario.pairs", context=context)["text"])
    return 0


def _summarize_deps(deps: tuple[str, ...], registry: Any) -> str:
    """Dependency list with grid-point runs collapsed to ``family[xN]``."""
    if not deps:
        return "-"
    parts: list[str] = []
    counts: dict[str, int] = {}
    for dep in deps:
        family = registry.family_of(dep)
        if family is None:
            parts.append(dep)
        elif family not in counts:
            counts[family] = 1
            parts.append(family)
        else:
            counts[family] += 1
    return ", ".join(
        f"{part}[x{counts[part]}]" if part in counts else part for part in parts
    )


def _cmd_study_graph(args: argparse.Namespace) -> int:
    from repro.studygraph import default_registry

    registry = default_registry()
    rows: list[list[str]] = []
    seen_families: set[str] = set()
    for name in registry.topo_order():
        node = registry.node(name)
        if node.family and not args.expand_grids:
            if node.family in seen_families:
                continue
            seen_families.add(node.family)
            family = registry.family(node.family)
            axes = ", ".join(
                f"{axis}x{len(values)}" for axis, values in family.axes
            )
            rows.append(
                [
                    f"{family.name}[x{family.size}]",
                    "grid",
                    ", ".join(node.deps) if node.deps else "-",
                    f"{family.size}-point grid ({axes})",
                ]
            )
            continue
        deps = (
            ", ".join(node.deps)
            if args.expand_grids
            else _summarize_deps(node.deps, registry)
        ) if node.deps else "-"
        rows.append([node.name, node.kind, deps, node.title])
    families = registry.families()
    points = sum(family.size for family in families.values())
    grid_note = (
        f", {len(families)} grid families ({points} points)" if families else ""
    )
    print(
        format_table(
            ["node", "kind", "depends on", "title"],
            rows,
            title=f"Study graph: {len(registry)} nodes, "
            f"{len(registry.edges())} edges{grid_note} (topological order)",
        )
    )
    return 0


#: Default unix socket for ``repro serve`` (beware the ~100-byte OS
#: limit on unix socket paths when overriding).
DEFAULT_SERVE_SOCKET = ".repro-serve.sock"


def _serve_params(pairs: Sequence[str]) -> dict[str, Any]:
    """``--param key=value`` pairs as a request params object.

    Values parse as JSON when they can (numbers, booleans, objects) and
    fall back to plain strings, so ``--param scale=3`` sends an int and
    ``--param node=T1`` sends a string.
    """
    import json

    params: dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param must look like key=value, got {pair!r}")
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value
    return params


def _cmd_serve_start(args: argparse.Namespace) -> int:
    from repro.serve import run_server, wait_for_server

    warm_nodes = [
        name for chunk in (args.warm or []) for name in chunk.split(",") if name
    ]
    if args.foreground:
        run_server(
            args.socket,
            cache_dir=_study_cache_dir(args),
            workers=args.workers,
            max_pending=args.max_pending,
            quota_capacity=args.quota_burst,
            quota_refill_per_second=args.quota_rps,
            warm_nodes=warm_nodes,
        )
        return 0

    # Detach: re-exec ourselves with --foreground in a new session so the
    # daemon survives this shell, then block until it answers a ping.
    import subprocess
    from pathlib import Path

    log_path = Path(args.log) if args.log else Path(str(args.socket) + ".log")
    command = [
        sys.executable, "-m", "repro", "serve", "start", "--foreground",
        "--socket", str(args.socket),
        "--workers", str(args.workers),
        "--max-pending", str(args.max_pending),
        "--quota-rps", str(args.quota_rps),
    ]
    cache_dir = _study_cache_dir(args)
    if cache_dir is None:
        command.append("--no-cache")
    else:
        command += ["--cache-dir", str(cache_dir)]
    if args.quota_burst is not None:
        command += ["--quota-burst", str(args.quota_burst)]
    for node in warm_nodes:
        command += ["--warm", node]
    with open(log_path, "ab") as log:
        process = subprocess.Popen(
            command, stdout=log, stderr=log, start_new_session=True
        )
    if not wait_for_server(args.socket, timeout=args.startup_timeout):
        process.poll()
        raise SystemExit(
            f"serve daemon did not come up on {args.socket} within "
            f"{args.startup_timeout:.0f}s (log: {log_path})"
        )
    print(f"serve daemon ready: pid {process.pid}, socket {args.socket}")
    return 0


def _cmd_serve_stop(args: argparse.Namespace) -> int:
    import os
    import signal
    import time

    from repro.serve import pid_path_for

    pid_path = pid_path_for(args.socket)
    try:
        pid = int(pid_path.read_text(encoding="utf-8").strip())
    except (FileNotFoundError, ValueError):
        raise SystemExit(
            f"no serve daemon pidfile at {pid_path} (is one running?)"
        ) from None
    try:
        os.kill(pid, signal.SIGTERM)
    except ProcessLookupError:
        pid_path.unlink(missing_ok=True)
        raise SystemExit(
            f"stale pidfile {pid_path}: no process {pid} (removed)"
        ) from None
    deadline = time.monotonic() + args.timeout
    from pathlib import Path

    socket_path = Path(args.socket)
    while time.monotonic() < deadline:
        if not socket_path.exists():
            print(f"serve daemon (pid {pid}) drained and stopped")
            return 0
        time.sleep(0.05)
    raise SystemExit(
        f"daemon (pid {pid}) still draining after {args.timeout:.0f}s; "
        "in-flight requests may be long-running"
    )


def _cmd_slo_check(args: argparse.Namespace) -> int:
    """``repro slo check``: judge declared objectives against artifacts."""
    from repro import obs
    from repro.obs import slo

    objectives = (
        slo.load_objectives(args.slo_file)
        if args.slo_file
        else slo.default_objectives()
    )

    exposition_text = None
    if args.metrics:
        try:
            with open(args.metrics, "r", encoding="utf-8") as stream:
                exposition_text = stream.read()
        except FileNotFoundError:
            raise SystemExit(f"no metrics exposition at {args.metrics!r}") from None

    perf_records = None
    if args.db:
        perf_records = obs.PerfDB(args.db).read()

    trace_records = None
    if args.trace:
        try:
            trace_records = obs.read_trace(args.trace)
        except FileNotFoundError:
            raise SystemExit(f"no trace file at {args.trace!r}") from None

    try:
        results = slo.evaluate_objectives(
            objectives,
            exposition_text=exposition_text,
            perf_records=perf_records,
            trace_records=trace_records,
        )
    except ValueError as exc:
        raise SystemExit(f"slo check failed: {exc}") from None

    violated = [r for r in results if r.violated]
    no_data = sum(1 for r in results if r.status == slo.STATUS_NO_DATA)
    print(
        format_table(
            ["objective", "kind", "status", "observed", "threshold", "detail"],
            [r.row() for r in results],
            title=(
                f"SLO check: {len(results) - len(violated) - no_data} ok, "
                f"{len(violated)} violated, {no_data} no-data"
            ),
        )
    )
    if violated and args.warn_only:
        print("warn-only: violations reported but not failing the check")
        return 0
    return 1 if violated else 0


def _cmd_serve_status(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.serve import (
        ServeClient,
        ServeConnectionError,
        status_path_for,
    )

    if getattr(args, "metrics", False):
        # Raw exposition text for scrapers; no snapshot fallback -- a
        # scrape of a dead daemon should fail loudly, not go stale.
        try:
            with ServeClient(
                args.socket, client="status", timeout=args.timeout
            ) as client:
                response = client.request("metrics")
        except (ServeConnectionError, OSError) as exc:
            print(f"metrics scrape failed: {exc}", file=sys.stderr)
            return 1
        if not response.ok:
            print(f"{response.status}: {response.error}", file=sys.stderr)
            return 1
        print(response.payload.get("text", ""), end="")
        return 0

    payload = None
    try:
        with ServeClient(args.socket, client="status", timeout=args.timeout) as client:
            response = client.request("status")
            if response.ok:
                payload = dict(response.payload)
    except (ServeConnectionError, OSError):
        payload = None

    if payload is None:
        # Daemon unreachable (busy, draining, or dead): fall back to the
        # heartbeat snapshot file, which requests keep fresh.
        snapshot = obs.read_snapshot(status_path_for(args.socket))
        healthz = obs.healthz_view(snapshot)
        rows = [[key, healthz[key]] for key in sorted(healthz)]
        print(
            format_table(
                ["field", "value"],
                rows,
                title=f"Serve status (snapshot fallback): {args.socket}",
            )
        )
        return 0 if healthz.get("healthy") else 1

    healthz = payload.get("healthz", {})
    requests = payload.get("requests", {})
    admission = payload.get("admission", {})
    warm = payload.get("warm", {})
    rows = [
        ["healthy", healthz.get("healthy")],
        ["state", healthz.get("state")],
        ["uptime s", payload.get("uptime_seconds")],
        ["in flight", admission.get("pending")],
        ["max pending", admission.get("max_pending")],
        ["draining", admission.get("draining")],
        ["requests", requests.get("requests")],
        ["ok", requests.get("ok")],
        ["errors", requests.get("errors")],
        ["rejected", requests.get("rejected")],
        ["memo hits", requests.get("memo_hits")],
        ["memo entries", payload.get("memo_entries")],
        ["clients", admission.get("clients")],
        ["faults loaded", warm.get("faults")],
        ["graph nodes", warm.get("nodes")],
        ["workers", warm.get("workers")],
    ]
    print(
        format_table(
            ["field", "value"], rows, title=f"Serve status: {args.socket}"
        )
    )
    return 0 if healthz.get("healthy", False) else 1


def _cmd_serve_request(args: argparse.Namespace) -> int:
    import json

    from repro.serve import ServeClient

    params = _serve_params(args.param or [])

    if args.repeat > 1 or args.concurrency > 1:
        return _serve_burst(args, params)

    with ServeClient(args.socket, client=args.client, timeout=args.timeout) as client:
        response = client.request(args.kind, params)
    if response.ok:
        text = response.payload.get("text")
        if text is not None and not args.json:
            # Plain print(), like every batch node command: served stdout
            # is byte-for-byte the batch output -- CI diffs on this.
            print(text)
        else:
            print(json.dumps(response.payload, indent=2, sort_keys=True))
        return 0
    print(f"{response.status}: {response.error}", file=sys.stderr)
    return 3 if response.rejected else 1


def _serve_burst(args: argparse.Namespace, params: dict[str, Any]) -> int:
    """Closed-loop request burst: throughput and latency percentiles."""
    import threading

    from repro.envmodel.loadgen import run_closed_loop
    from repro.serve import ServeClient

    local = threading.local()

    def send(index: int) -> None:
        client = getattr(local, "client", None)
        if client is None:
            client = local.client = ServeClient(
                args.socket, client=args.client, timeout=args.timeout
            )
        response = client.request(args.kind, params)
        if not response.ok:
            raise RuntimeError(f"{response.status}: {response.error}")

    result = run_closed_loop(
        send, requests=args.repeat, concurrency=args.concurrency
    )
    rows = [
        ["requests", result.requests_issued],
        ["failures", result.failures],
        ["concurrency", args.concurrency],
        ["wall s", f"{result.wall_seconds:.3f}"],
        ["req/s", f"{result.throughput:.0f}"],
        ["p50 ms", f"{result.p50 * 1000:.2f}"],
        ["p95 ms", f"{result.p95 * 1000:.2f}"],
        ["p99 ms", f"{result.p99 * 1000:.2f}"],
    ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=f"Serve burst: {args.repeat} x {args.kind}",
        )
    )
    return 0 if result.failures == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Whither Generic Recovery from Application Faults?' (DSN 2000)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table = subparsers.add_parser("table", help="print Table 1/2/3 for an application")
    table.add_argument("application", help="apache | gnome | mysql")
    table.set_defaults(func=_cmd_table)

    figure = subparsers.add_parser("figure", help="print Figure 1/2/3 for an application")
    figure.add_argument("application", help="apache | gnome | mysql")
    figure.add_argument("--width", type=int, default=40, help="bar width in characters")
    figure.add_argument(
        "--granularity", choices=("month", "quarter"), default="month",
        help="time bucketing for GNOME",
    )
    figure.set_defaults(func=_cmd_figure)

    aggregate = subparsers.add_parser("aggregate", help="print the Section 5.4 numbers")
    aggregate.set_defaults(func=_cmd_aggregate)

    mine = subparsers.add_parser(
        "mine", help="run the mining pipeline on a generated archive"
    )
    mine_sub = mine.add_subparsers(dest="mine_command", required=True)
    for app in Application:
        mine_app = mine_sub.add_parser(
            app.value, help=f"mine the generated {app.display_name} archive"
        )
        mine_app.add_argument(
            "--scale", type=int, default=None,
            help="raw archive size (defaults to the paper's full scale)",
        )
        mine_app.set_defaults(func=_cmd_mine_app, application=app.value)
    mine_run = mine_sub.add_parser(
        "run", help="fast archive path: parallel sharded parse + mine"
    )
    mine_run.add_argument(
        "--application", dest="target_application", default=None,
        metavar="APP", help="application to mine (required)",
    )
    mine_run.add_argument(
        "--scale", type=int, default=None,
        help="raw archive size (defaults to the paper's full scale)",
    )
    mine_run.add_argument(
        "--workers", type=int, default=1,
        help="parse-shard worker processes (traces are identical for any count)",
    )
    mine_run.add_argument(
        "--cache-dir", default=None,
        help="content-addressed parse/mine cache directory",
    )
    mine_run.add_argument(
        "--no-cache", action="store_true",
        help="bypass the cache entirely, even with --cache-dir",
    )
    mine_run.add_argument(
        "--archive", default=None, metavar="PATH",
        help="mine an archive file through the streaming byte-range path "
        "instead of rendering one in memory",
    )
    mine_run.add_argument(
        "--max-shard-bytes", type=int, default=None, metavar="N",
        help="byte budget per streaming shard (requires --archive; "
        "bounds per-worker memory)",
    )
    mine_run.add_argument(
        "--index-dir", default=None, metavar="DIR",
        help="build/extend an LSM-style segment index here while streaming "
        "(requires --archive)",
    )
    mine_run.set_defaults(func=_cmd_mine_run)

    index = subparsers.add_parser(
        "index", help="inspect and compact an on-disk segment text index"
    )
    index_sub = index.add_subparsers(dest="index_action", required=True)
    index_status = index_sub.add_parser(
        "status", help="segment count, sizes, doc totals, compactable tiers"
    )
    index_status.add_argument("dir", help="segment index directory")
    index_status.add_argument(
        "--segments", action="store_true", help="also list every segment"
    )
    index_status.set_defaults(func=_cmd_index)
    index_compact = index_sub.add_parser(
        "compact", help="run size-tiered compaction to a fixed point"
    )
    index_compact.add_argument("dir", help="segment index directory")
    index_compact.add_argument(
        "--full", action="store_true",
        help="merge everything into a single segment regardless of tiers",
    )
    index_compact.add_argument(
        "--tier-fanout", type=int, default=4, metavar="N",
        help="segments per size tier before a merge triggers (default 4)",
    )
    index_compact.set_defaults(func=_cmd_index)

    replay = subparsers.add_parser("replay", help="replay all faults under recovery techniques")
    replay.add_argument(
        "--technique", action="append", choices=sorted(_TECHNIQUES),
        help="technique to replay (repeatable; default: all)",
    )
    replay.set_defaults(func=_cmd_replay)

    campaign = subparsers.add_parser(
        "campaign",
        help="run a parallel, resumable replay campaign (repro.harness)",
    )
    campaign.add_argument(
        "action", nargs="?", choices=("run", "resume", "status"), default="run",
        help="run a campaign, resume one from its journal, or inspect a journal",
    )
    campaign.add_argument(
        "--technique", choices=sorted(_TECHNIQUES), default="checkpoint-rollback",
        help="recovery technique to replay",
    )
    campaign.add_argument(
        "--application", choices=[app.value for app in Application], default=None,
        help="restrict the campaign to one application's faults",
    )
    campaign.add_argument(
        "--limit", type=int, default=None, help="replay only the first N faults"
    )
    campaign.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (verdicts are identical for any count)",
    )
    campaign.add_argument(
        "--journal", default=None,
        help="JSONL run log; reruns with the same journal resume completed units",
    )
    campaign.add_argument(
        "--seed", type=int, default=_CAMPAIGN_DEFAULT_SEED, help="base campaign seed"
    )
    campaign.add_argument(
        "--quiet", action="store_true",
        help="suppress progress output (auto-suppressed when stderr is not a TTY)",
    )
    campaign.set_defaults(func=_cmd_campaign)

    report = subparsers.add_parser("report", help="print the full study report")
    report.add_argument(
        "--with-replay", action="store_true",
        help="include the recovery replay (slower)",
    )
    report.add_argument(
        "--format", choices=("text", "markdown"), default="text",
        help="output format",
    )
    report.set_defaults(func=_cmd_report)

    catalog = subparsers.add_parser(
        "catalog", help="print the 139-fault catalog as markdown"
    )
    catalog.set_defaults(func=_cmd_catalog)

    funnel = subparsers.add_parser(
        "funnel", help="print the mining narrowing funnel for an application"
    )
    funnel.add_argument("application", help="apache | gnome | mysql")
    funnel.add_argument("--scale", type=int, default=None, help="raw archive size")
    funnel.set_defaults(func=_cmd_funnel)

    csv_command = subparsers.add_parser("csv", help="emit a table or figure as CSV")
    csv_command.add_argument("kind", choices=("table", "figure"))
    csv_command.add_argument("application", help="apache | gnome | mysql")
    csv_command.set_defaults(func=_cmd_csv)

    export = subparsers.add_parser(
        "export-archive", help="write a raw 1999-style archive to a file"
    )
    export.add_argument("application", help="apache | gnome | mysql")
    export.add_argument("path", help="output file")
    export.add_argument("--scale", type=int, default=None, help="archive size")
    export.set_defaults(func=_cmd_export_archive)

    study = subparsers.add_parser(
        "study", help="execute the whole study as a memoized artifact graph"
    )
    study_sub = study.add_subparsers(dest="study_command", required=True)

    study_run = study_sub.add_parser(
        "run", help="run every experiment node (parallel, memoized, resumable)"
    )
    study_run.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (outputs are identical for any count)",
    )
    study_run.add_argument(
        "--nodes", action="append", default=None, metavar="NAME[,NAME...]",
        help="run only these nodes plus dependencies (repeatable)",
    )
    study_run.add_argument(
        "--show", default=None, metavar="NODE",
        help="print one node's rendered text after the run summary",
    )
    study_run.add_argument(
        "--cache-dir", default=DEFAULT_STUDY_CACHE,
        help="node memo directory (warm reruns resolve from it)",
    )
    study_run.add_argument(
        "--no-cache", action="store_true",
        help="disable memoization entirely",
    )
    study_run.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a span trace to this JSONL file (see 'repro trace')",
    )
    study_run.add_argument(
        "--quiet", action="store_true",
        help="suppress progress output (auto-suppressed when stderr is not a TTY)",
    )
    study_run.add_argument(
        "--live", default=None, metavar="PATH",
        help="write an atomic live-status snapshot here (see 'repro study watch')",
    )
    study_run.add_argument(
        "--perfdb", default=None, metavar="PATH",
        help="append this run's per-node wall times to a perf history JSONL",
    )
    study_run.add_argument(
        "--order", choices=("longest-first", "fifo"), default="longest-first",
        help="within-wave dispatch order; longest-first needs --perfdb history "
        "(outputs are identical either way)",
    )
    study_run.add_argument(
        "--expand-grids", action="store_true",
        help="list every grid point in the summary instead of one row per family",
    )
    study_run.add_argument(
        "--sample-resources", nargs="?", type=float, default=None,
        const=0.02, metavar="SECONDS",
        help="sample RSS/CPU/IO for the dispatcher and every worker at this "
        "interval (default 0.02s when the flag is given); samples land in "
        "the --trace file span-attributed and per-node peaks in --perfdb",
    )
    study_run.set_defaults(func=_cmd_study_run)

    study_watch = study_sub.add_parser(
        "watch", help="refreshing status line for a run started with --live"
    )
    study_watch.add_argument("snapshot", help="snapshot file written by --live")
    study_watch.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between refreshes (default 1.0)",
    )
    study_watch.add_argument(
        "--once", action="store_true",
        help="print one status line and exit",
    )
    study_watch.add_argument(
        "--perfdb", default=None, metavar="PATH",
        help="perf history used to estimate per-node ETAs",
    )
    study_watch.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="give up (exit 1) if the run has not finished by then",
    )
    study_watch.add_argument(
        "--stale-after", type=float, default=30.0, metavar="SECONDS",
        help="flag the snapshot as stale past this age (default 30)",
    )
    study_watch.set_defaults(func=_cmd_study_watch)

    study_status_cmd = study_sub.add_parser(
        "status", help="per-node memo state (nothing is executed)"
    )
    study_status_cmd.add_argument(
        "--nodes", action="append", default=None, metavar="NAME[,NAME...]",
        help="restrict to these nodes plus dependencies (repeatable)",
    )
    study_status_cmd.add_argument(
        "--cache-dir", default=DEFAULT_STUDY_CACHE,
        help="node memo directory to inspect",
    )
    study_status_cmd.add_argument(
        "--no-cache", action="store_true",
        help="report against a disabled cache (every node shows missing)",
    )
    study_status_cmd.add_argument(
        "--trace", default=None, metavar="PATH",
        help="join per-node wall time from this trace into the table",
    )
    study_status_cmd.add_argument(
        "--expand-grids", action="store_true",
        help="list every grid point instead of one row per family",
    )
    study_status_cmd.set_defaults(func=_cmd_study_status)

    study_graph_cmd = study_sub.add_parser(
        "graph", help="print the node catalog and dependency edges"
    )
    study_graph_cmd.add_argument(
        "--expand-grids", action="store_true",
        help="list every grid point instead of one row per family",
    )
    study_graph_cmd.set_defaults(func=_cmd_study_graph)

    study_diff_cmd = study_sub.add_parser(
        "diff", help="node-by-node digest drift between two memo caches"
    )
    study_diff_cmd.add_argument("cache_a", help="baseline memo directory")
    study_diff_cmd.add_argument("cache_b", help="candidate memo directory")
    study_diff_cmd.add_argument(
        "--nodes", action="append", default=None, metavar="NAME[,NAME...]",
        help="restrict to these nodes plus dependencies (repeatable)",
    )
    study_diff_cmd.set_defaults(func=_cmd_study_diff)

    scenario = subparsers.add_parser(
        "scenario",
        help="multi-fault scenario sweeps (pair interactions, temporal clustering)",
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)

    scenario_run = scenario_sub.add_parser(
        "run",
        help="run the scenario sweep (scenario.pairs + scenario.temporal)",
    )
    scenario_run.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (the matrix is identical for any count)",
    )
    scenario_run.add_argument(
        "--nodes", action="append", default=None, metavar="NAME[,NAME...]",
        help="override the default scenario targets (repeatable)",
    )
    scenario_run.add_argument(
        "--show", default=None, metavar="NODE",
        help="print one node's rendered text after the run summary",
    )
    scenario_run.add_argument(
        "--cache-dir", default=DEFAULT_STUDY_CACHE,
        help="node memo directory (warm reruns resolve from it)",
    )
    scenario_run.add_argument(
        "--no-cache", action="store_true",
        help="disable memoization entirely",
    )
    scenario_run.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a span trace to this JSONL file (see 'repro trace')",
    )
    scenario_run.add_argument(
        "--quiet", action="store_true",
        help="suppress progress output (auto-suppressed when stderr is not a TTY)",
    )
    scenario_run.add_argument(
        "--live", default=None, metavar="PATH",
        help="write an atomic live-status snapshot here (see 'repro study watch')",
    )
    scenario_run.add_argument(
        "--perfdb", default=None, metavar="PATH",
        help="append this run's per-node wall times to a perf history JSONL",
    )
    scenario_run.add_argument(
        "--order", choices=("longest-first", "fifo"), default="longest-first",
        help="within-wave dispatch order; longest-first needs --perfdb history "
        "(outputs are identical either way)",
    )
    scenario_run.add_argument(
        "--expand-grids", action="store_true",
        help="list every pair point in the summary instead of one family row",
    )
    scenario_run.set_defaults(func=_cmd_scenario_run)

    scenario_status_cmd = scenario_sub.add_parser(
        "status", help="memo state of the scenario closure (nothing executed)"
    )
    scenario_status_cmd.add_argument(
        "--nodes", action="append", default=None, metavar="NAME[,NAME...]",
        help="override the default scenario targets (repeatable)",
    )
    scenario_status_cmd.add_argument(
        "--cache-dir", default=DEFAULT_STUDY_CACHE,
        help="node memo directory to inspect",
    )
    scenario_status_cmd.add_argument(
        "--no-cache", action="store_true",
        help="report against a disabled cache (every node shows missing)",
    )
    scenario_status_cmd.add_argument(
        "--trace", default=None, metavar="PATH",
        help="join per-node wall time from this trace into the table",
    )
    scenario_status_cmd.add_argument(
        "--expand-grids", action="store_true",
        help="list every pair point instead of one family row",
    )
    scenario_status_cmd.set_defaults(func=_cmd_scenario_status)

    scenario_matrix_cmd = scenario_sub.add_parser(
        "matrix",
        help="print the pair-interaction matrix (serial run if not memoized)",
    )
    scenario_matrix_cmd.add_argument(
        "--cache-dir", default=DEFAULT_STUDY_CACHE,
        help="node memo directory (warm caches answer without replaying)",
    )
    scenario_matrix_cmd.add_argument(
        "--no-cache", action="store_true",
        help="ignore the memo cache and replay the sweep serially",
    )
    scenario_matrix_cmd.set_defaults(func=_cmd_scenario_matrix)

    trace = subparsers.add_parser(
        "trace", help="inspect or export a span trace recorded with --trace"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    trace_summary = trace_sub.add_parser(
        "summary", help="wall-time attribution: phases, coverage, slowest spans"
    )
    trace_summary.add_argument("path", help="trace JSONL file")
    trace_summary.add_argument(
        "--top", type=int, default=10, help="how many slowest spans to list"
    )
    trace_summary.add_argument(
        "--flame", action="store_true",
        help="render an ASCII icicle (caller-over-callee flame view)",
    )
    trace_summary.add_argument(
        "--flame-width", type=int, default=80, metavar="COLS",
        help="icicle width in columns (default 80)",
    )
    trace_summary.add_argument(
        "--flame-depth", type=int, default=6, metavar="N",
        help="deepest stack level to render (default 6)",
    )
    trace_summary.set_defaults(func=_cmd_trace)

    trace_export = trace_sub.add_parser(
        "export", help="convert a trace to chrome / folded-stack / speedscope form"
    )
    trace_export.add_argument("path", help="trace JSONL file")
    trace_export.add_argument(
        "--out", required=True, metavar="PATH",
        help="output file",
    )
    trace_export.add_argument(
        "--format", choices=("chrome", "folded", "speedscope"), default="chrome",
        help="chrome trace_event JSON (default), Brendan Gregg folded "
        "stacks, or a speedscope profile document",
    )
    trace_export.set_defaults(func=_cmd_trace)

    perf = subparsers.add_parser(
        "perf", help="trace-backed perf history: record runs, report, gate regressions"
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)

    perf_record = perf_sub.add_parser(
        "record", help="append one traced run's per-node wall times to the history"
    )
    perf_record.add_argument(
        "--db", required=True, metavar="PATH",
        help="perf history JSONL (created if missing)",
    )
    perf_record.add_argument(
        "--trace", required=True, metavar="PATH",
        help="span trace recorded with 'study run --trace'",
    )
    perf_record.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="also record memoized nodes' original wall times from this memo cache",
    )
    perf_record.add_argument(
        "--label", default=None,
        help="free-form label stored with the run (e.g. a branch name)",
    )
    perf_record.set_defaults(func=_cmd_perf)

    perf_report = perf_sub.add_parser(
        "report", help="run log plus longitudinal per-node timing table"
    )
    perf_report.add_argument(
        "--db", required=True, metavar="PATH", help="perf history JSONL"
    )
    perf_report.add_argument(
        "--runs", type=int, default=10, help="how many recent runs to list"
    )
    perf_report.set_defaults(func=_cmd_perf)

    perf_check = perf_sub.add_parser(
        "check", help="gate the latest run against a rolling baseline (exit 1 on regression)"
    )
    perf_check.add_argument(
        "--db", required=True, metavar="PATH", help="perf history JSONL"
    )
    perf_check.add_argument(
        "--window", type=int, default=3,
        help="baseline window: median of up to N prior runs (default 3)",
    )
    perf_check.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed slowdown over the baseline median (default 0.25 = 25%%)",
    )
    perf_check.add_argument(
        "--min-ms", type=float, default=1.0,
        help="ignore nodes faster than this in every sample (default 1.0 ms)",
    )
    perf_check.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but always exit 0 (CI soak-in mode)",
    )
    perf_check.set_defaults(func=_cmd_perf)

    serve = subparsers.add_parser(
        "serve",
        help="persistent study service: warm daemon answering study/mine/"
        "replay/trace-summary requests over a local socket",
    )
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)

    serve_start = serve_sub.add_parser(
        "start", help="launch the daemon (detached by default)"
    )
    serve_start.add_argument(
        "--socket", default=DEFAULT_SERVE_SOCKET, metavar="PATH",
        help="unix socket to listen on (default %(default)s; OS caps "
        "socket paths near 100 bytes)",
    )
    serve_start.add_argument(
        "--cache-dir", default=DEFAULT_STUDY_CACHE, metavar="DIR",
        help="shared node-memo cache (same default as 'study run', so the "
        "daemon and batch CLIs share warm state)",
    )
    serve_start.add_argument(
        "--no-cache", action="store_true",
        help="no on-disk cache; only the in-memory response memo",
    )
    serve_start.add_argument(
        "--workers", type=int, default=1,
        help="harness-pool workers for cold node execution (default 1)",
    )
    serve_start.add_argument(
        "--max-pending", type=int, default=64,
        help="admission bound: requests in service before new ones are "
        "rejected busy (default 64)",
    )
    serve_start.add_argument(
        "--quota-burst", type=float, default=None, metavar="N",
        help="per-client token-bucket burst size (default: quotas off)",
    )
    serve_start.add_argument(
        "--quota-rps", type=float, default=0.0, metavar="RATE",
        help="per-client sustained requests/second refill (with --quota-burst)",
    )
    serve_start.add_argument(
        "--warm", action="append", metavar="NODE[,NODE...]",
        help="pre-execute these study-graph nodes at startup (repeatable)",
    )
    serve_start.add_argument(
        "--foreground", action="store_true",
        help="run in this process until SIGTERM/SIGINT (default: detach)",
    )
    serve_start.add_argument(
        "--log", default=None, metavar="PATH",
        help="detached daemon's log file (default: <socket>.log)",
    )
    serve_start.add_argument(
        "--startup-timeout", type=float, default=30.0, metavar="SECONDS",
        help="how long to wait for the detached daemon to answer (default 30)",
    )
    serve_start.set_defaults(func=_cmd_serve_start)

    serve_stop = serve_sub.add_parser(
        "stop", help="SIGTERM the daemon and wait for its graceful drain"
    )
    serve_stop.add_argument(
        "--socket", default=DEFAULT_SERVE_SOCKET, metavar="PATH",
        help="the daemon's unix socket (default %(default)s)",
    )
    serve_stop.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECONDS",
        help="how long to wait for the drain to finish (default 30)",
    )
    serve_stop.set_defaults(func=_cmd_serve_stop)

    serve_status = serve_sub.add_parser(
        "status",
        help="health, admission, and request counters (falls back to the "
        "heartbeat snapshot when the daemon is unreachable; exit 1 when "
        "unhealthy)",
    )
    serve_status.add_argument(
        "--socket", default=DEFAULT_SERVE_SOCKET, metavar="PATH",
        help="the daemon's unix socket (default %(default)s)",
    )
    serve_status.add_argument(
        "--timeout", type=float, default=5.0, metavar="SECONDS",
        help="status request timeout before the snapshot fallback (default 5)",
    )
    serve_status.add_argument(
        "--metrics", action="store_true",
        help="print the Prometheus-style text exposition instead of the "
        "status table (exit 1 if the daemon is unreachable)",
    )
    serve_status.set_defaults(func=_cmd_serve_status)

    serve_request = serve_sub.add_parser(
        "request",
        help="send one request (or a --repeat burst) to the daemon",
    )
    serve_request.add_argument(
        "kind",
        choices=["study", "mine", "replay", "trace-summary", "status", "ping", "metrics"],
        help="request kind",
    )
    serve_request.add_argument(
        "--socket", default=DEFAULT_SERVE_SOCKET, metavar="PATH",
        help="the daemon's unix socket (default %(default)s)",
    )
    serve_request.add_argument(
        "--param", action="append", metavar="KEY=VALUE",
        help="request parameter (repeatable); values parse as JSON when "
        "possible, e.g. --param node=T1 --param scale=3",
    )
    serve_request.add_argument(
        "--client", default="cli",
        help="quota identity sent with the request (default %(default)s)",
    )
    serve_request.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="per-request socket timeout (default 60)",
    )
    serve_request.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="send the request N times closed-loop and print throughput "
        "and latency percentiles instead of the payload",
    )
    serve_request.add_argument(
        "--concurrency", type=int, default=1, metavar="C",
        help="closed-loop client threads for --repeat (default 1)",
    )
    serve_request.add_argument(
        "--json", action="store_true",
        help="print the full JSON payload even when the node has rendered text",
    )
    serve_request.set_defaults(func=_cmd_serve_request)

    slo = subparsers.add_parser(
        "slo",
        help="service-level objectives: judge latency/budget/resource "
        "objectives against scraped metrics, perf history, and traces",
    )
    slo_sub = slo.add_subparsers(dest="slo_command", required=True)

    slo_check = slo_sub.add_parser(
        "check",
        help="evaluate objectives offline (exit 1 on violation; "
        "objectives without evidence report no-data, not failure)",
    )
    slo_check.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="scraped text exposition ('repro serve status --metrics > FILE')",
    )
    slo_check.add_argument(
        "--db", default=None, metavar="PATH",
        help="perf history JSONL (for peak-RSS objectives)",
    )
    slo_check.add_argument(
        "--trace", default=None, metavar="FILE",
        help="trace JSONL with resource samples (for RSS-growth objectives)",
    )
    slo_check.add_argument(
        "--slo-file", default=None, metavar="FILE",
        help="JSON list of objectives (default: the stock objective set)",
    )
    slo_check.add_argument(
        "--warn-only", action="store_true",
        help="report violations but always exit 0 (CI soak-in mode)",
    )
    slo_check.set_defaults(func=_cmd_slo_check)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        import os

        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
