"""The network as part of the operating environment.

Models the paper's network-related triggers: a slow connection (which
"may be fixed by the time Apache recovers"), exhaustion of an unnamed
kernel network resource (which persists), and physical interface removal
(the PCMCIA card).
"""

from __future__ import annotations

import enum

from repro.envmodel.resources import BoundedResource
from repro.errors import SimulationError


class NetworkState(enum.Enum):
    """Health of the network path."""

    NORMAL = "normal"
    SLOW = "slow"
    PARTITIONED = "partitioned"


class NetworkDownError(SimulationError):
    """Raised when no interface is present or the path is partitioned."""


class Network:
    """A network interface plus path state and kernel buffer pool.

    Args:
        bandwidth_bytes_per_second: throughput while NORMAL.
        slow_bandwidth_bytes_per_second: throughput while SLOW.
        buffer_capacity: kernel network-buffer pool size (the "unknown
            network resource" of Section 5.1).
    """

    def __init__(
        self,
        *,
        bandwidth_bytes_per_second: float = 1_000_000.0,
        slow_bandwidth_bytes_per_second: float = 500.0,
        buffer_capacity: int = 1024,
    ):
        self.state = NetworkState.NORMAL
        self.interface_present = True
        self.bandwidth = bandwidth_bytes_per_second
        self.slow_bandwidth = slow_bandwidth_bytes_per_second
        self.buffers = BoundedResource("network_buffers", buffer_capacity)

    def transfer_seconds(self, num_bytes: int) -> float:
        """Time to move ``num_bytes`` under the current state.

        Raises:
            NetworkDownError: if the interface is gone or the path is
                partitioned.
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self.require_up()
        rate = self.slow_bandwidth if self.state is NetworkState.SLOW else self.bandwidth
        return num_bytes / rate

    def require_up(self) -> None:
        """Assert the network is usable.

        Raises:
            NetworkDownError: if the interface is removed or the path is
                partitioned.
        """
        if not self.interface_present:
            raise NetworkDownError("network interface removed")
        if self.state is NetworkState.PARTITIONED:
            raise NetworkDownError("network partitioned")

    def remove_interface(self) -> None:
        """Eject the (PCMCIA) network card."""
        self.interface_present = False

    def insert_interface(self) -> None:
        """Reinsert the network card."""
        self.interface_present = True

    def degrade(self, state: NetworkState) -> None:
        """Put the path into a degraded state."""
        self.state = state

    def repair(self) -> None:
        """Fix the path (the environmental repair on retry)."""
        self.state = NetworkState.NORMAL
