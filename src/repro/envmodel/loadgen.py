"""Discrete-event load generation for the mini applications.

Drives an application through the environment's event queue: request
arrivals are scheduled as events with deterministic inter-arrival
jitter, so virtual time, resource pressure, and application state evolve
together.  This is the "high load" and "peak load" from the Apache bug
reports, reproduced as simulation.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.apps.base import MiniApplication
from repro.errors import ApplicationCrash
from repro.rng import DEFAULT_SEED, make_rng


@dataclasses.dataclass(frozen=True)
class LoadProfile:
    """Shape of the generated load.

    Attributes:
        requests_per_second: mean arrival rate.
        duration_seconds: how long to generate arrivals for.
        jitter: fraction of the mean inter-arrival time used as uniform
            jitter (0 = perfectly periodic).
    """

    requests_per_second: float = 10.0
    duration_seconds: float = 60.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.requests_per_second <= 0 or self.duration_seconds < 0:
            raise ValueError("rate must be positive and duration non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")


@dataclasses.dataclass
class LoadResult:
    """Outcome of one generated load run.

    Attributes:
        requests_issued: arrivals delivered to the application.
        failures: requests that raised :class:`ApplicationCrash`.
        virtual_seconds: simulated time consumed.
    """

    requests_issued: int = 0
    failures: int = 0
    virtual_seconds: float = 0.0

    @property
    def failure_free(self) -> bool:
        return self.failures == 0


def generate_load(
    app: MiniApplication,
    op: str,
    profile: LoadProfile | None = None,
    *,
    seed: int = DEFAULT_SEED,
    on_failure: Callable[[ApplicationCrash], None] | None = None,
) -> LoadResult:
    """Schedule and run a request load against one application.

    Arrivals are scheduled on ``app.env.events``; each event executes
    ``app.run_op(op)``.  Failures are counted (and passed to
    ``on_failure`` when given) without stopping the run -- exactly how a
    real load generator observes a crashing server.

    Args:
        app: the application under load (bound to its environment).
        op: the operation each request performs.
        profile: the load shape.
        seed: deterministic jitter seed.
        on_failure: optional callback per crashed request.

    Returns:
        The load outcome; ``virtual_seconds`` reflects the environment
        clock movement during the run.
    """
    shape = profile or LoadProfile()
    rng = make_rng(seed, "loadgen")
    result = LoadResult()
    start_time = app.env.clock.now

    def issue() -> None:
        result.requests_issued += 1
        try:
            app.run_op(op)
        except ApplicationCrash as crash:
            result.failures += 1
            if on_failure is not None:
                on_failure(crash)

    mean_gap = 1.0 / shape.requests_per_second
    arrival = 0.0
    scheduled = 0
    while arrival < shape.duration_seconds:
        app.env.events.schedule(arrival, issue, label=f"request@{arrival:.3f}")
        scheduled += 1
        jitter = 1.0 + shape.jitter * (rng.random() - 0.5) * 2.0
        arrival += mean_gap * jitter

    app.env.events.drain(max_events=scheduled + 16)
    result.virtual_seconds = app.env.clock.now - start_time
    return result
