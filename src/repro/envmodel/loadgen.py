"""Load generation: discrete-event arrivals and closed-loop clients.

Two modes share one result type:

* :func:`generate_load` drives a mini application through the
  environment's event queue: request arrivals are scheduled as events
  with deterministic inter-arrival jitter, so virtual time, resource
  pressure, and application state evolve together.  This is the "high
  load" and "peak load" from the Apache bug reports, reproduced as
  simulation.
* :func:`run_closed_loop` drives a *real* target (the ``repro serve``
  daemon, any callable) with N concurrent clients, each issuing its
  next request the moment the previous response lands -- the classic
  closed-loop load generator.  It measures wall-clock throughput and
  per-request latency, reported as p50/p95/p99 percentiles on
  :class:`LoadResult`, so a serving benchmark sees tail latency rather
  than just aggregate rate.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Any, Callable

from repro.apps.base import MiniApplication
from repro.errors import ApplicationCrash
from repro.obs.hist import Histogram
from repro.rng import DEFAULT_SEED, make_rng


@dataclasses.dataclass(frozen=True)
class LoadProfile:
    """Shape of the generated load.

    Attributes:
        requests_per_second: mean arrival rate.
        duration_seconds: how long to generate arrivals for.
        jitter: fraction of the mean inter-arrival time used as uniform
            jitter (0 = perfectly periodic).
    """

    requests_per_second: float = 10.0
    duration_seconds: float = 60.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.requests_per_second <= 0 or self.duration_seconds < 0:
            raise ValueError("rate must be positive and duration non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")


@dataclasses.dataclass
class LoadResult:
    """Outcome of one generated load run.

    Attributes:
        requests_issued: arrivals delivered to the target.
        failures: requests that raised (:class:`ApplicationCrash` in
            event mode, any exception in closed-loop mode).
        virtual_seconds: simulated time consumed (event mode only).
        wall_seconds: real time consumed (closed-loop mode only).
        latencies: per-request wall latencies in seconds (closed-loop
            mode only; empty in event mode, where requests complete
            instantaneously in virtual time).
    """

    requests_issued: int = 0
    failures: int = 0
    virtual_seconds: float = 0.0
    wall_seconds: float = 0.0
    latencies: list[float] = dataclasses.field(default_factory=list)

    @property
    def failure_free(self) -> bool:
        return self.failures == 0

    @property
    def throughput(self) -> float:
        """Achieved requests per wall second (0.0 when unmeasured)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.requests_issued / self.wall_seconds

    def latency_histogram(self) -> Histogram:
        """The samples folded into the shared log-linear histogram.

        The same bucket scheme the ``repro serve`` metrics exposition
        uses, so a client-side p99 and the server's p99 for the same
        run land in the same bucket.
        """
        return Histogram.from_values(self.latencies)

    def latency_percentile(self, fraction: float) -> float | None:
        """The latency at ``fraction`` (0..1], or None without samples.

        Computed through the shared :class:`~repro.obs.hist.Histogram`
        rather than nearest-rank on raw samples: the value is the upper
        bound of the bucket holding the nearest-rank sample, identical
        bucket-for-bucket to what the server-side metrics exposition
        reports for the same latencies.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if not self.latencies:
            return None
        return self.latency_histogram().percentile(fraction)

    @property
    def p50(self) -> float | None:
        """Median request latency in seconds."""
        return self.latency_percentile(0.50)

    @property
    def p95(self) -> float | None:
        """95th-percentile request latency in seconds."""
        return self.latency_percentile(0.95)

    @property
    def p99(self) -> float | None:
        """99th-percentile request latency in seconds."""
        return self.latency_percentile(0.99)


def generate_load(
    app: MiniApplication,
    op: str,
    profile: LoadProfile | None = None,
    *,
    seed: int = DEFAULT_SEED,
    on_failure: Callable[[ApplicationCrash], None] | None = None,
) -> LoadResult:
    """Schedule and run a request load against one application.

    Arrivals are scheduled on ``app.env.events``; each event executes
    ``app.run_op(op)``.  Failures are counted (and passed to
    ``on_failure`` when given) without stopping the run -- exactly how a
    real load generator observes a crashing server.

    Args:
        app: the application under load (bound to its environment).
        op: the operation each request performs.
        profile: the load shape.
        seed: deterministic jitter seed.
        on_failure: optional callback per crashed request.

    Returns:
        The load outcome; ``virtual_seconds`` reflects the environment
        clock movement during the run.
    """
    shape = profile or LoadProfile()
    rng = make_rng(seed, "loadgen")
    result = LoadResult()
    start_time = app.env.clock.now

    def issue() -> None:
        result.requests_issued += 1
        try:
            app.run_op(op)
        except ApplicationCrash as crash:
            result.failures += 1
            if on_failure is not None:
                on_failure(crash)

    mean_gap = 1.0 / shape.requests_per_second
    arrival = 0.0
    scheduled = 0
    while arrival < shape.duration_seconds:
        app.env.events.schedule(arrival, issue, label=f"request@{arrival:.3f}")
        scheduled += 1
        jitter = 1.0 + shape.jitter * (rng.random() - 0.5) * 2.0
        arrival += mean_gap * jitter

    app.env.events.drain(max_events=scheduled + 16)
    result.virtual_seconds = app.env.clock.now - start_time
    return result


def run_closed_loop(
    send: Callable[[int], Any],
    *,
    requests: int,
    concurrency: int = 1,
    on_failure: Callable[[int, Exception], None] | None = None,
) -> LoadResult:
    """Issue ``requests`` calls to ``send`` from closed-loop clients.

    ``concurrency`` worker threads share one request counter; each
    thread claims the next request index, calls ``send(index)``, records
    the wall latency, and immediately claims the next -- so offered load
    tracks service capacity instead of a fixed arrival rate, and the
    result's percentiles describe the latency the clients actually saw.

    A ``send`` that raises counts as a failure (its latency is still
    recorded: a rejected request has a response time too); the run never
    stops early.

    Args:
        send: one request; receives the global request index.
        requests: total requests to issue across all clients.
        concurrency: closed-loop client threads.
        on_failure: optional callback ``(index, exception)`` per failed
            request, called from the issuing thread.

    Returns:
        The load outcome with ``wall_seconds``, ``latencies``, and the
        p50/p95/p99 views filled in.
    """
    if requests < 0:
        raise ValueError("requests must be non-negative")
    if concurrency < 1:
        raise ValueError("concurrency must be at least 1")

    counter = iter(range(requests))
    counter_lock = threading.Lock()
    latencies: list[list[float]] = [[] for _ in range(concurrency)]
    issued = [0] * concurrency
    failures = [0] * concurrency

    def client(slot: int) -> None:
        while True:
            with counter_lock:
                index = next(counter, None)
            if index is None:
                return
            issued[slot] += 1
            started = time.perf_counter()
            try:
                send(index)
            except Exception as exc:  # noqa: BLE001 -- load gen observes, never dies
                failures[slot] += 1
                if on_failure is not None:
                    on_failure(index, exc)
            finally:
                latencies[slot].append(time.perf_counter() - started)

    started = time.perf_counter()
    if concurrency == 1:
        client(0)
    else:
        threads = [
            threading.Thread(target=client, args=(slot,), daemon=True)
            for slot in range(concurrency)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    wall = time.perf_counter() - started

    return LoadResult(
        requests_issued=sum(issued),
        failures=sum(failures),
        wall_seconds=wall,
        latencies=[sample for slot in latencies for sample in slot],
    )
