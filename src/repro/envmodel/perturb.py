"""Environmental perturbation applied by a recovery attempt.

Generic recovery cannot touch application state (it must restore all of
it), but recovery *does* change the environment: time passes, the thread
scheduler draws a fresh interleaving, the recovery system kills the
application's processes (freeing process slots and ports), and external
services may be repaired by forces outside the application.  Which of
these happen is exactly what
:class:`~repro.classify.recovery_model.RecoveryModel` parameterises; this
module applies a model's side effects to a live
:class:`~repro.envmodel.environment.Environment`.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.classify.recovery_model import RecoveryModel
from repro.envmodel.environment import Environment
from repro.errors import PerturbationConflict


@dataclasses.dataclass
class ResourceFootprint:
    """What one application currently holds in the environment.

    Recovery perturbation needs to know which environment units belong to
    the recovering application: killing its processes frees *its* slots
    and ports, not the whole machine's.

    Attributes:
        descriptors: file descriptors held by the application.
        leaked_descriptors: descriptors the application no longer uses
            but never closed (reclaimable by OS-resource garbage
            collection).
        process_slots: kernel process-table slots held (children).
        ports: network ports bound.
        network_buffers: kernel network buffers pinned.
    """

    descriptors: int = 0
    leaked_descriptors: int = 0
    process_slots: int = 0
    ports: int = 0
    network_buffers: int = 0

    def release_processes_and_ports(self, env: Environment) -> None:
        """Kill the application's processes, freeing slots and their ports."""
        env.process_table.release(self.process_slots)
        self.process_slots = 0
        env.ports.release(self.ports)
        self.ports = 0

    def release_leaked_os_resources(self, env: Environment) -> None:
        """Garbage-collect unused descriptors and pinned kernel buffers
        (the Section 6.2 mitigation)."""
        env.file_descriptors.release(self.leaked_descriptors)
        self.descriptors -= self.leaked_descriptors
        self.leaked_descriptors = 0
        env.network.buffers.release(self.network_buffers)
        self.network_buffers = 0

    def release_everything(self, env: Environment) -> None:
        """Release the entire footprint (restart-from-scratch recovery)."""
        env.file_descriptors.release(self.descriptors)
        self.descriptors = 0
        self.leaked_descriptors = 0
        env.process_table.release(self.process_slots)
        self.process_slots = 0
        env.ports.release(self.ports)
        self.ports = 0
        env.network.buffers.release(self.network_buffers)
        self.network_buffers = 0


def apply_recovery_perturbation(
    env: Environment,
    model: RecoveryModel,
    footprint: ResourceFootprint | None = None,
    *,
    downtime_seconds: float = 30.0,
    storage_growth_bytes: int = 64 * 1024 * 1024,
) -> None:
    """Apply one recovery attempt's environmental side effects.

    Args:
        env: the environment to perturb.
        model: which side effects the recovery system has.
        footprint: the recovering application's held resources, if known.
        downtime_seconds: virtual time the recovery takes (entropy
            accumulates; timers move).
        storage_growth_bytes: how much an elastic system grows storage by.
    """
    env.clock.advance(downtime_seconds)
    env.entropy.accumulate(downtime_seconds)
    env.reseed_scheduler()

    if footprint is not None:
        if not model.preserves_all_state:
            footprint.release_everything(env)
        else:
            if model.kills_application_processes:
                footprint.release_processes_and_ports(env)
            if model.reclaims_leaked_os_resources:
                footprint.release_leaked_os_resources(env)

    if model.auto_extends_storage:
        env.disk.grow(storage_growth_bytes)
        env.disk_cache.grow(storage_growth_bytes)
        env.disk.raise_file_limit(None)

    if model.expects_external_repair:
        env.dns.restart()
        env.network.repair()


def compose_recovery_models(models: Iterable[RecoveryModel]) -> RecoveryModel:
    """Fold several recovery models into one composed model.

    The additive side effects (killing processes, reclaiming leaked OS
    resources, growing storage, expecting external repair) commute: a
    recovery attempt that does both of two such things is simply their
    union, regardless of which model listed which.  ``preserves_all_state``
    does not commute -- a recovery cannot both restore every byte of
    application state and discard it -- so models that disagree on it are
    rejected rather than silently ordered.

    Args:
        models: the recovery models to compose (at least one).

    Returns:
        A single model whose side effects are the union of the inputs'.

    Raises:
        ValueError: if ``models`` is empty.
        PerturbationConflict: if the models disagree on
            ``preserves_all_state``.
    """
    folded = list(models)
    if not folded:
        raise ValueError("cannot compose zero recovery models")
    preserves = {m.preserves_all_state for m in folded}
    if len(preserves) > 1:
        raise PerturbationConflict(
            "cannot compose state-preserving and state-discarding recovery models"
        )
    return RecoveryModel(
        preserves_all_state=folded[0].preserves_all_state,
        kills_application_processes=any(m.kills_application_processes for m in folded),
        auto_extends_storage=any(m.auto_extends_storage for m in folded),
        reclaims_leaked_os_resources=any(m.reclaims_leaked_os_resources for m in folded),
        expects_external_repair=any(m.expects_external_repair for m in folded),
    )


def apply_recovery_perturbations(
    env: Environment,
    models: Iterable[RecoveryModel],
    footprint: ResourceFootprint | None = None,
    *,
    downtime_seconds: float = 30.0,
    storage_growth_bytes: int = 64 * 1024 * 1024,
) -> RecoveryModel:
    """Apply several recovery models' side effects as one perturbation.

    Composition-safe variant of :func:`apply_recovery_perturbation`: the
    models are folded with :func:`compose_recovery_models` first, so the
    resulting environment state is independent of the order the models
    are listed in, and conflicting models raise instead of racing.

    Returns:
        The composed model that was applied.
    """
    composed = compose_recovery_models(models)
    apply_recovery_perturbation(
        env,
        composed,
        footprint,
        downtime_seconds=downtime_seconds,
        storage_growth_bytes=storage_growth_bytes,
    )
    return composed
