"""The Domain Name Service as part of the operating environment.

Three Apache faults and one MySQL fault in the paper hinge on DNS
behaviour: a lookup returning an error, a slow response, and a peer host
with no reverse record.  The server models those states explicitly;
restarting it (the environmental repair the paper expects "without
application-specific recovery") returns it to health.
"""

from __future__ import annotations

import enum

from repro.errors import SimulationError


class DnsState(enum.Enum):
    """Health of the DNS server."""

    HEALTHY = "healthy"
    SLOW = "slow"
    ERROR = "error"


class DnsLookupError(SimulationError):
    """Raised when a lookup fails (SERVFAIL or missing record)."""


class DnsServer:
    """A name server with forward and reverse zones and a health state.

    Args:
        latency_seconds: lookup latency while healthy.
        slow_latency_seconds: lookup latency while in the SLOW state.
    """

    def __init__(self, *, latency_seconds: float = 0.05, slow_latency_seconds: float = 30.0):
        self.state = DnsState.HEALTHY
        self.latency_seconds = latency_seconds
        self.slow_latency_seconds = slow_latency_seconds
        self._forward: dict[str, str] = {}
        self._reverse: dict[str, str] = {}

    def add_record(self, hostname: str, address: str, *, with_reverse: bool = True) -> None:
        """Register a host; optionally also its PTR (reverse) record.

        MySQL's reverse-DNS fault needs hosts that resolve forward but
        have no reverse record, so ``with_reverse=False`` is allowed.
        """
        self._forward[hostname] = address
        if with_reverse:
            self._reverse[address] = hostname

    def remove_reverse(self, address: str) -> None:
        """Drop a PTR record (misconfigure reverse DNS for the address)."""
        self._reverse.pop(address, None)

    def lookup(self, hostname: str) -> tuple[str, float]:
        """Resolve a hostname.

        Returns:
            (address, latency_seconds).

        Raises:
            DnsLookupError: when the server is erroring or the name is
                unknown.
        """
        latency = self._current_latency()
        if self.state is DnsState.ERROR:
            raise DnsLookupError(f"SERVFAIL resolving {hostname}")
        if hostname not in self._forward:
            raise DnsLookupError(f"NXDOMAIN: {hostname}")
        return self._forward[hostname], latency

    def reverse_lookup(self, address: str) -> tuple[str, float]:
        """Resolve an address to a hostname.

        Raises:
            DnsLookupError: when the server is erroring or no PTR record
                exists (the MySQL trigger).
        """
        latency = self._current_latency()
        if self.state is DnsState.ERROR:
            raise DnsLookupError(f"SERVFAIL resolving {address}")
        if address not in self._reverse:
            raise DnsLookupError(f"no PTR record for {address}")
        return self._reverse[address], latency

    def has_reverse(self, address: str) -> bool:
        """Whether a PTR record exists for the address."""
        return address in self._reverse

    def degrade(self, state: DnsState) -> None:
        """Put the server into a degraded state."""
        self.state = state

    def restart(self) -> None:
        """Restart the server, restoring health (records survive)."""
        self.state = DnsState.HEALTHY

    def _current_latency(self) -> float:
        if self.state is DnsState.SLOW:
            return self.slow_latency_seconds
        return self.latency_seconds
