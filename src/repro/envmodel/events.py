"""Deterministic discrete-event queue.

Events fire in (time, insertion-sequence) order, so simulations replay
identically for the same inputs.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Any, Callable

from repro.envmodel.clock import SimulationClock


@dataclasses.dataclass(frozen=True, order=True)
class ScheduledEvent:
    """An event scheduled on the queue (ordered by time, then sequence)."""

    time: float
    sequence: int
    action: Callable[[], Any] = dataclasses.field(compare=False)
    label: str = dataclasses.field(compare=False, default="")


class EventQueue:
    """A min-heap of scheduled events bound to a clock.

    Args:
        clock: the simulation clock to advance while draining.
    """

    def __init__(self, clock: SimulationClock):
        self._clock = clock
        self._heap: list[ScheduledEvent] = []
        self._sequence = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, delay: float, action: Callable[[], Any], *, label: str = "") -> ScheduledEvent:
        """Schedule ``action`` to fire ``delay`` seconds from now.

        Raises:
            ValueError: if ``delay`` is negative.
        """
        if delay < 0:
            raise ValueError("events cannot be scheduled in the past")
        event = ScheduledEvent(
            time=self._clock.now + delay,
            sequence=next(self._sequence),
            action=action,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return event

    def run_next(self) -> ScheduledEvent | None:
        """Fire the next event, advancing the clock to its time.

        Returns:
            The fired event, or None if the queue is empty.
        """
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._clock.advance_to(event.time)
        event.action()
        return event

    def run_until(self, deadline: float) -> int:
        """Fire all events scheduled at or before ``deadline``.

        Returns:
            The number of events fired.  The clock ends at ``deadline`` or
            the last event time, whichever is later.
        """
        fired = 0
        while self._heap and self._heap[0].time <= deadline:
            self.run_next()
            fired += 1
        self._clock.advance_to(deadline)
        return fired

    def drain(self, *, max_events: int = 100_000) -> int:
        """Fire every scheduled event.

        Args:
            max_events: safety bound against runaway self-scheduling loops.

        Returns:
            The number of events fired.

        Raises:
            RuntimeError: if ``max_events`` is exceeded.
        """
        fired = 0
        while self._heap:
            if fired >= max_events:
                raise RuntimeError(f"event queue did not drain within {max_events} events")
            self.run_next()
            fired += 1
        return fired
