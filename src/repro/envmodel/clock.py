"""Virtual simulation clock.

All simulated components share one clock; time only moves when the
simulation advances it, so runs are reproducible and tests are instant.
"""

from __future__ import annotations


class SimulationClock:
    """A monotonically non-decreasing virtual clock, in seconds.

    Args:
        start: initial time.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward.

        Args:
            seconds: non-negative amount to advance.

        Returns:
            The new current time.

        Raises:
            ValueError: if ``seconds`` is negative.
        """
        if seconds < 0:
            raise ValueError("the clock cannot move backwards")
        self._now += seconds
        return self._now

    def advance_to(self, when: float) -> float:
        """Move time forward to an absolute instant (no-op if in the past)."""
        if when > self._now:
            self._now = when
        return self._now
