"""Deterministic operating-environment simulator.

Section 3 of the paper defines the *operating environment* as "states or
events that occur outside of the application being studied": other
programs (the DNS server), kernel state (process-table slots, file
descriptors), hardware conditions (a removed PCMCIA card), and the
timing of workload requests and thread scheduling.  This package models
those states explicitly so the miniature applications
(:mod:`repro.apps`) can depend on them and the recovery experiments
(:mod:`repro.recovery`) can perturb them on retry.

Everything is deterministic from a seed: "given a fixed operating
environment, a set of concurrent, sequential processes is completely
deterministic" -- non-determinism enters only through environment
changes, exactly as the paper argues.
"""

from repro.envmodel.clock import SimulationClock
from repro.envmodel.events import EventQueue, ScheduledEvent
from repro.envmodel.resources import BoundedResource, DiskVolume, EntropyPool
from repro.envmodel.dns import DnsServer, DnsState
from repro.envmodel.network import Network, NetworkState
from repro.envmodel.scheduler import ThreadScheduler
from repro.envmodel.environment import Environment

__all__ = [
    "BoundedResource",
    "DiskVolume",
    "DnsServer",
    "DnsState",
    "EntropyPool",
    "Environment",
    "EventQueue",
    "Network",
    "NetworkState",
    "ScheduledEvent",
    "SimulationClock",
    "ThreadScheduler",
]
