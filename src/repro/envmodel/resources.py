"""Finite operating-system resources.

The paper's environment-dependent-nontransient faults are mostly
"some resource being exhausted, such as file descriptors, sockets, or
disk space" (Section 6.2).  These classes model such resources with hard
capacities; exhaustion raises
:class:`~repro.errors.ResourceExhaustedError`, which the mini
applications turn into the failures the bug reports describe.
"""

from __future__ import annotations

from repro.errors import ResourceExhaustedError


class BoundedResource:
    """A countable resource with a hard capacity (descriptors, slots, ports).

    Args:
        name: resource name used in exhaustion errors.
        capacity: maximum simultaneously held units.
    """

    def __init__(self, name: str, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.name = name
        self.capacity = capacity
        self._in_use = 0

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def available(self) -> int:
        """Units still acquirable."""
        return self.capacity - self._in_use

    @property
    def exhausted(self) -> bool:
        """Whether no unit can currently be acquired."""
        return self._in_use >= self.capacity

    def acquire(self, units: int = 1) -> None:
        """Take ``units`` from the resource.

        Raises:
            ResourceExhaustedError: if fewer than ``units`` are available.
        """
        if units < 0:
            raise ValueError("units must be non-negative")
        if self._in_use + units > self.capacity:
            raise ResourceExhaustedError(
                self.name,
                f"{self.name}: requested {units}, available {self.available}",
            )
        self._in_use += units

    def release(self, units: int = 1) -> None:
        """Return ``units`` to the resource.

        Raises:
            ValueError: if more units are released than are held.
        """
        if units < 0:
            raise ValueError("units must be non-negative")
        if units > self._in_use:
            raise ValueError(f"{self.name}: releasing {units} but only {self._in_use} held")
        self._in_use -= units

    def release_all(self) -> int:
        """Return every held unit (recovery killing the application).

        Returns:
            The number of units freed.
        """
        freed = self._in_use
        self._in_use = 0
        return freed

    def grow(self, extra_capacity: int) -> None:
        """Raise the capacity (the 'automatically increase resources' mitigation)."""
        if extra_capacity < 0:
            raise ValueError("extra_capacity must be non-negative")
        self.capacity += extra_capacity


class DiskVolume:
    """A disk volume with total capacity and a per-file size limit.

    Models both Section 5 triggers: "full file system" (volume capacity)
    and "size of log file is greater than maximum allowed file size"
    (per-file limit).

    Args:
        capacity_bytes: total volume capacity.
        max_file_bytes: per-file size limit (the 2GB-era limit).
    """

    def __init__(self, capacity_bytes: int, *, max_file_bytes: int | None = None):
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        self.capacity_bytes = capacity_bytes
        self.max_file_bytes = max_file_bytes
        self._files: dict[str, int] = {}

    @property
    def used_bytes(self) -> int:
        """Bytes currently stored."""
        return sum(self._files.values())

    @property
    def free_bytes(self) -> int:
        """Bytes still writable."""
        return self.capacity_bytes - self.used_bytes

    @property
    def full(self) -> bool:
        """Whether no byte can be written."""
        return self.free_bytes <= 0

    def file_size(self, path: str) -> int:
        """Size of a file (0 if absent)."""
        return self._files.get(path, 0)

    def write(self, path: str, num_bytes: int) -> None:
        """Append ``num_bytes`` to ``path``.

        Raises:
            ResourceExhaustedError: with resource ``"disk_space"`` when
                the volume is full, or ``"max_file_size"`` when the file
                would exceed the per-file limit.
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        new_size = self.file_size(path) + num_bytes
        if self.max_file_bytes is not None and new_size > self.max_file_bytes:
            raise ResourceExhaustedError(
                "max_file_size",
                f"{path}: {new_size} bytes exceeds the {self.max_file_bytes}-byte file limit",
            )
        if num_bytes > self.free_bytes:
            raise ResourceExhaustedError(
                "disk_space", f"volume full: {self.free_bytes} bytes free, need {num_bytes}"
            )
        self._files[path] = new_size

    def delete(self, path: str) -> int:
        """Remove a file, returning the bytes freed (0 if absent)."""
        return self._files.pop(path, 0)

    def fill(self) -> None:
        """Consume all remaining space (an external program filling the disk)."""
        self._files["<external-filler>"] = self._files.get("<external-filler>", 0) + self.free_bytes

    def free_external(self) -> int:
        """Delete externally written filler (an administrator freeing space)."""
        return self.delete("<external-filler>")

    def grow(self, extra_bytes: int) -> None:
        """Raise the volume capacity (elastic storage mitigation)."""
        if extra_bytes < 0:
            raise ValueError("extra_bytes must be non-negative")
        self.capacity_bytes += extra_bytes

    def raise_file_limit(self, new_limit: int | None) -> None:
        """Raise or remove the per-file size limit."""
        self.max_file_bytes = new_limit


class EntropyPool:
    """The /dev/random entropy pool.

    Blocks (raises) when drained; refills as environmental events arrive
    -- "during recovery, it is likely that more events will be generated
    for /dev/random" (Section 5.1).

    Args:
        bits: initial entropy.
        refill_rate_bits_per_second: refill rate while time passes.
    """

    def __init__(self, bits: int = 4096, *, refill_rate_bits_per_second: float = 8.0):
        if bits < 0:
            raise ValueError("bits must be non-negative")
        self.bits = bits
        self.refill_rate = refill_rate_bits_per_second

    def draw(self, bits: int) -> None:
        """Consume entropy.

        Raises:
            ResourceExhaustedError: when the pool holds too few bits.
        """
        if bits < 0:
            raise ValueError("bits must be non-negative")
        if bits > self.bits:
            raise ResourceExhaustedError(
                "entropy", f"/dev/random: need {bits} bits, pool has {self.bits}"
            )
        self.bits -= bits

    def accumulate(self, seconds: float) -> None:
        """Refill the pool as ``seconds`` of environmental events arrive."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self.bits += int(seconds * self.refill_rate)

    def drain(self) -> None:
        """Empty the pool (an idle headless machine right after boot)."""
        self.bits = 0
