"""Thread-scheduler interleaving as an environmental input.

"A race condition is non-deterministic because of the different times a
clock interrupt is delivered to the thread scheduler" (Section 3).  The
scheduler models exactly that: the *interleaving* of an execution is a
deterministic function of the scheduler's seed, and retrying after an
environment change draws a fresh seed -- which is why races are
environment-dependent-transient.
"""

from __future__ import annotations

import random

from repro.rng import derive_seed, make_rng


class ThreadScheduler:
    """Deterministic interleaving source.

    Args:
        seed: the interleaving seed; runs with equal seeds interleave
            identically.
    """

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._rng = make_rng(seed, "scheduler")
        self._labelled_rngs: dict[str, random.Random] = {}
        self.context_switches = 0

    @property
    def seed(self) -> int:
        """The current interleaving seed."""
        return self._seed

    def reseed(self, seed: int) -> None:
        """Start a fresh interleaving (the environment changed)."""
        self._seed = seed
        self._rng = make_rng(seed, "scheduler")
        self._labelled_rngs = {}
        self.context_switches = 0

    def _rng_for(self, label: str | None) -> random.Random:
        """The draw stream for ``label`` (None = the shared legacy stream).

        Labelled streams are derived from ``(seed, label)`` so consumers
        that name themselves never perturb each other's draws; they are
        dropped on :meth:`reseed` so every fresh interleaving re-derives.
        """
        if label is None:
            return self._rng
        rng = self._labelled_rngs.get(label)
        if rng is None:
            rng = make_rng(derive_seed(self._seed, label), "scheduler")
            self._labelled_rngs[label] = rng
        return rng

    def pick(self, runnable: list[str]) -> str:
        """Pick the next thread to run from ``runnable``.

        Raises:
            ValueError: if ``runnable`` is empty.
        """
        if not runnable:
            raise ValueError("no runnable threads")
        self.context_switches += 1
        return runnable[self._rng.randrange(len(runnable))]

    def race_fires(self, window: float, label: str | None = None) -> bool:
        """Whether a racy window of width ``window`` is hit this run.

        Args:
            window: probability in [0, 1] that the bad interleaving
                occurs under a uniformly random schedule.
            label: optional stream label.  ``None`` draws from the shared
                scheduler stream (the single-defect legacy behaviour); a
                label draws from an independent stream derived from
                ``(seed, label)`` so multiple armed defects never consume
                each other's draws.

        Returns:
            True when this interleaving lands inside the window.  The
            answer is deterministic for a given seed and draw sequence.
        """
        if not 0.0 <= window <= 1.0:
            raise ValueError("window must be within [0, 1]")
        self.context_switches += 1
        return self._rng_for(label).random() < window

    def interleave(self, threads: dict[str, list[str]]) -> list[tuple[str, str]]:
        """Produce one full interleaving of per-thread operation lists.

        Args:
            threads: mapping thread name -> ordered operations.

        Returns:
            A list of (thread, operation) pairs covering every operation,
            in scheduler order.
        """
        remaining = {name: list(ops) for name, ops in threads.items() if ops}
        order: list[tuple[str, str]] = []
        while remaining:
            name = self.pick(sorted(remaining))
            ops = remaining[name]
            order.append((name, ops.pop(0)))
            if not ops:
                del remaining[name]
        return order
