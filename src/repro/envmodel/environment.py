"""The aggregate operating environment.

One :class:`Environment` instance bundles everything Section 3 names as
"outside the application": kernel resource tables, the disk, the DNS
server, the network, the thread scheduler, the entropy pool, the
machine's identity, and virtual time.  Mini applications hold a
reference to one and draw all their resources from it; recovery
techniques perturb it between retries.
"""

from __future__ import annotations

import dataclasses

from repro.envmodel.clock import SimulationClock
from repro.envmodel.dns import DnsServer
from repro.envmodel.events import EventQueue
from repro.envmodel.network import Network
from repro.envmodel.resources import BoundedResource, DiskVolume, EntropyPool
from repro.envmodel.scheduler import ThreadScheduler
from repro.rng import DEFAULT_SEED, derive_seed


@dataclasses.dataclass
class EnvironmentSpec:
    """Sizing for a fresh environment (a small 1999-era server box)."""

    file_descriptors: int = 256
    process_slots: int = 128
    network_ports: int = 64
    disk_capacity_bytes: int = 64 * 1024 * 1024
    max_file_bytes: int = 16 * 1024 * 1024
    disk_cache_bytes: int = 8 * 1024 * 1024
    entropy_bits: int = 2048


class Environment:
    """The operating environment of one machine.

    Args:
        seed: deterministic seed for timing-dependent components.
        spec: resource sizing.
    """

    def __init__(self, *, seed: int = DEFAULT_SEED, spec: EnvironmentSpec | None = None):
        self.seed = seed
        self.spec = spec or EnvironmentSpec()
        self.clock = SimulationClock()
        self.events = EventQueue(self.clock)
        self.scheduler = ThreadScheduler(derive_seed(seed, "interleaving:0"))
        self._retry_count = 0

        self.hostname = "server.example.com"
        self.file_descriptors = BoundedResource("file_descriptors", self.spec.file_descriptors)
        self.process_table = BoundedResource("process_slots", self.spec.process_slots)
        self.ports = BoundedResource("network_ports", self.spec.network_ports)
        self.disk = DiskVolume(self.spec.disk_capacity_bytes, max_file_bytes=self.spec.max_file_bytes)
        self.disk_cache = DiskVolume(self.spec.disk_cache_bytes)
        self.entropy = EntropyPool(self.spec.entropy_bits)
        self.dns = DnsServer()
        self.network = Network()

    def change_hostname(self, new_hostname: str) -> None:
        """Change the machine's name while applications run (GNOME trigger)."""
        self.hostname = new_hostname

    def reseed_scheduler(self) -> None:
        """Draw a fresh thread interleaving (time has passed; interrupts differ)."""
        self._retry_count += 1
        self.scheduler.reseed(derive_seed(self.seed, f"interleaving:{self._retry_count}"))

    def resource(self, name: str) -> BoundedResource:
        """Look up a countable resource by its name.

        Raises:
            KeyError: for unknown resource names.
        """
        resources = {
            "file_descriptors": self.file_descriptors,
            "process_slots": self.process_table,
            "network_ports": self.ports,
            "network_buffers": self.network.buffers,
        }
        return resources[name]
