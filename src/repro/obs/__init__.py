"""repro.obs: unified tracing, metrics, and profiling.

PRs 1-3 gave the reproduction three execution layers -- the harness
campaign pool, the sharded parse/mine pipeline, and the study-graph
wave scheduler -- each with ad-hoc telemetry that could not be
correlated.  This package is the one observability layer they all
report into:

* :mod:`~repro.obs.span` -- hierarchical trace spans (``span(name,
  **attrs)``) with monotonic timestamps, parent/child ids, and
  cross-process propagation: a dispatcher's span context travels to
  forked pool workers, whose spans ship back parented under the
  dispatching wave;
* :mod:`~repro.obs.metrics` -- :class:`MetricsRegistry`, the
  counters/timers/gauges registry that absorbed
  ``repro.harness.telemetry.Telemetry``, with deterministic
  (shard-keyed) gauge merges;
* :mod:`~repro.obs.sinks` -- pluggable span sinks: in-memory for tests,
  crash-safe JSONL for ``repro study run --trace``;
* :mod:`~repro.obs.chrome` -- Chrome ``trace_event`` export, loadable
  in ``chrome://tracing`` / Perfetto;
* :mod:`~repro.obs.summary` -- wall-time attribution for ``repro trace
  summary``;
* :mod:`~repro.obs.flame` -- folded stacks, ASCII icicles, and
  speedscope export (``repro trace summary --flame`` / ``repro trace
  export --format folded|speedscope``);
* :mod:`~repro.obs.perfdb` -- the append-only JSONL perf history with
  rolling-baseline regression gating (``repro perf record|report|check``);
* :mod:`~repro.obs.livestatus` -- atomic heartbeat snapshots and the
  ``repro study watch`` renderer for live run monitoring;
* :mod:`~repro.obs.hist` -- the deterministic log-linear
  :class:`Histogram` shared by the serve metrics exposition, the
  closed-loop load generator, and the SLO checker, plus the
  Prometheus-style text exposition reader/writer;
* :mod:`~repro.obs.resources` -- the background ``/proc`` resource
  sampler (:class:`ResourceSampler`) whose span-attributed RSS/CPU/IO
  samples travel the same trace channel spans do;
* :mod:`~repro.obs.slo` -- declarative service-level objectives
  evaluated offline from exposition text, perf history, and traces
  (``repro slo check``).

**Zero overhead by default**: with no tracer installed, :func:`span`
returns a shared no-op object and :func:`current_context` returns None;
instrumented hot paths pay one module-global check.  The studygraph
benchmark asserts < 5% wall-time overhead with tracing *enabled*.

Layering: this package imports nothing from the rest of ``repro``, so
every other subsystem may instrument itself freely.
"""

from repro.obs.chrome import chrome_trace
from repro.obs.hist import (
    Histogram,
    bucket_percentile,
    exposition_buckets,
    exposition_value,
    histogram_lines,
    parse_exposition,
)
from repro.obs.flame import (
    ORPHAN_FRAME,
    fold_stacks,
    format_folded,
    parse_folded,
    render_icicle,
    speedscope_document,
)
from repro.obs.livestatus import (
    RunMonitor,
    eta_seconds,
    healthz_view,
    read_snapshot,
    render_watch_line,
    write_snapshot,
)
from repro.obs.metrics import LOCAL_SHARD, MetricsRegistry, TimerStats
from repro.obs.perfdb import (
    NodePerf,
    PerfDB,
    PerfRecord,
    Regression,
    check_regressions,
    family_medians,
    grid_family,
    node_medians,
    record_from_trace,
    throughput_counters,
    throughput_record,
)
from repro.obs.resources import (
    RESOURCE_KIND,
    ResourceSample,
    ResourceSampler,
    ResourceUsage,
    active_sampler,
    is_resource_record,
    proc_available,
    resource_records,
    rss_series_by_span,
    sampling_enabled,
    usage_by_phase,
    usage_by_span_name,
)
from repro.obs.sinks import JsonlSink, MemorySink, NullSink, read_trace
from repro.obs.slo import (
    Objective,
    SloResult,
    default_objectives,
    evaluate_objectives,
    load_objectives,
)
from repro.obs.span import (
    Span,
    Tracer,
    active_tracer,
    capture,
    current_context,
    ingest,
    install,
    span,
    tracing,
    uninstall,
)
from repro.obs.summary import (
    ORPHAN_PHASE,
    NameStats,
    SelfTimeStats,
    TraceSummary,
    summarize_trace,
)

__all__ = [
    "Histogram",
    "JsonlSink",
    "LOCAL_SHARD",
    "MemorySink",
    "MetricsRegistry",
    "NameStats",
    "NodePerf",
    "NullSink",
    "Objective",
    "ORPHAN_FRAME",
    "ORPHAN_PHASE",
    "PerfDB",
    "PerfRecord",
    "RESOURCE_KIND",
    "Regression",
    "ResourceSample",
    "ResourceSampler",
    "ResourceUsage",
    "RunMonitor",
    "SelfTimeStats",
    "SloResult",
    "Span",
    "TimerStats",
    "TraceSummary",
    "Tracer",
    "active_sampler",
    "active_tracer",
    "bucket_percentile",
    "capture",
    "check_regressions",
    "chrome_trace",
    "current_context",
    "default_objectives",
    "eta_seconds",
    "evaluate_objectives",
    "exposition_buckets",
    "exposition_value",
    "family_medians",
    "fold_stacks",
    "format_folded",
    "grid_family",
    "healthz_view",
    "histogram_lines",
    "ingest",
    "install",
    "is_resource_record",
    "load_objectives",
    "node_medians",
    "parse_exposition",
    "parse_folded",
    "proc_available",
    "read_snapshot",
    "read_trace",
    "record_from_trace",
    "render_icicle",
    "render_watch_line",
    "resource_records",
    "rss_series_by_span",
    "sampling_enabled",
    "span",
    "speedscope_document",
    "summarize_trace",
    "throughput_counters",
    "throughput_record",
    "tracing",
    "uninstall",
    "usage_by_phase",
    "usage_by_span_name",
    "write_snapshot",
]
