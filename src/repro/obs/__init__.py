"""repro.obs: unified tracing, metrics, and profiling.

PRs 1-3 gave the reproduction three execution layers -- the harness
campaign pool, the sharded parse/mine pipeline, and the study-graph
wave scheduler -- each with ad-hoc telemetry that could not be
correlated.  This package is the one observability layer they all
report into:

* :mod:`~repro.obs.span` -- hierarchical trace spans (``span(name,
  **attrs)``) with monotonic timestamps, parent/child ids, and
  cross-process propagation: a dispatcher's span context travels to
  forked pool workers, whose spans ship back parented under the
  dispatching wave;
* :mod:`~repro.obs.metrics` -- :class:`MetricsRegistry`, the
  counters/timers/gauges registry that absorbed
  ``repro.harness.telemetry.Telemetry``, with deterministic
  (shard-keyed) gauge merges;
* :mod:`~repro.obs.sinks` -- pluggable span sinks: in-memory for tests,
  crash-safe JSONL for ``repro study run --trace``;
* :mod:`~repro.obs.chrome` -- Chrome ``trace_event`` export, loadable
  in ``chrome://tracing`` / Perfetto;
* :mod:`~repro.obs.summary` -- wall-time attribution for ``repro trace
  summary``;
* :mod:`~repro.obs.flame` -- folded stacks, ASCII icicles, and
  speedscope export (``repro trace summary --flame`` / ``repro trace
  export --format folded|speedscope``);
* :mod:`~repro.obs.perfdb` -- the append-only JSONL perf history with
  rolling-baseline regression gating (``repro perf record|report|check``);
* :mod:`~repro.obs.livestatus` -- atomic heartbeat snapshots and the
  ``repro study watch`` renderer for live run monitoring.

**Zero overhead by default**: with no tracer installed, :func:`span`
returns a shared no-op object and :func:`current_context` returns None;
instrumented hot paths pay one module-global check.  The studygraph
benchmark asserts < 5% wall-time overhead with tracing *enabled*.

Layering: this package imports nothing from the rest of ``repro``, so
every other subsystem may instrument itself freely.
"""

from repro.obs.chrome import chrome_trace
from repro.obs.flame import (
    ORPHAN_FRAME,
    fold_stacks,
    format_folded,
    parse_folded,
    render_icicle,
    speedscope_document,
)
from repro.obs.livestatus import (
    RunMonitor,
    eta_seconds,
    healthz_view,
    read_snapshot,
    render_watch_line,
    write_snapshot,
)
from repro.obs.metrics import LOCAL_SHARD, MetricsRegistry, TimerStats
from repro.obs.perfdb import (
    NodePerf,
    PerfDB,
    PerfRecord,
    Regression,
    check_regressions,
    family_medians,
    grid_family,
    node_medians,
    record_from_trace,
    throughput_counters,
    throughput_record,
)
from repro.obs.sinks import JsonlSink, MemorySink, NullSink, read_trace
from repro.obs.span import (
    Span,
    Tracer,
    active_tracer,
    capture,
    current_context,
    ingest,
    install,
    span,
    tracing,
    uninstall,
)
from repro.obs.summary import (
    ORPHAN_PHASE,
    NameStats,
    TraceSummary,
    summarize_trace,
)

__all__ = [
    "JsonlSink",
    "LOCAL_SHARD",
    "MemorySink",
    "MetricsRegistry",
    "NameStats",
    "NodePerf",
    "NullSink",
    "ORPHAN_FRAME",
    "ORPHAN_PHASE",
    "PerfDB",
    "PerfRecord",
    "Regression",
    "RunMonitor",
    "Span",
    "TimerStats",
    "TraceSummary",
    "Tracer",
    "active_tracer",
    "capture",
    "check_regressions",
    "chrome_trace",
    "current_context",
    "eta_seconds",
    "family_medians",
    "fold_stacks",
    "format_folded",
    "grid_family",
    "healthz_view",
    "ingest",
    "install",
    "node_medians",
    "parse_folded",
    "read_snapshot",
    "read_trace",
    "record_from_trace",
    "render_icicle",
    "render_watch_line",
    "span",
    "speedscope_document",
    "summarize_trace",
    "throughput_counters",
    "throughput_record",
    "tracing",
    "uninstall",
    "write_snapshot",
]
