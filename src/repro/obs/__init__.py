"""repro.obs: unified tracing, metrics, and profiling.

PRs 1-3 gave the reproduction three execution layers -- the harness
campaign pool, the sharded parse/mine pipeline, and the study-graph
wave scheduler -- each with ad-hoc telemetry that could not be
correlated.  This package is the one observability layer they all
report into:

* :mod:`~repro.obs.span` -- hierarchical trace spans (``span(name,
  **attrs)``) with monotonic timestamps, parent/child ids, and
  cross-process propagation: a dispatcher's span context travels to
  forked pool workers, whose spans ship back parented under the
  dispatching wave;
* :mod:`~repro.obs.metrics` -- :class:`MetricsRegistry`, the
  counters/timers/gauges registry that absorbed
  ``repro.harness.telemetry.Telemetry``, with deterministic
  (shard-keyed) gauge merges;
* :mod:`~repro.obs.sinks` -- pluggable span sinks: in-memory for tests,
  crash-safe JSONL for ``repro study run --trace``;
* :mod:`~repro.obs.chrome` -- Chrome ``trace_event`` export, loadable
  in ``chrome://tracing`` / Perfetto;
* :mod:`~repro.obs.summary` -- wall-time attribution for ``repro trace
  summary``.

**Zero overhead by default**: with no tracer installed, :func:`span`
returns a shared no-op object and :func:`current_context` returns None;
instrumented hot paths pay one module-global check.  The studygraph
benchmark asserts < 5% wall-time overhead with tracing *enabled*.

Layering: this package imports nothing from the rest of ``repro``, so
every other subsystem may instrument itself freely.
"""

from repro.obs.chrome import chrome_trace
from repro.obs.metrics import LOCAL_SHARD, MetricsRegistry, TimerStats
from repro.obs.sinks import JsonlSink, MemorySink, NullSink, read_trace
from repro.obs.span import (
    Span,
    Tracer,
    active_tracer,
    capture,
    current_context,
    ingest,
    install,
    span,
    tracing,
    uninstall,
)
from repro.obs.summary import NameStats, TraceSummary, summarize_trace

__all__ = [
    "JsonlSink",
    "LOCAL_SHARD",
    "MemorySink",
    "MetricsRegistry",
    "NameStats",
    "NullSink",
    "Span",
    "TimerStats",
    "TraceSummary",
    "Tracer",
    "active_tracer",
    "capture",
    "chrome_trace",
    "current_context",
    "ingest",
    "install",
    "read_trace",
    "span",
    "summarize_trace",
    "tracing",
    "uninstall",
]
