"""Hierarchical trace spans with cross-process propagation.

One ambient :class:`Tracer` per process (installed with
:func:`install` / :func:`tracing`) turns :func:`span` calls into timed,
parent-linked records.  When no tracer is installed -- the default --
:func:`span` returns a shared no-op object and :func:`current_context`
returns None, so instrumented hot paths cost one module-global check.

Timestamps are ``time.monotonic()``.  On Linux that is CLOCK_MONOTONIC,
which is system-wide, so spans recorded in forked pool workers are
directly comparable with the parent's -- the Chrome exporter relies on
this to draw one coherent timeline across processes.

Cross-process propagation: the dispatching side captures
:func:`current_context` (trace id + active span id) and serialises it
with the work it ships to a worker.  The worker wraps execution in
:func:`capture`, which (a) parents new spans under the dispatcher's span
id and (b) buffers finished records in memory instead of writing to the
fork-inherited sink.  The buffered records travel back in the worker's
result and the dispatcher feeds them to the real sink with
:func:`ingest` -- so a trace file has exactly one writer process, and
worker-side spans still carry parent ids that link them under the
dispatching span.

Span ids embed the recording pid plus a per-process counter, so ids
never collide across forked workers.

Thread re-entrancy: the active-span stack is *per thread*, so
concurrent request threads (the ``repro serve`` daemon) each build
their own parent chain instead of interleaving into one corrupted
stack.  A forked worker continues the forking thread, so cross-process
propagation through :func:`capture` is unaffected.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import threading
import time
import uuid
from typing import Any, Iterator

from repro.obs.sinks import MemorySink, NullSink

#: Serialized span context: {"trace_id": str, "span_id": str | None}.
SpanContext = dict[str, Any]

_ACTIVE: "Tracer | None" = None


class Span:
    """One live span; becomes a record when its ``with`` block exits."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "attrs", "start", "end")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = tracer._new_span_id()
        self.parent_id: str | None = None
        self.start = 0.0
        self.end = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the live span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self.parent_id = self._tracer._current_span_id()
        self._tracer._push(self.span_id, self.name)
        self.start = time.monotonic()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.end = time.monotonic()
        self._tracer._pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._emit(self.to_record())
        return False

    def to_record(self) -> dict[str, Any]:
        """The JSON-serialisable span record handed to sinks."""
        record = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self._tracer.trace_id,
            "start": self.start,
            "end": self.end,
            "pid": os.getpid(),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class _NoopSpan:
    """Shared do-nothing span for the disabled-tracing path."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


_NOOP = _NoopSpan()


class Tracer:
    """Per-process span factory, stack, and sink.

    Args:
        sink: destination for finished span records (defaults to a
            :class:`~repro.obs.sinks.NullSink`).
        trace_id: run identity stamped on every record; generated when
            omitted, inherited from the dispatcher inside
            :meth:`capture`.
    """

    def __init__(self, sink: Any = None, *, trace_id: str | None = None) -> None:
        self.trace_id = trace_id if trace_id is not None else uuid.uuid4().hex[:16]
        self._sinks: list[Any] = [sink if sink is not None else NullSink()]
        self._local = threading.local()
        self._ids = itertools.count(1)
        # Open-span registry: thread id -> that thread's live stack (the
        # same list object _stack() mutates).  Lets a *different* thread
        # -- the resource sampler -- read which span is currently open
        # without touching thread-locals it cannot reach.  Entries are
        # removed when a stack drains, so long-lived multi-threaded
        # processes (the serve daemon) do not accumulate dead threads.
        self._open_stacks: dict[int, list[tuple[str, str]]] = {}

    # -- span bookkeeping ---------------------------------------------- #

    def _stack(self) -> list[tuple[str, str]]:
        # Per-thread active-span stack of (span_id, name): concurrent
        # request threads each keep their own parent chain.  Created
        # lazily per thread.
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _new_span_id(self) -> str:
        # pid-qualified so ids from forked workers never collide; the
        # counter increment is atomic under the GIL.
        return f"{os.getpid():x}-{next(self._ids):x}"

    def _current_span_id(self) -> str | None:
        stack = self._stack()
        return stack[-1][0] if stack else None

    def _push(self, span_id: str, name: str = "") -> None:
        stack = self._stack()
        stack.append((span_id, name))
        self._open_stacks[threading.get_ident()] = stack

    def _pop(self) -> None:
        stack = self._stack()
        stack.pop()
        if not stack:
            self._open_stacks.pop(threading.get_ident(), None)

    def deepest_open_span(self) -> tuple[str, str] | None:
        """The ``(span_id, name)`` of the deepest currently-open span.

        Across threads, the deepest stack wins (a worker process runs
        one unit at a time, so this is exact there; in a multi-threaded
        server it is a best-effort attribution).  Safe to call from any
        thread -- a stack mutating concurrently is re-read, never
        crashed on.
        """
        deepest: list[tuple[str, str]] | None = None
        for stack in list(self._open_stacks.values()):
            if stack and (deepest is None or len(stack) > len(deepest)):
                deepest = stack
        if not deepest:
            return None
        try:
            return deepest[-1]
        except IndexError:  # drained between the check and the read
            return None

    def _emit(self, record: dict[str, Any]) -> None:
        self._sinks[-1].emit(record)

    # -- public API ---------------------------------------------------- #

    def span(self, name: str, **attrs: Any) -> Span:
        """A new span, parented under the currently active span."""
        return Span(self, name, attrs)

    def current_context(self) -> SpanContext:
        """The serialisable context a dispatcher ships with its work."""
        return {"trace_id": self.trace_id, "span_id": self._current_span_id()}

    @contextlib.contextmanager
    def capture(
        self, parent: SpanContext | None = None
    ) -> Iterator[list[dict[str, Any]]]:
        """Buffer finished spans instead of sinking them.

        Used on the worker side of a process boundary: spans opened
        inside the block parent under ``parent`` (the dispatcher's
        context) and their records accumulate in the yielded list, to be
        shipped back and :meth:`ingest`-ed by the dispatcher.  Nested
        captures (a node producer running an inline campaign) stack.
        """
        buffer = MemorySink()
        self._sinks.append(buffer)
        adopted = parent is not None and parent.get("span_id") is not None
        previous_trace = self.trace_id
        if adopted:
            self._push(parent["span_id"], "")
            self.trace_id = parent.get("trace_id", previous_trace)
        try:
            yield buffer.records
        finally:
            self._sinks.pop()
            if adopted:
                self._pop()
                self.trace_id = previous_trace

    def ingest(self, records: Any) -> None:
        """Write already-finished records (a worker's capture) to the sink."""
        for record in records:
            self._emit(record)

    def close(self) -> None:
        """Close the root sink."""
        self._sinks[0].close()


# -- ambient tracer ---------------------------------------------------- #


def install(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the process's ambient tracer (returns it)."""
    global _ACTIVE
    _ACTIVE = tracer
    return tracer


def uninstall() -> None:
    """Remove the ambient tracer (spans become no-ops again)."""
    global _ACTIVE
    _ACTIVE = None


def active_tracer() -> Tracer | None:
    """The ambient tracer, or None when tracing is disabled."""
    return _ACTIVE


def span(name: str, **attrs: Any) -> Any:
    """A span under the ambient tracer, or a shared no-op when disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP
    return tracer.span(name, **attrs)


def deepest_open_span() -> tuple[str, str] | None:
    """The ambient tracer's deepest open ``(span_id, name)``, or None.

    The resource sampler's attribution hook: callable from any thread,
    returns None when tracing is disabled or nothing is open.
    """
    tracer = _ACTIVE
    if tracer is None:
        return None
    return tracer.deepest_open_span()


def current_context() -> SpanContext | None:
    """The ambient tracer's dispatch context, or None when disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return None
    return tracer.current_context()


@contextlib.contextmanager
def capture(parent: SpanContext | None) -> Iterator[Any]:
    """Worker-side capture under the ambient tracer.

    Yields the growing record list, or an empty tuple when tracing is
    disabled (callers can always ``tuple()`` the yielded value).
    """
    tracer = _ACTIVE
    if tracer is None:
        yield ()
        return
    with tracer.capture(parent) as records:
        yield records


def ingest(records: Any) -> None:
    """Feed shipped-back worker records to the ambient tracer's sink."""
    tracer = _ACTIVE
    if tracer is not None and records:
        tracer.ingest(records)


@contextlib.contextmanager
def tracing(sink_or_path: Any) -> Iterator[Tracer]:
    """Install a tracer for the block; close its sink on the way out.

    Args:
        sink_or_path: a sink object, or a filesystem path that becomes a
            :class:`~repro.obs.sinks.JsonlSink`.
    """
    global _ACTIVE
    from repro.obs.sinks import JsonlSink

    if isinstance(sink_or_path, (str, os.PathLike)):
        sink = JsonlSink(sink_or_path)
    else:
        sink = sink_or_path
    previous = _ACTIVE
    tracer = Tracer(sink)
    install(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE = previous
        tracer.close()
