"""Chrome ``trace_event`` export: open a study run in Perfetto.

:func:`chrome_trace` converts span records (the JSONL trace format) into
the Trace Event JSON object format understood by ``chrome://tracing``
and https://ui.perfetto.dev: one complete (``"ph": "X"``) event per
span, microsecond timestamps rebased to the earliest span, one track per
recording process.  Because span timestamps are CLOCK_MONOTONIC --
system-wide on Linux -- parent and forked-worker spans land on one
coherent timeline.
"""

from __future__ import annotations

from typing import Any, Iterable


def _microseconds(seconds: float) -> float:
    return round(seconds * 1_000_000, 3)


def chrome_trace(records: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Span records -> Chrome Trace Event Format (JSON object form).

    Events are sorted by timestamp; ``ts`` is rebased so the earliest
    span starts at 0 and every ``dur`` is non-negative.  Span ids,
    parent ids, and attributes ride along in ``args`` so the original
    hierarchy stays inspectable in the UI.
    """
    spans = [r for r in records if "start" in r and "end" in r]
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    epoch = min(r["start"] for r in spans)
    events: list[dict[str, Any]] = []
    pids = []
    for record in spans:
        pid = record.get("pid", 0)
        if pid not in pids:
            pids.append(pid)
        args = dict(record.get("attrs", {}))
        args["span_id"] = record.get("span_id")
        if record.get("parent_id"):
            args["parent_id"] = record["parent_id"]
        name = record.get("name", "span")
        events.append(
            {
                "name": name,
                "cat": name.split(":", 1)[0],
                "ph": "X",
                "ts": _microseconds(record["start"] - epoch),
                "dur": _microseconds(max(0.0, record["end"] - record["start"])),
                "pid": pid,
                "tid": pid,
                "args": args,
            }
        )
    events.sort(key=lambda event: (event["ts"], -event["dur"]))

    # The dispatching process is the one that recorded the earliest span.
    main_pid = pids and min(
        (r["start"], r.get("pid", 0)) for r in spans
    )[1]
    for pid in sorted(pids):
        label = "repro (main)" if pid == main_pid else f"repro worker {pid}"
        events.insert(
            0,
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": pid,
                "args": {"name": label},
            },
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
