"""Declarative service-level objectives, evaluated offline.

The observability stack now measures three things no single component
judges: request latency (the serve exposition), per-node resource cost
(the perf history), and in-run RSS behaviour (sampler records in a
trace).  This module is the judge: an :class:`Objective` declares a
bound, :func:`evaluate_objectives` checks every objective against
whatever evidence sources are on hand, and ``repro slo check`` turns
the verdicts into a CI gate.

Three design points, all deliberate:

* **Offline, from artifacts.**  Evaluation reads a scraped exposition
  text, a perfdb JSONL, and/or a trace file -- never a live daemon --
  so the same check runs in CI, post-hoc on archived runs, and locally.
* **Three-valued verdicts.**  ``ok`` / ``violated`` / ``no-data``: an
  objective whose evidence source is absent reports ``no-data`` rather
  than passing silently or failing spuriously.  The CLI only fails on
  ``violated``.
* **Same math as the source.**  Latency percentiles are recomputed from
  exposition buckets with :func:`~repro.obs.hist.bucket_percentile`,
  bit-identical to what the live histogram would answer -- the SLO
  checker can never disagree with the daemon about its own p99.

The fault-study connection: the paper's recovery argument rests on
resource exhaustion (leaks, runaway retries) being *observable before
it is fatal*.  The ``rss-growth`` objective encodes exactly that lens
-- a span family whose sampled RSS series grows monotonically through
the run is flagged as a leak suspect.

Layering: imports only sibling ``repro.obs`` modules (the package
contract -- nothing from the rest of ``repro``).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.obs.hist import (
    bucket_percentile,
    exposition_buckets,
    exposition_value,
    parse_exposition,
)
from repro.obs.perfdb import PerfRecord, grid_family
from repro.obs.resources import rss_series_by_span

__all__ = [
    "Objective",
    "SloResult",
    "STATUS_NO_DATA",
    "STATUS_OK",
    "STATUS_VIOLATED",
    "default_objectives",
    "evaluate_objectives",
    "load_objectives",
]

STATUS_OK = "ok"
STATUS_VIOLATED = "violated"
STATUS_NO_DATA = "no-data"

#: Objective kinds understood by :func:`evaluate_objectives`.
KIND_LATENCY = "latency"
KIND_ERROR_BUDGET = "error-budget"
KIND_REJECTION_BUDGET = "rejection-budget"
KIND_PEAK_RSS = "peak-rss"
KIND_RSS_GROWTH = "rss-growth"

_KINDS = (
    KIND_LATENCY,
    KIND_ERROR_BUDGET,
    KIND_REJECTION_BUDGET,
    KIND_PEAK_RSS,
    KIND_RSS_GROWTH,
)


@dataclasses.dataclass(frozen=True)
class Objective:
    """One declared objective.

    Attributes:
        name: display name (unique within a set).
        kind: one of the ``KIND_*`` constants.
        threshold: the bound (seconds, a fraction, or bytes -- see the
            per-kind evaluators).
        target: what the objective applies to: a request kind for
            ``latency``, a node or grid-family name for ``peak-rss``, a
            span-name prefix for ``rss-growth``; unused by the budget
            kinds.
        fraction: the percentile for ``latency`` (default p99); the
            minimum sample count for ``rss-growth`` (as a float).
    """

    name: str
    kind: str
    threshold: float
    target: str = ""
    fraction: float = 0.99

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown objective kind {self.kind!r}; known: " + ", ".join(_KINDS)
            )
        if self.threshold < 0:
            raise ValueError("objective threshold must be non-negative")

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "threshold": self.threshold,
            "target": self.target,
            "fraction": self.fraction,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Objective":
        return cls(
            name=str(data.get("name", "")) or str(data.get("kind", "?")),
            kind=str(data.get("kind", "")),
            threshold=float(data.get("threshold", 0.0)),
            target=str(data.get("target", "")),
            fraction=float(data.get("fraction", 0.99)),
        )


@dataclasses.dataclass(frozen=True)
class SloResult:
    """One objective's verdict.

    Attributes:
        objective: the evaluated objective.
        status: ``ok`` / ``violated`` / ``no-data``.
        observed: the measured value (None for ``no-data``).
        detail: one human-readable line of evidence.
    """

    objective: Objective
    status: str
    observed: float | None
    detail: str

    @property
    def violated(self) -> bool:
        return self.status == STATUS_VIOLATED

    def row(self) -> list[Any]:
        """``[name, kind, status, observed, threshold, detail]``."""
        return [
            self.objective.name,
            self.objective.kind,
            self.status,
            "-" if self.observed is None else f"{self.observed:.6g}",
            f"{self.objective.threshold:.6g}",
            self.detail,
        ]


def default_objectives() -> list[Objective]:
    """The stock objective set ``repro slo check`` evaluates.

    Bounds are deliberately loose -- they exist to catch order-of-
    magnitude regressions (a leak, a stall, a runaway node), not to
    enforce performance tuning; tighten per-deployment with a JSON
    objectives file.
    """
    return [
        Objective(
            name="serve-study-p99",
            kind=KIND_LATENCY,
            target="study",
            fraction=0.99,
            threshold=30.0,
        ),
        Objective(
            name="serve-error-budget",
            kind=KIND_ERROR_BUDGET,
            threshold=0.05,
        ),
        Objective(
            name="serve-rejection-budget",
            kind=KIND_REJECTION_BUDGET,
            threshold=0.25,
        ),
        Objective(
            name="campaign-peak-rss",
            kind=KIND_PEAK_RSS,
            target="",  # any node
            threshold=2 * 1024 ** 3,
        ),
        Objective(
            name="span-rss-leak",
            kind=KIND_RSS_GROWTH,
            target="",  # any span family
            threshold=32 * 1024 * 1024,
            fraction=4,  # minimum samples before a series can be judged
        ),
    ]


def load_objectives(path: str | Path) -> list[Objective]:
    """Objectives from a JSON file: a list of objective objects.

    Raises:
        ValueError: the file is not a JSON list or an entry is invalid.
    """
    with open(path, "r", encoding="utf-8") as stream:
        data = json.load(stream)
    if not isinstance(data, list):
        raise ValueError("objectives file must be a JSON list")
    return [Objective.from_dict(entry) for entry in data]


# -- per-kind evaluators -------------------------------------------------- #


def _no_data(objective: Objective, why: str) -> SloResult:
    return SloResult(objective, STATUS_NO_DATA, None, why)


def _verdict(objective: Objective, observed: float, detail: str) -> SloResult:
    status = STATUS_VIOLATED if observed > objective.threshold else STATUS_OK
    return SloResult(objective, status, observed, detail)


def _eval_latency(
    objective: Objective, samples: list[tuple[str, dict[str, str], float]]
) -> SloResult:
    match = {"kind": objective.target} if objective.target else None
    buckets = exposition_buckets(
        samples, "repro_request_latency_seconds", match
    )
    if not buckets or buckets[-1][1] == 0:
        return _no_data(objective, f"no latency samples for kind={objective.target!r}")
    observed = bucket_percentile(buckets, objective.fraction)
    return _verdict(
        objective,
        observed,
        f"p{objective.fraction * 100:g} over {buckets[-1][1]} request(s)",
    )


def _eval_budget(
    objective: Objective,
    samples: list[tuple[str, dict[str, str], float]],
    status_label: str,
) -> SloResult:
    total = exposition_value(samples, "repro_requests_total")
    if not total:
        return _no_data(objective, "no requests recorded")
    bad = exposition_value(
        samples, "repro_requests_total", {"status": status_label}
    ) or 0.0
    observed = bad / total
    return _verdict(
        objective, observed, f"{bad:g} {status_label} of {total:g} request(s)"
    )


def _eval_peak_rss(
    objective: Objective, records: list[PerfRecord]
) -> SloResult:
    """Worst sampled peak RSS among matching nodes in the *latest* run
    that carries resource data (per node, or per grid family)."""
    for record in reversed(records):
        peaks = {
            name: perf.peak_rss_bytes
            for name, perf in record.nodes.items()
            if perf.peak_rss_bytes is not None and _node_matches(name, objective.target)
        }
        if peaks:
            worst = max(peaks, key=lambda name: peaks[name])
            return _verdict(
                objective,
                float(peaks[worst]),
                f"worst node {worst} in run {record.run_id}",
            )
    return _no_data(
        objective, f"no perf record carries peak RSS for {objective.target or 'any node'}"
    )


def _node_matches(name: str, target: str) -> bool:
    if not target:
        return True
    return name == target or grid_family(name) == target


def _eval_rss_growth(
    objective: Objective, trace_records: list[dict[str, Any]]
) -> SloResult:
    """Flag span families whose RSS series grows monotonically.

    A leak looks like: every successive sample's RSS >= the last (small
    jitter tolerated at 1%), total growth over the series above the
    threshold, across at least ``fraction`` samples.  Flat or sawtooth
    series (allocate, free, repeat) pass.
    """
    series = rss_series_by_span(trace_records)
    min_samples = max(2, int(objective.fraction))
    suspects: list[tuple[str, int]] = []
    seen_any = False
    for name, points in series.items():
        if objective.target and not name.startswith(objective.target):
            continue
        if len(points) < min_samples:
            continue
        seen_any = True
        values = [rss for _, rss in points]
        growth = values[-1] - values[0]
        monotonic = all(
            later >= earlier * 0.99
            for earlier, later in zip(values, values[1:])
        )
        if monotonic and growth > objective.threshold:
            suspects.append((name, growth))
    if not seen_any:
        return _no_data(
            objective,
            f"no RSS series with >= {min_samples} samples for "
            f"{objective.target or 'any span'}",
        )
    if not suspects:
        return SloResult(
            objective, STATUS_OK, 0.0, f"{len(series)} series, none growing"
        )
    worst_name, worst_growth = max(suspects, key=lambda item: item[1])
    return SloResult(
        objective,
        STATUS_VIOLATED,
        float(worst_growth),
        f"monotonic growth in {worst_name} "
        f"(+{worst_growth / (1024 * 1024):.1f} MB)"
        + (f" and {len(suspects) - 1} other span(s)" if len(suspects) > 1 else ""),
    )


def evaluate_objectives(
    objectives: Iterable[Objective],
    *,
    exposition_text: str | None = None,
    perf_records: list[PerfRecord] | None = None,
    trace_records: Iterable[dict[str, Any]] | None = None,
) -> list[SloResult]:
    """Judge every objective against the evidence sources provided.

    Objectives whose evidence source was not passed verdict
    ``no-data``; a malformed exposition raises ``ValueError`` (the CI
    scrape check wants parse failures loud, not absorbed).
    """
    samples = parse_exposition(exposition_text) if exposition_text else None
    trace = list(trace_records) if trace_records is not None else None

    results: list[SloResult] = []
    for objective in objectives:
        if objective.kind == KIND_LATENCY:
            results.append(
                _eval_latency(objective, samples)
                if samples is not None
                else _no_data(objective, "no exposition provided")
            )
        elif objective.kind == KIND_ERROR_BUDGET:
            results.append(
                _eval_budget(objective, samples, "error")
                if samples is not None
                else _no_data(objective, "no exposition provided")
            )
        elif objective.kind == KIND_REJECTION_BUDGET:
            results.append(
                _eval_budget(objective, samples, "rejected-busy")
                if samples is not None
                else _no_data(objective, "no exposition provided")
            )
        elif objective.kind == KIND_PEAK_RSS:
            results.append(
                _eval_peak_rss(objective, perf_records)
                if perf_records
                else _no_data(objective, "no perf history provided")
            )
        elif objective.kind == KIND_RSS_GROWTH:
            results.append(
                _eval_rss_growth(objective, trace)
                if trace is not None
                else _no_data(objective, "no trace provided")
            )
    return results
