"""The perf history database: append-only, trace-backed, gated.

Every traced run so far threw its numbers away when the process exited;
this module is where they accrue instead.  A :class:`PerfDB` is one
JSONL file of :class:`PerfRecord`\\ s -- per-node wall seconds, cache
hit/miss counters, and worker counts, keyed by node version tags and
the recording git SHA -- written append-only with one flushed line per
run, so a crashed writer can lose at most its own in-flight record and
:meth:`PerfDB.read` tolerates the truncated tail (the same crash-safety
stance as the harness journal and the JSONL trace sink).

On top of the history sit the two consumers:

* :func:`check_regressions` -- ``repro perf check``'s engine: the
  latest run's per-node wall seconds against the median of a rolling
  baseline window (same node, same version tag, same source), flagging
  anything slower than ``median * (1 + tolerance)``;
* :func:`node_history` / :func:`node_medians` -- the longitudinal view
  ``repro perf report`` renders and ``repro study watch`` uses for
  ETAs.

Longitudinal fault/perf studies (*Faults in Linux 2.6*, the multi-fault
repository analyses) draw their conclusions from trends, not snapshots;
this is the same lens pointed at the reproduction's own performance.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
import json
import os
import statistics
import subprocess
import uuid
from pathlib import Path
from typing import Any, Iterable, Mapping

#: Perf record format version (bump on incompatible shape changes).
PERFDB_VERSION = 1

#: Environment override for the recording git SHA (tests, CI).
GIT_SHA_ENV = "REPRO_GIT_SHA"

#: Node statuses a record can carry.
STATUS_EXECUTED = "executed"  # producer ran; wall measured worker-side
STATUS_CACHED = "cached"  # memo hit; wall is the recorded historical one
STATUS_TRACED = "traced"  # wall taken from a node:* span in a trace
STATUS_BENCH = "benchmark"  # wall is a pytest-benchmark timing


def git_sha() -> str:
    """The recording git SHA: env override, then ``git rev-parse HEAD``.

    Falls back to ``"unknown"`` outside a git checkout -- a perfdb must
    stay usable from an exported tarball.
    """
    override = os.environ.get(GIT_SHA_ENV)
    if override:
        return override
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = probe.stdout.strip()
    return sha if probe.returncode == 0 and sha else "unknown"


def utc_timestamp() -> str:
    """The current UTC time as an ISO-8601 string."""
    return _dt.datetime.now(_dt.timezone.utc).isoformat(timespec="seconds")


def new_run_id() -> str:
    """A fresh 12-hex-digit run id."""
    return uuid.uuid4().hex[:12]


@dataclasses.dataclass(frozen=True)
class NodePerf:
    """One node's timing inside one recorded run.

    Attributes:
        wall_seconds: producer (or benchmark) wall time.
        status: how the number was obtained (see the STATUS_* constants).
        version: the node's version tag at recording time; regression
            checks only compare runs whose tags match.
        peak_rss_bytes: highest RSS the resource sampler attributed to
            this node (None when sampling was off -- the fields are
            optional so old records round-trip unchanged).
        cpu_seconds: CPU time the sampler attributed to this node.
    """

    wall_seconds: float
    status: str = STATUS_EXECUTED
    version: str | None = None
    peak_rss_bytes: int | None = None
    cpu_seconds: float | None = None

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "wall_seconds": round(self.wall_seconds, 6),
            "status": self.status,
        }
        if self.version is not None:
            data["version"] = self.version
        if self.peak_rss_bytes is not None:
            data["peak_rss_bytes"] = int(self.peak_rss_bytes)
        if self.cpu_seconds is not None:
            data["cpu_seconds"] = round(self.cpu_seconds, 6)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NodePerf":
        peak_rss = data.get("peak_rss_bytes")
        cpu = data.get("cpu_seconds")
        return cls(
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            status=str(data.get("status", STATUS_EXECUTED)),
            version=data.get("version"),
            peak_rss_bytes=int(peak_rss) if peak_rss is not None else None,
            cpu_seconds=float(cpu) if cpu is not None else None,
        )


@dataclasses.dataclass(frozen=True)
class PerfRecord:
    """One run's perf snapshot: the unit the history accumulates.

    Attributes:
        run_id: unique id for this record.
        recorded_at: ISO-8601 UTC timestamp.
        git_sha: the recording checkout's HEAD (or ``"unknown"``).
        source: what produced the numbers (``"study-run"``, ``"trace"``,
            ``"benchmark"``); checks never compare across sources.
        workers: worker processes the run used.
        trace_id: the originating trace's id, when there was one.
        nodes: per-node timings.
        counters: run-level counters (cache hits/misses, node counts).
        label: free-form annotation (``--label`` on ``perf record``).
    """

    run_id: str
    recorded_at: str
    git_sha: str
    source: str
    workers: int
    nodes: dict[str, NodePerf]
    counters: dict[str, float] = dataclasses.field(default_factory=dict)
    trace_id: str | None = None
    label: str | None = None

    @classmethod
    def new(
        cls,
        nodes: Mapping[str, NodePerf],
        *,
        source: str,
        workers: int = 1,
        counters: Mapping[str, float] | None = None,
        trace_id: str | None = None,
        label: str | None = None,
        sha: str | None = None,
    ) -> "PerfRecord":
        """A record stamped with a fresh id, timestamp, and git SHA."""
        return cls(
            run_id=new_run_id(),
            recorded_at=utc_timestamp(),
            git_sha=sha if sha is not None else git_sha(),
            source=source,
            workers=workers,
            nodes=dict(nodes),
            counters=dict(counters or {}),
            trace_id=trace_id,
            label=label,
        )

    def total_wall_seconds(self) -> float:
        """Sum of every node's wall seconds in this record."""
        return sum(perf.wall_seconds for perf in self.nodes.values())

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "perfdb_version": PERFDB_VERSION,
            "run_id": self.run_id,
            "recorded_at": self.recorded_at,
            "git_sha": self.git_sha,
            "source": self.source,
            "workers": self.workers,
            "nodes": {
                name: self.nodes[name].to_dict() for name in sorted(self.nodes)
            },
            "counters": {
                name: self.counters[name] for name in sorted(self.counters)
            },
        }
        if self.trace_id is not None:
            data["trace_id"] = self.trace_id
        if self.label is not None:
            data["label"] = self.label
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PerfRecord":
        return cls(
            run_id=str(data.get("run_id", "")),
            recorded_at=str(data.get("recorded_at", "")),
            git_sha=str(data.get("git_sha", "unknown")),
            source=str(data.get("source", "unknown")),
            workers=int(data.get("workers", 1)),
            nodes={
                str(name): NodePerf.from_dict(perf)
                for name, perf in data.get("nodes", {}).items()
                if isinstance(perf, Mapping)
            },
            counters={
                str(name): float(value)
                for name, value in data.get("counters", {}).items()
            },
            trace_id=data.get("trace_id"),
            label=data.get("label"),
        )


class PerfDB:
    """One append-only JSONL perf history file.

    Appends open the file per call in append mode and flush one complete
    line, so concurrent recorders interleave whole records and a crashed
    writer truncates at most its own line -- which :meth:`read` skips.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._cache_key: tuple[int, int] | None = None
        self._cache_records: list[PerfRecord] = []
        self._cache_medians: dict[str, float] | None = None

    def append(self, record: PerfRecord) -> None:
        """Append one record as a single flushed JSON line."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_dict(), separators=(",", ":"), sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as stream:
            stream.write(line + "\n")
            stream.flush()

    def read(self) -> list[PerfRecord]:
        """Every readable record, oldest first.

        A truncated or corrupt tail ends the read without raising;
        records with a different format version are skipped.
        """
        records: list[PerfRecord] = []
        try:
            stream = open(self.path, "r", encoding="utf-8")
        except FileNotFoundError:
            return records
        with stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    break
                if (
                    isinstance(data, dict)
                    and data.get("perfdb_version") == PERFDB_VERSION
                ):
                    records.append(PerfRecord.from_dict(data))
        return records

    def _stat_key(self) -> tuple[int, int]:
        """The file's ``(mtime_ns, size)`` -- the cache validity token."""
        try:
            stat = os.stat(self.path)
        except OSError:
            return (-1, -1)
        return (stat.st_mtime_ns, stat.st_size)

    def read_cached(self) -> list[PerfRecord]:
        """Like :meth:`read`, parsing only when the file changed on disk.

        The parse is cached behind the file's ``(mtime_ns, size)`` pair,
        so repeated consumers -- per-wave scheduler ordering, the
        ``study watch`` refresh loop, ``perf report`` -- re-read a
        thousand-run history only after an actual append.  Callers share
        the cached list and must not mutate it.
        """
        key = self._stat_key()
        if key != self._cache_key:
            self._cache_records = self.read()
            self._cache_medians = None
            self._cache_key = key
        return self._cache_records

    def node_medians(self) -> dict[str, float]:
        """The history's ETA model (see :func:`node_medians`), cached.

        Derived from :meth:`read_cached`, with the median computation
        itself memoized on the same file-state token.  The returned dict
        is shared; callers must not mutate it.
        """
        records = self.read_cached()
        if self._cache_medians is None:
            self._cache_medians = node_medians(records)
        return self._cache_medians

    def runs(self, *, source: str | None = None) -> list[PerfRecord]:
        """Records, optionally restricted to one source."""
        records = self.read()
        if source is None:
            return records
        return [record for record in records if record.source == source]


# -- throughput records --------------------------------------------------- #


def throughput_counters(
    name: str,
    *,
    wall_seconds: float,
    bytes_count: float,
    records_count: float,
) -> dict[str, float]:
    """Throughput counters (`<name>.mb_per_s` etc.) for one ingest span."""
    counters = {
        f"{name}.bytes": float(bytes_count),
        f"{name}.records": float(records_count),
    }
    if wall_seconds > 0:
        counters[f"{name}.mb_per_s"] = bytes_count / (1024 * 1024) / wall_seconds
        counters[f"{name}.reports_per_s"] = records_count / wall_seconds
    return counters


def throughput_record(
    name: str,
    *,
    wall_seconds: float,
    bytes_count: int,
    records_count: int,
    workers: int = 1,
    source: str = "stream",
    status: str = STATUS_EXECUTED,
    version: str | None = None,
    label: str | None = None,
    sha: str | None = None,
    peak_rss_bytes: int | None = None,
    cpu_seconds: float | None = None,
) -> PerfRecord:
    """A :class:`PerfRecord` for one streaming-ingest measurement.

    The direct (no-trace) way the scale benchmark and ``repro mine run
    --max-shard-bytes`` land MB/s and reports/sec in the history: one
    node carrying the wall time, plus throughput counters from
    :func:`throughput_counters`.  ``peak_rss_bytes``/``cpu_seconds``
    land sampler-measured resource cost on the node, so memory
    regressions in streaming ingest are caught longitudinally too.
    """
    return PerfRecord.new(
        {
            name: NodePerf(
                wall_seconds=wall_seconds,
                status=status,
                version=version,
                peak_rss_bytes=peak_rss_bytes,
                cpu_seconds=cpu_seconds,
            )
        },
        source=source,
        workers=workers,
        counters=throughput_counters(
            name,
            wall_seconds=wall_seconds,
            bytes_count=float(bytes_count),
            records_count=float(records_count),
        ),
        label=label,
        sha=sha,
    )


# -- building records from traces --------------------------------------- #


def record_from_trace(
    trace_records: Iterable[dict[str, Any]],
    *,
    versions: Mapping[str, str] | None = None,
    memo_walls: Mapping[str, float] | None = None,
    label: str | None = None,
    sha: str | None = None,
) -> PerfRecord:
    """Build a :class:`PerfRecord` from span records.

    Per-node wall seconds come from ``node:*`` spans (summed across
    repeats); cache hit/miss counters from ``memo:*`` and ``cache:*``
    span attributes; workers and trace id from the root span.
    ``stream:parse:*`` spans (the streaming archive parser) become
    nodes too, and their ``bytes``/``records`` attributes land as
    throughput counters (``<span>.mb_per_s``, ``<span>.reports_per_s``)
    so ingest rates accrue in the history alongside wall times.
    ``memo_walls`` adds nodes the traced run satisfied from the memo
    cache, carrying the historical wall seconds their META entry
    recorded.  ``versions`` stamps each node's version tag so later
    regression checks compare like with like.  When the trace carries
    resource-sample records (``repro.obs.resources``), each node's
    sampler-attributed peak RSS and CPU seconds ride along on its
    :class:`NodePerf`.
    """
    trace_records = list(trace_records)
    spans = [r for r in trace_records if "start" in r and "end" in r]
    versions = dict(versions or {})

    nodes: dict[str, NodePerf] = {}
    counters: dict[str, float] = {}
    workers = 1
    trace_id = None

    roots = [r for r in spans if not r.get("parent_id")]
    if roots:
        root = min(roots, key=lambda r: r["start"])
        trace_id = root.get("trace_id")
        attrs = root.get("attrs", {})
        try:
            workers = int(attrs.get("workers", 1))
        except (TypeError, ValueError):
            workers = 1

    walls: dict[str, float] = {}
    stream_walls: dict[str, float] = {}
    stream_totals: dict[str, dict[str, float]] = {}
    for record in spans:
        name = record.get("name", "")
        seconds = max(0.0, record.get("end", 0.0) - record.get("start", 0.0))
        attrs = record.get("attrs", {})
        if name.startswith("node:"):
            node = name[len("node:"):]
            walls[node] = walls.get(node, 0.0) + seconds
        elif name.startswith("stream:parse:"):
            stream_walls[name] = stream_walls.get(name, 0.0) + seconds
            totals = stream_totals.setdefault(name, {"bytes": 0.0, "records": 0.0})
            for key in ("bytes", "records"):
                try:
                    totals[key] += float(attrs.get(key, 0) or 0)
                except (TypeError, ValueError):
                    pass
        elif name.startswith("memo:"):
            key = "memo.hits" if attrs.get("hit") else "memo.misses"
            counters[key] = counters.get(key, 0) + 1
        elif name.startswith("cache:load"):
            key = "cache.hits" if attrs.get("hit") else "cache.misses"
            counters[key] = counters.get(key, 0) + 1

    resource_usage: dict[str, Any] = {}
    if any(r.get("kind") == "resource" for r in trace_records):
        from repro.obs.resources import usage_by_span_name

        resource_usage = usage_by_span_name(trace_records)

    for node, seconds in walls.items():
        usage = resource_usage.get(f"node:{node}")
        nodes[node] = NodePerf(
            wall_seconds=seconds,
            status=STATUS_TRACED,
            version=versions.get(node),
            peak_rss_bytes=usage.peak_rss_bytes if usage else None,
            cpu_seconds=(
                round(usage.cpu_seconds, 6)
                if usage and usage.cpu_seconds > 0
                else None
            ),
        )
    for name, seconds in stream_walls.items():
        nodes[name] = NodePerf(
            wall_seconds=seconds,
            status=STATUS_TRACED,
            version=versions.get(name),
        )
        totals = stream_totals.get(name, {})
        counters.update(
            throughput_counters(
                name,
                wall_seconds=seconds,
                bytes_count=totals.get("bytes", 0.0),
                records_count=totals.get("records", 0.0),
            )
        )
    for node, seconds in (memo_walls or {}).items():
        if node not in nodes:
            nodes[node] = NodePerf(
                wall_seconds=seconds,
                status=STATUS_CACHED,
                version=versions.get(node),
            )

    return PerfRecord.new(
        nodes,
        source="trace",
        workers=workers,
        counters=counters,
        trace_id=trace_id,
        label=label,
        sha=sha,
    )


# -- history views ------------------------------------------------------- #

#: Statuses whose wall seconds describe an actual fresh execution.
_MEASURED = (STATUS_EXECUTED, STATUS_TRACED, STATUS_BENCH)


def node_history(
    records: Iterable[PerfRecord],
    *,
    version_of: Mapping[str, str] | None = None,
) -> dict[str, list[tuple[PerfRecord, NodePerf]]]:
    """Measured samples per node, oldest first.

    Only fresh executions count -- memo hits replay an old number and
    would flatten any trend.  With ``version_of``, samples whose version
    tag disagrees with the current one are dropped (a version bump
    deliberately resets a node's history).
    """
    history: dict[str, list[tuple[PerfRecord, NodePerf]]] = {}
    for record in records:
        for name, perf in record.nodes.items():
            if perf.status not in _MEASURED:
                continue
            if version_of is not None and perf.version is not None:
                if version_of.get(name, perf.version) != perf.version:
                    continue
            history.setdefault(name, []).append((record, perf))
    return history


def node_medians(records: Iterable[PerfRecord]) -> dict[str, float]:
    """Median measured wall seconds per node (the ETA model)."""
    return {
        name: statistics.median(perf.wall_seconds for _, perf in samples)
        for name, samples in node_history(records).items()
        if samples
    }


def grid_family(name: str) -> str | None:
    """The grid family a node name belongs to, or None.

    Grid points are named ``family[axis=value,...]`` (the studygraph
    naming contract); this is the pure string-side parse, so the obs
    layer can aggregate per-family without importing the graph.
    """
    if name.endswith("]"):
        family, bracket, _ = name.partition("[")
        if bracket and family:
            return family
    return None


def family_medians(medians: Mapping[str, float]) -> dict[str, float]:
    """Per-family median of the per-point medians.

    The fallback ETA model for grid points the history has never seen:
    a fresh point of a 1000-point family is budgeted at its siblings'
    typical cost instead of being treated as unknowable.
    """
    groups: dict[str, list[float]] = {}
    for name, seconds in medians.items():
        family = grid_family(name)
        if family is not None:
            groups.setdefault(family, []).append(seconds)
    return {
        family: statistics.median(values) for family, values in groups.items()
    }


# -- regression gating --------------------------------------------------- #


@dataclasses.dataclass(frozen=True)
class Regression:
    """One node flagged by :func:`check_regressions`.

    Attributes:
        node: the regressed node.
        latest_seconds: the latest run's wall seconds.
        baseline_seconds: the baseline window's median wall seconds.
        ratio: ``latest / baseline`` (>= 1 + tolerance by construction).
        samples: how many baseline runs backed the median.
    """

    node: str
    latest_seconds: float
    baseline_seconds: float
    ratio: float
    samples: int


def check_regressions(
    records: list[PerfRecord],
    *,
    window: int = 3,
    tolerance: float = 0.25,
    min_seconds: float = 0.001,
) -> tuple[PerfRecord | None, list[Regression]]:
    """Gate the latest run against a rolling baseline window.

    The latest record is compared node-by-node against the median wall
    seconds of the (up to) ``window`` most recent *earlier* records from
    the same source.  A node regresses when its latest measured time
    exceeds ``median * (1 + tolerance)``.  Comparisons only happen
    between matching version tags, between measured (non-cached)
    samples, and above ``min_seconds`` -- sub-millisecond producers are
    all scheduling noise.

    Returns:
        ``(latest_record, regressions)``; ``(None, [])`` on an empty
        history, ``(latest, [])`` when there is no baseline yet.
    """
    if not records:
        return None, []
    latest = records[-1]
    baseline_pool = [
        record for record in records[:-1] if record.source == latest.source
    ]
    regressions: list[Regression] = []
    for name in sorted(latest.nodes):
        perf = latest.nodes[name]
        if perf.status not in _MEASURED or perf.wall_seconds < min_seconds:
            continue
        samples: list[float] = []
        for record in reversed(baseline_pool):
            base = record.nodes.get(name)
            if base is None or base.status not in _MEASURED:
                continue
            if base.version != perf.version:
                continue
            if base.wall_seconds < min_seconds:
                continue
            samples.append(base.wall_seconds)
            if len(samples) >= window:
                break
        if not samples:
            continue
        baseline = statistics.median(samples)
        if baseline <= 0:
            continue
        ratio = perf.wall_seconds / baseline
        if ratio > 1.0 + tolerance:
            regressions.append(
                Regression(
                    node=name,
                    latest_seconds=perf.wall_seconds,
                    baseline_seconds=baseline,
                    ratio=ratio,
                    samples=len(samples),
                )
            )
    return latest, regressions


# -- CLI row shaping ------------------------------------------------------ #


def report_rows(records: list[PerfRecord]) -> list[list[Any]]:
    """``[node, version, runs, latest ms, median ms, best ms, vs median]``
    rows for ``repro perf report``, one per node, sorted by name."""
    history = node_history(records)
    rows: list[list[Any]] = []
    for name in sorted(history):
        samples = history[name]
        walls = [perf.wall_seconds for _, perf in samples]
        latest = walls[-1]
        median = statistics.median(walls)
        delta = (latest / median - 1.0) if median > 0 else 0.0
        version = samples[-1][1].version or "-"
        rows.append(
            [
                name,
                version,
                len(walls),
                f"{latest * 1000:.1f}",
                f"{median * 1000:.1f}",
                f"{min(walls) * 1000:.1f}",
                f"{delta:+.1%}",
            ]
        )
    return rows


def run_rows(records: list[PerfRecord], *, limit: int = 10) -> list[list[Any]]:
    """``[run, recorded at, sha, source, workers, nodes, total s]`` rows
    for the newest ``limit`` runs, newest first."""
    return [
        [
            record.run_id,
            record.recorded_at,
            record.git_sha[:10],
            record.source,
            record.workers,
            len(record.nodes),
            f"{record.total_wall_seconds():.2f}",
        ]
        for record in reversed(records[-limit:])
    ]
