"""Live run monitoring: heartbeat snapshots and the watch renderer.

A long study run is opaque from outside the process: the journal says
what finished, the trace says where time went -- afterwards.  This
module adds the *during*: the dispatching process periodically writes a
small, atomic JSON snapshot (temp file + rename, so a reader never sees
a half-written file) and ``repro study watch`` renders it as a
refreshing one-line status: per-wave progress, the currently slowest
in-flight nodes, and an ETA computed from perfdb history when one is
available.

Two layers feed the snapshot:

* the study-graph scheduler reports run/wave/node lifecycle events
  (:meth:`RunMonitor.run_started`, :meth:`RunMonitor.wave_started`,
  :meth:`RunMonitor.node_finished`);
* the harness engine reports the heartbeat protocol
  (:meth:`RunMonitor.campaign_started`, :meth:`RunMonitor.dispatched`,
  :meth:`RunMonitor.completed`) as units are submitted to and drained
  from the worker pool.

Writes are throttled (default twice a second) and each write is one
small ``json.dump``, so enabled monitoring stays inside the same < 5%
overhead budget the tracing path honours
(``benchmarks/test_bench_livestatus.py`` enforces it).

Layering: like the rest of :mod:`repro.obs`, nothing here imports from
the wider ``repro`` package -- the scheduler and engine call in, never
the other way around.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Mapping

from repro.obs.perfdb import family_medians, grid_family

#: Snapshot format version.
SNAPSHOT_VERSION = 1

#: Run states a snapshot can report.
STATE_RUNNING = "running"
STATE_FINISHED = "finished"

#: How many in-flight nodes a snapshot lists (slowest first).
IN_FLIGHT_LIMIT = 8

#: Seconds without a heartbeat after which a snapshot reads as stale.
DEFAULT_STALE_AFTER = 30.0


def write_snapshot(path: str | Path, payload: Mapping[str, Any]) -> None:
    """Atomically replace ``path`` with ``payload`` as JSON.

    Temp file + rename in the target directory: a concurrent reader
    sees either the previous snapshot or this one, never a torn write.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, separators=(",", ":"), sort_keys=True)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def read_snapshot(path: str | Path) -> dict[str, Any] | None:
    """The snapshot at ``path``, or None when missing or unreadable.

    A snapshot mid-replace is impossible to observe (writes are atomic),
    so unreadable means "not written yet" or "not a snapshot file".
    """
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(data, dict) or data.get("version") != SNAPSHOT_VERSION:
        return None
    return data


class RunMonitor:
    """Accumulates run state and heartbeats it into a snapshot file.

    One instance per monitored run, owned by the dispatching process.
    The scheduler drives the node-level methods; the harness engine
    drives the heartbeat protocol while a wave's units are on the pool.
    Every method is cheap and write-throttled, so the monitor can be
    called per unit completion without blowing the overhead budget.

    Args:
        path: snapshot file to keep up to date.
        interval: minimum seconds between snapshot writes (lifecycle
            transitions force a write regardless).
        label: run label rendered by ``repro study watch``.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        interval: float = 0.5,
        label: str = "study",
    ) -> None:
        self.path = Path(path)
        self.interval = interval
        self.label = label
        self._started = time.monotonic()
        self._last_write = float("-inf")
        self._state = STATE_RUNNING
        self._workers = 1
        self._total = 0
        self._done = 0
        self._cached = 0
        self._executed = 0
        self._wave_index = 0
        self._wave_ready = 0
        self._pending: set[str] = set()
        self._in_flight: dict[str, float] = {}
        self._done_wall = 0.0
        self._info: dict[str, Any] = {}

    # -- scheduler lifecycle ------------------------------------------- #

    def run_started(
        self, *, total: int, workers: int, pending: list[str] | None = None
    ) -> None:
        """A run over ``total`` nodes is beginning."""
        self._started = time.monotonic()
        self._total = total
        self._workers = workers
        self._pending = set(pending or [])
        self._write(force=True)

    def wave_started(self, index: int, *, ready: int) -> None:
        """Dependency wave ``index`` with ``ready`` resolvable nodes."""
        self._wave_index = index
        self._wave_ready = ready
        self._write(force=True)

    def node_finished(
        self, name: str, *, status: str, wall_seconds: float = 0.0
    ) -> None:
        """A node resolved without passing through the pool (memo hit)."""
        self._account(name, status=status, wall_seconds=wall_seconds)
        self._write()

    def run_finished(self) -> None:
        """The run completed; force-write the terminal snapshot."""
        self._state = STATE_FINISHED
        self._in_flight.clear()
        self._write(force=True)

    def set_info(self, **fields: Any) -> None:
        """Merge owner-specific fields into the snapshot's ``info`` map.

        Long-running owners (the ``repro serve`` daemon) use this to
        publish state the run/wave protocol has no slot for -- queue
        depth, rejection counters, client counts.  Values must be
        JSON-serialisable; setting a key to None removes it.
        """
        for key, value in fields.items():
            if value is None:
                self._info.pop(key, None)
            else:
                self._info[key] = value
        self._write()

    def resource_peak(self, rss_bytes: int) -> None:
        """Record the run's peak RSS so far (from the resource sampler).

        The engine calls this as worker samples arrive; the watch line
        renders it so a leaking run is visible while it is still going.
        """
        current = self._info.get("peak_rss_bytes", 0)
        if rss_bytes > current:
            self._info["peak_rss_bytes"] = int(rss_bytes)
            self._write()

    # -- harness heartbeat protocol ------------------------------------ #

    def campaign_started(self, *, total: int, resumed: int = 0) -> None:
        """A wave's campaign put ``total`` units in front of the pool."""
        self._write(force=True)

    def dispatched(self, units: Any) -> None:
        """Units were submitted to the pool (now potentially running)."""
        now = time.monotonic()
        for unit in units:
            name = getattr(unit, "fault_id", None) or str(unit)
            self._in_flight.setdefault(name, now)
        self._write()

    def completed(self, name: str, *, wall_seconds: float = 0.0) -> None:
        """A pool unit finished; account it and drop it from in-flight."""
        self._in_flight.pop(name, None)
        self._account(name, status="executed", wall_seconds=wall_seconds)
        self._write()

    def campaign_finished(self) -> None:
        """The wave's campaign drained."""
        self._in_flight.clear()
        self._write()

    # -- snapshot ------------------------------------------------------- #

    def _account(self, name: str, *, status: str, wall_seconds: float) -> None:
        self._pending.discard(name)
        self._done += 1
        if status == "cached":
            self._cached += 1
        else:
            self._executed += 1
            self._done_wall += wall_seconds

    def snapshot(self) -> dict[str, Any]:
        """The current run state as a JSON-serialisable snapshot."""
        now = time.monotonic()
        in_flight = sorted(
            (
                {"name": name, "seconds": round(now - since, 3)}
                for name, since in self._in_flight.items()
            ),
            key=lambda entry: (-entry["seconds"], entry["name"]),
        )
        snapshot = {
            "version": SNAPSHOT_VERSION,
            "state": self._state,
            "label": self.label,
            "updated_at": time.time(),
            "elapsed_seconds": round(now - self._started, 3),
            "workers": self._workers,
            "total": self._total,
            "done": self._done,
            "cached": self._cached,
            "executed": self._executed,
            "done_wall_seconds": round(self._done_wall, 3),
            "wave": {"index": self._wave_index, "ready": self._wave_ready},
            "in_flight": in_flight[:IN_FLIGHT_LIMIT],
            "in_flight_total": len(in_flight),
            "pending": sorted(self._pending),
        }
        if self._info:
            snapshot["info"] = dict(self._info)
        return snapshot

    def _write(self, *, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_write < self.interval:
            return
        self._last_write = now
        write_snapshot(self.path, self.snapshot())


# -- the health side ----------------------------------------------------- #


def healthz_view(
    snapshot: Mapping[str, Any] | None,
    *,
    now: float | None = None,
    stale_after: float = DEFAULT_STALE_AFTER,
) -> dict[str, Any]:
    """A service-health summary derived from a :class:`RunMonitor` snapshot.

    The serve daemon keeps one long-lived monitor heartbeating its
    snapshot file; this view reduces that snapshot to the fields an
    operator (or ``repro serve status``) asks about: liveness, uptime,
    in-flight work, queue depth, and whether the heartbeat has gone
    quiet.  Pure given its inputs (pass ``now`` in tests).

    Returns:
        ``{"healthy", "state", "uptime_seconds", "in_flight",
        "queue_depth", "requests_done", "heartbeat_age_seconds",
        "stale", ...}`` -- with ``state`` ``"missing"`` (and ``healthy``
        False) when there is no snapshot at all.  Owner ``info`` fields
        (see :meth:`RunMonitor.set_info`) are merged in verbatim.
    """
    if snapshot is None:
        return {"healthy": False, "state": "missing", "stale": True}
    now = now if now is not None else time.time()
    age = max(0.0, now - snapshot.get("updated_at", now))
    stale = age > stale_after
    state = snapshot.get("state", "unknown")
    info = snapshot.get("info", {})
    view = {
        "healthy": state == STATE_RUNNING and not stale,
        "state": state,
        "label": snapshot.get("label", "run"),
        "uptime_seconds": snapshot.get("elapsed_seconds", 0.0),
        "in_flight": snapshot.get("in_flight_total", 0),
        "queue_depth": info.get("queue_depth", 0),
        "requests_done": snapshot.get("done", 0),
        "workers": snapshot.get("workers", 1),
        "heartbeat_age_seconds": round(age, 3),
        "stale": stale,
    }
    for key, value in info.items():
        view.setdefault(key, value)
    return view


# -- the watch side ------------------------------------------------------ #


def eta_seconds(
    snapshot: Mapping[str, Any],
    *,
    history: Mapping[str, float] | None = None,
) -> float | None:
    """Estimated seconds to completion, or None when unknowable.

    With perfdb ``history`` (node -> median wall seconds), the remaining
    work is the sum of medians over pending and in-flight nodes (less
    time already spent in flight), divided by the worker count.  A grid
    point (``family[axis=value,...]``) the history has never seen is
    budgeted at its family's median-of-medians, so thousand-point grid
    runs keep a meaningful ETA even when most points are fresh; other
    nodes without history fall back to the run's observed mean node
    cost; with no history at all, the whole estimate is pace-based.
    """
    total = snapshot.get("total", 0)
    done = snapshot.get("done", 0)
    remaining_count = max(0, total - done)
    if total <= 0 or remaining_count == 0:
        return 0.0 if snapshot.get("state") == STATE_FINISHED else None

    executed = snapshot.get("executed", 0)
    mean_cost = (
        snapshot.get("done_wall_seconds", 0.0) / executed if executed else None
    )

    in_flight = {
        entry["name"]: entry.get("seconds", 0.0)
        for entry in snapshot.get("in_flight", [])
    }
    # In-flight nodes are still pending (they leave only on completion),
    # so the union avoids budgeting them twice.
    remaining_names = set(snapshot.get("pending", [])) | set(in_flight)

    history = history or {}
    families = family_medians(history) if history else {}
    budget = 0.0
    known = 0
    for name in sorted(remaining_names):
        expected = history.get(name)
        if expected is None:
            family = grid_family(name)
            if family is not None:
                expected = families.get(family)
        if expected is None:
            expected = mean_cost
        if expected is None:
            continue
        known += 1
        budget += max(0.0, expected - in_flight.get(name, 0.0))
    if known == 0:
        return None
    if known < remaining_count and known:
        # Scale up for remaining nodes the snapshot did not name.
        budget *= remaining_count / known
    workers = max(1, snapshot.get("workers", 1))
    return budget / workers


def render_watch_line(
    snapshot: Mapping[str, Any] | None,
    *,
    now: float | None = None,
    history: Mapping[str, float] | None = None,
    stale_after: float = DEFAULT_STALE_AFTER,
) -> str:
    """One status line for ``repro study watch``.

    Pure given its inputs (pass ``now`` in tests): renders per-wave
    progress, the slowest in-flight nodes, the ETA, and heartbeat age --
    flagging the snapshot as stale when the writer has gone quiet.
    """
    if snapshot is None:
        return "waiting for snapshot..."
    now = now if now is not None else time.time()
    label = snapshot.get("label", "run")
    total = snapshot.get("total", 0)
    done = snapshot.get("done", 0)
    fraction = done / total if total else 0.0
    wave = snapshot.get("wave", {})
    parts = [
        f"[{label}] wave {wave.get('index', 0)}"
        f" · {done}/{total} nodes ({fraction:.0%})"
        f" · {snapshot.get('executed', 0)} executed,"
        f" {snapshot.get('cached', 0)} cached"
    ]
    in_flight = snapshot.get("in_flight", [])
    if in_flight:
        shown = ", ".join(
            f"{entry['name']} ({entry.get('seconds', 0.0):.1f}s)"
            for entry in in_flight[:3]
        )
        parts.append(f"in flight: {shown}")
    peak_rss = snapshot.get("info", {}).get("peak_rss_bytes")
    if peak_rss:
        parts.append(f"rss {peak_rss / (1024 * 1024):.0f}MB")
    if snapshot.get("state") == STATE_FINISHED:
        parts.append(f"finished in {snapshot.get('elapsed_seconds', 0.0):.1f}s")
    else:
        eta = eta_seconds(snapshot, history=history)
        if eta is not None:
            parts.append(f"eta ~{eta:.0f}s")
        age = now - snapshot.get("updated_at", now)
        if age > stale_after:
            parts.append(f"STALE: no heartbeat for {age:.0f}s")
    return " · ".join(parts)
