"""Deterministic log-linear histograms and text exposition.

One histogram type for every latency/size distribution the system
records, so client- and server-side percentiles agree *bucket for
bucket* instead of disagreeing by interpolation scheme:

* :class:`Histogram` -- log-linear buckets: each power-of-two magnitude
  between ``lowest`` and ``highest`` is split into ``subbuckets`` equal
  linear slices, giving a bounded relative error of ``1/subbuckets``
  (12.5% at the default 8) across ten decades with a few hundred
  buckets.  Bucket boundaries are a pure function of the three scheme
  parameters, so two histograms built anywhere -- the loadgen client,
  the serve daemon, a parsed exposition -- bucket identically.
  Percentiles return the *upper bound* of the bucket containing the
  nearest-rank sample: deterministic, merge-stable, and reproducible
  from the exposition text alone.
* Prometheus-style text exposition -- :func:`histogram_lines` /
  :func:`metric_line` render the classic ``_bucket``/``_sum``/
  ``_count`` (cumulative ``le``) format; :func:`parse_exposition` reads
  it back; :func:`exposition_buckets` + :func:`bucket_percentile`
  recompute the same percentile a live :class:`Histogram` would return.

Layering: pure stdlib, imports nothing from the rest of ``repro`` (the
``repro.obs`` contract), so the serve daemon, the load generator, and
the SLO checker can all share it.
"""

from __future__ import annotations

import bisect
import math
import re
from typing import Any, Iterable, Mapping

__all__ = [
    "Histogram",
    "bucket_percentile",
    "exposition_buckets",
    "exposition_value",
    "format_le",
    "histogram_lines",
    "metric_line",
    "parse_exposition",
]

#: Default bucket scheme -- shared by loadgen and the serve daemon so
#: percentiles agree bucket-for-bucket.  1 microsecond .. ~10^7 (covers
#: seconds-scale latencies and byte counts alike at 12.5% resolution).
DEFAULT_LOWEST = 1e-6
DEFAULT_HIGHEST = 1e7
DEFAULT_SUBBUCKETS = 8

_BOUNDS_CACHE: dict[tuple[float, float, int], tuple[float, ...]] = {}


def _bucket_bounds(lowest: float, highest: float, subbuckets: int) -> tuple[float, ...]:
    """Upper bounds of every finite bucket, ascending.

    ``bounds[0]`` closes the underflow bucket ``(0, 2**m0]`` where
    ``m0 = floor(log2(lowest))``; each magnitude ``[2**m, 2**(m+1))``
    then contributes ``subbuckets`` equal slices.  The list is cached
    per scheme -- every histogram with the same parameters shares it.
    """
    key = (lowest, highest, subbuckets)
    cached = _BOUNDS_CACHE.get(key)
    if cached is not None:
        return cached
    magnitude = math.floor(math.log2(lowest))
    bounds = [2.0 ** magnitude]
    while bounds[-1] < highest:
        base = 2.0 ** magnitude
        for slice_index in range(1, subbuckets + 1):
            bounds.append(base * (1.0 + slice_index / subbuckets))
        magnitude += 1
    result = tuple(bounds)
    _BOUNDS_CACHE[key] = result
    return result


class Histogram:
    """A mergeable log-linear histogram of non-negative values.

    Recording clamps negatives to zero (zero lands in the underflow
    bucket) and values beyond ``highest`` into a single overflow bucket
    whose upper bound is ``+inf``.  ``count``/``total``/``min_value``/
    ``max_value`` ride along for exact means and ranges.
    """

    __slots__ = (
        "lowest",
        "highest",
        "subbuckets",
        "bounds",
        "counts",
        "count",
        "total",
        "min_value",
        "max_value",
    )

    def __init__(
        self,
        *,
        lowest: float = DEFAULT_LOWEST,
        highest: float = DEFAULT_HIGHEST,
        subbuckets: int = DEFAULT_SUBBUCKETS,
    ) -> None:
        if lowest <= 0 or highest <= lowest or subbuckets < 1:
            raise ValueError("invalid histogram scheme")
        self.lowest = lowest
        self.highest = highest
        self.subbuckets = subbuckets
        self.bounds = _bucket_bounds(lowest, highest, subbuckets)
        self.counts: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = 0.0

    @classmethod
    def from_values(cls, values: Iterable[float], **scheme: Any) -> "Histogram":
        """A histogram of ``values`` under the (default) scheme."""
        hist = cls(**scheme)
        for value in values:
            hist.record(value)
        return hist

    # -- recording ------------------------------------------------------ #

    def bucket_index(self, value: float) -> int:
        """The bucket a value lands in (the overflow bucket is last)."""
        return bisect.bisect_left(self.bounds, value)

    def bucket_upper(self, index: int) -> float:
        """The bucket's upper bound (``+inf`` for the overflow bucket)."""
        if index >= len(self.bounds):
            return math.inf
        return self.bounds[index]

    def record(self, value: float) -> None:
        """Record one observation (negatives clamp to zero)."""
        value = max(0.0, float(value))
        index = self.bucket_index(value)
        self.counts[index] = self.counts.get(index, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram of the identical scheme into this one."""
        if (other.lowest, other.highest, other.subbuckets) != (
            self.lowest,
            self.highest,
            self.subbuckets,
        ):
            raise ValueError("cannot merge histograms with different schemes")
        for index, count in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + count
        self.count += other.count
        self.total += other.total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)

    # -- reading -------------------------------------------------------- #

    @property
    def mean(self) -> float:
        """Exact mean of recorded values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile, rounded up to its bucket's bound.

        Returns 0.0 for an empty histogram and ``+inf`` when the rank
        falls in the overflow bucket.  Because the answer is always a
        bucket boundary, a histogram reconstructed from its exposition
        yields the same number bit for bit.
        """
        if self.count == 0:
            return 0.0
        fraction = min(1.0, max(0.0, fraction))
        target = max(1, math.ceil(fraction * self.count))
        seen = 0
        for index in sorted(self.counts):
            seen += self.counts[index]
            if seen >= target:
                return self.bucket_upper(index)
        return math.inf

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` for buckets where the
        cumulative count changes -- the exposition's ``le`` series."""
        buckets: list[tuple[float, int]] = []
        seen = 0
        for index in sorted(self.counts):
            seen += self.counts[index]
            buckets.append((self.bucket_upper(index), seen))
        return buckets

    # -- serialisation -------------------------------------------------- #

    def to_dict(self) -> dict[str, Any]:
        return {
            "lowest": self.lowest,
            "highest": self.highest,
            "subbuckets": self.subbuckets,
            "counts": {str(index): count for index, count in sorted(self.counts.items())},
            "count": self.count,
            "sum": self.total,
            "min": self.min_value if self.count else None,
            "max": self.max_value if self.count else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Histogram":
        hist = cls(
            lowest=float(data.get("lowest", DEFAULT_LOWEST)),
            highest=float(data.get("highest", DEFAULT_HIGHEST)),
            subbuckets=int(data.get("subbuckets", DEFAULT_SUBBUCKETS)),
        )
        hist.counts = {
            int(index): int(count) for index, count in data.get("counts", {}).items()
        }
        hist.count = int(data.get("count", 0))
        hist.total = float(data.get("sum", 0.0))
        if hist.count:
            hist.min_value = float(data.get("min") or 0.0)
            hist.max_value = float(data.get("max") or 0.0)
        return hist


# -- Prometheus-style text exposition ----------------------------------- #


def format_le(bound: float) -> str:
    """The canonical ``le`` label value for a bucket bound.

    ``repr`` is the shortest string that round-trips the float exactly,
    so a percentile recomputed from parsed exposition text is
    bit-identical to the live histogram's answer.
    """
    if math.isinf(bound):
        return "+Inf"
    return repr(bound)


def _format_labels(labels: Mapping[str, str] | None) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(labels[key]))}"' for key in sorted(labels)
    )
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def metric_line(
    name: str, value: float, labels: Mapping[str, str] | None = None
) -> str:
    """One exposition sample line: ``name{labels} value``."""
    return f"{name}{_format_labels(labels)} {_format_value(value)}"


def histogram_lines(
    name: str, hist: Histogram, labels: Mapping[str, str] | None = None
) -> list[str]:
    """The ``_bucket``/``_sum``/``_count`` lines for one histogram.

    Only buckets where the cumulative count changes are emitted (plus
    the mandatory ``+Inf``), which keeps a sparse histogram's exposition
    short without changing any percentile recomputed from it.
    """
    base = dict(labels or {})
    lines: list[str] = []
    for bound, cumulative in hist.cumulative_buckets():
        if math.isinf(bound):
            continue
        bucket_labels = dict(base)
        bucket_labels["le"] = format_le(bound)
        lines.append(metric_line(f"{name}_bucket", cumulative, bucket_labels))
    inf_labels = dict(base)
    inf_labels["le"] = "+Inf"
    lines.append(metric_line(f"{name}_bucket", hist.count, inf_labels))
    lines.append(metric_line(f"{name}_sum", hist.total, base or None))
    lines.append(metric_line(f"{name}_count", hist.count, base or None))
    return lines


_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:\\.|[^"\\])*)"')
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+([^\s]+)\s*$"
)


def _unescape_label(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_exposition(text: str) -> list[tuple[str, dict[str, str], float]]:
    """Parse exposition text into ``(name, labels, value)`` samples.

    Comment/``# TYPE`` lines are skipped; a malformed sample line raises
    ``ValueError`` (the CI scrape check relies on strictness here).
    """
    samples: list[tuple[str, dict[str, str], float]] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line: {raw!r}")
        name, label_text, value_text = match.groups()
        labels = {
            key: _unescape_label(value)
            for key, value in _LABEL_RE.findall(label_text or "")
        }
        samples.append((name, labels, _parse_value(value_text)))
    return samples


def _labels_match(labels: Mapping[str, str], match: Mapping[str, str]) -> bool:
    return all(labels.get(key) == value for key, value in match.items())


def exposition_value(
    samples: Iterable[tuple[str, dict[str, str], float]],
    name: str,
    match: Mapping[str, str] | None = None,
) -> float | None:
    """Sum of samples called ``name`` whose labels include ``match``.

    Returns None when no sample matches (distinct from a present 0).
    """
    total = 0.0
    found = False
    for sample_name, labels, value in samples:
        if sample_name == name and _labels_match(labels, match or {}):
            total += value
            found = True
    return total if found else None


def exposition_buckets(
    samples: Iterable[tuple[str, dict[str, str], float]],
    name: str,
    match: Mapping[str, str] | None = None,
) -> list[tuple[float, int]]:
    """The cumulative ``(le, count)`` series for one exposed histogram."""
    buckets: list[tuple[float, int]] = []
    for sample_name, labels, value in samples:
        if sample_name != f"{name}_bucket" or "le" not in labels:
            continue
        if not _labels_match(labels, {k: v for k, v in (match or {}).items()}):
            continue
        buckets.append((_parse_value(labels["le"]), int(value)))
    buckets.sort(key=lambda item: item[0])
    return buckets


def bucket_percentile(
    buckets: list[tuple[float, int]], fraction: float
) -> float:
    """The percentile a live :class:`Histogram` would return.

    ``buckets`` is the cumulative series from :func:`exposition_buckets`;
    the total count is the last cumulative value.  Returns 0.0 on an
    empty series.
    """
    if not buckets:
        return 0.0
    total = buckets[-1][1]
    if total <= 0:
        return 0.0
    fraction = min(1.0, max(0.0, fraction))
    target = max(1, math.ceil(fraction * total))
    for bound, cumulative in buckets:
        if cumulative >= target:
            return bound
    return math.inf
