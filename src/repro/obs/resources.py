"""Span-attributed resource sampling from ``/proc``.

The trace stack records *wall time* per span; this module adds the
resource axis the fault study needs (leaks, exhaustion, runaway
retries): a background :class:`ResourceSampler` thread reads
``/proc/<pid>/{statm,stat,io}`` at a configurable interval and emits
:class:`ResourceSample` records -- RSS bytes, cumulative CPU seconds,
cumulative read/write bytes -- each tagged with the deepest span open
in the sampled process at that instant (via
:func:`repro.obs.span.deepest_open_span`).

Sample records share the span-record transport end to end: a worker's
sampler buffers records that ship back through the same
``UnitExecution`` channel spans use, the dispatcher ``ingest``\\ s them
into the one trace sink, and trace consumers (``summarize_trace``,
``record_from_trace``, the SLO checker) fold them into per-phase
peak-RSS and CPU attributions with the helpers at the bottom of this
module.  Records without ``start``/``end`` keys are invisible to every
span-only consumer, so old tooling keeps working on new traces.

**The sampler never fails a run.**  Every ``/proc`` read tolerates the
target vanishing mid-read (ENOENT/ESRCH), ``io`` being unreadable
(EACCES), or ``/proc`` not existing at all (non-Linux); errors count in
:attr:`ResourceSampler.errors` and sampling simply continues or stops
quietly.  Observation must not change the observed campaign: the
sampler touches no unit state, no seeds, and no results.

Layering: imports only :mod:`repro.obs.span` (the ``repro.obs``
contract -- nothing from the rest of ``repro``).
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from typing import Any, Callable, Iterable, Mapping

# Import the hook directly from the span *module*: the package re-exports
# a function also called ``span``, which shadows the submodule on
# ``import repro.obs.span as ...`` style attribute lookups.
from repro.obs.span import deepest_open_span as _deepest_open_span

__all__ = [
    "DEFAULT_INTERVAL",
    "RESOURCE_KIND",
    "ResourceSample",
    "ResourceSampler",
    "ResourceUsage",
    "active_sampler",
    "child_pids",
    "configure",
    "configured_interval",
    "is_resource_record",
    "proc_available",
    "read_resource_sample",
    "resource_records",
    "rss_series_by_span",
    "sampling_enabled",
    "usage_by_phase",
    "usage_by_span_name",
]

#: Marker distinguishing sample records from span records in a trace.
RESOURCE_KIND = "resource"

#: Default sampling interval in seconds (50 Hz is far below the <5%
#: overhead budget and still catches sub-second phases).
DEFAULT_INTERVAL = 0.02

#: Environment override: a float interval in seconds, or ``1``/``true``
#: for :data:`DEFAULT_INTERVAL`.  Lets CI and the serve daemon enable
#: sampling without threading a flag through every entry point.
SAMPLE_ENV = "REPRO_SAMPLE_RESOURCES"


def _sysconf(name: str, fallback: int) -> int:
    try:
        value = os.sysconf(name)
    except (OSError, ValueError, AttributeError):
        return fallback
    return int(value) if value > 0 else fallback


_PAGE_SIZE = _sysconf("SC_PAGE_SIZE", 4096)
_CLK_TCK = _sysconf("SC_CLK_TCK", 100)


@dataclasses.dataclass(frozen=True)
class ResourceSample:
    """One instant's resource reading for one process.

    ``cpu_seconds`` and the io byte counts are *cumulative* process
    totals (deltas between consecutive samples attribute usage to
    spans); ``rss_bytes`` is instantaneous.  ``span_id``/``span_name``
    name the deepest span open in the sampled process when the sample
    was taken (None when tracing is off or nothing was open).
    """

    pid: int
    t: float
    rss_bytes: int
    cpu_seconds: float
    read_bytes: int | None = None
    write_bytes: int | None = None
    span_id: str | None = None
    span_name: str | None = None

    def to_record(self) -> dict[str, Any]:
        """The JSON-serialisable record fed to trace sinks."""
        record: dict[str, Any] = {
            "kind": RESOURCE_KIND,
            "pid": self.pid,
            "t": self.t,
            "rss_bytes": self.rss_bytes,
            "cpu_seconds": round(self.cpu_seconds, 6),
        }
        if self.read_bytes is not None:
            record["read_bytes"] = self.read_bytes
        if self.write_bytes is not None:
            record["write_bytes"] = self.write_bytes
        if self.span_id is not None:
            record["span_id"] = self.span_id
        if self.span_name is not None:
            record["span_name"] = self.span_name
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "ResourceSample":
        return cls(
            pid=int(record.get("pid", 0)),
            t=float(record.get("t", 0.0)),
            rss_bytes=int(record.get("rss_bytes", 0)),
            cpu_seconds=float(record.get("cpu_seconds", 0.0)),
            read_bytes=record.get("read_bytes"),
            write_bytes=record.get("write_bytes"),
            span_id=record.get("span_id"),
            span_name=record.get("span_name"),
        )


def is_resource_record(record: Mapping[str, Any]) -> bool:
    """Whether a trace record is a resource sample (vs a span)."""
    return record.get("kind") == RESOURCE_KIND


# -- /proc readers ------------------------------------------------------- #


def proc_available(pid: int | None = None) -> bool:
    """Whether ``/proc/<pid>`` exists (False on non-Linux)."""
    return os.path.isdir(f"/proc/{pid if pid is not None else os.getpid()}")


def _read_rss_bytes(pid: int) -> int:
    with open(f"/proc/{pid}/statm", "rb") as stream:
        fields = stream.read().split()
    return int(fields[1]) * _PAGE_SIZE


def _read_cpu_seconds(pid: int) -> float:
    with open(f"/proc/{pid}/stat", "rb") as stream:
        content = stream.read()
    # The comm field is parenthesised and may contain spaces; fields
    # after the last ')' are fixed-position: state is field 3, so utime
    # (field 14) and stime (field 15) are offsets 11 and 12.
    tail = content.rsplit(b")", 1)[-1].split()
    return (int(tail[11]) + int(tail[12])) / _CLK_TCK


def _read_io_bytes(pid: int) -> tuple[int | None, int | None]:
    try:
        with open(f"/proc/{pid}/io", "rb") as stream:
            content = stream.read()
    except OSError:  # io is often root-only; RSS/CPU still sample fine
        return None, None
    read_bytes = write_bytes = None
    for line in content.splitlines():
        if line.startswith(b"read_bytes:"):
            read_bytes = int(line.split(b":", 1)[1])
        elif line.startswith(b"write_bytes:"):
            write_bytes = int(line.split(b":", 1)[1])
    return read_bytes, write_bytes


def read_resource_sample(
    pid: int | None = None,
    *,
    clock: Callable[[], float] = time.monotonic,
    attribute: bool = False,
) -> ResourceSample | None:
    """One sample for ``pid`` (default: this process), or None.

    None means the process vanished between list and read, or there is
    no ``/proc`` -- never an exception.  ``attribute`` tags the sample
    with this process's deepest open span (only meaningful when
    sampling the calling process).
    """
    target = pid if pid is not None else os.getpid()
    try:
        rss = _read_rss_bytes(target)
        cpu = _read_cpu_seconds(target)
    except (OSError, ValueError, IndexError):
        return None
    read_bytes, write_bytes = _read_io_bytes(target)
    span_id = span_name = None
    if attribute:
        open_span = _deepest_open_span()
        if open_span is not None:
            span_id, span_name = open_span
            span_name = span_name or None
    return ResourceSample(
        pid=target,
        t=clock(),
        rss_bytes=rss,
        cpu_seconds=cpu,
        read_bytes=read_bytes,
        write_bytes=write_bytes,
        span_id=span_id,
        span_name=span_name,
    )


def child_pids(pid: int | None = None) -> list[int]:
    """Direct child pids of ``pid`` via ``/proc/<pid>/task/*/children``.

    Tolerates every race (tasks and children files come and go);
    returns a sorted, deduplicated list, empty on any failure.
    """
    target = pid if pid is not None else os.getpid()
    children: set[int] = set()
    task_dir = f"/proc/{target}/task"
    try:
        tids = os.listdir(task_dir)
    except OSError:
        return []
    for tid in tids:
        try:
            with open(f"{task_dir}/{tid}/children", "rb") as stream:
                children.update(int(child) for child in stream.read().split())
        except (OSError, ValueError):
            continue
    return sorted(children)


# -- process-wide sampling configuration -------------------------------- #

# Set in the dispatcher before the pool forks; workers inherit the
# value at fork time, which is how "sample every fork-pool worker"
# needs no cross-process plumbing at all.
_CONFIGURED_INTERVAL: float | None = None


def configure(interval: float | None) -> None:
    """Enable (interval in seconds) or disable (None) resource sampling.

    Must run before the worker pool forks for workers to inherit it.
    """
    global _CONFIGURED_INTERVAL
    if interval is not None and interval <= 0:
        raise ValueError("sampling interval must be positive")
    _CONFIGURED_INTERVAL = interval


def configured_interval() -> float | None:
    """The active sampling interval, or None when sampling is off.

    An explicit :func:`configure` wins; otherwise :data:`SAMPLE_ENV` is
    consulted (``0``/``false``/empty disable, ``1``/``true`` select the
    default interval, anything else parses as a float interval).
    """
    if _CONFIGURED_INTERVAL is not None:
        return _CONFIGURED_INTERVAL
    raw = os.environ.get(SAMPLE_ENV, "").strip().lower()
    if raw in ("", "0", "false", "no", "off"):
        return None
    if raw in ("1", "true", "yes", "on"):
        return DEFAULT_INTERVAL
    try:
        interval = float(raw)
    except ValueError:
        return None
    return interval if interval > 0 else None


def sampling_enabled() -> bool:
    """Whether resource sampling is currently configured on."""
    return configured_interval() is not None


# -- the background sampler --------------------------------------------- #

_ACTIVE_SAMPLER: "ResourceSampler | None" = None


def active_sampler() -> "ResourceSampler | None":
    """The process's running sampler, or None."""
    return _ACTIVE_SAMPLER


class ResourceSampler:
    """Background thread sampling this process (and optionally children).

    Records accumulate in an internal buffer; :meth:`take` drains it
    (the per-unit shipping hook), while the running RSS log and peak
    survive draining so monitors (:meth:`peak_rss_bytes`,
    :meth:`peak_rss_since`, :meth:`rss_log`) see the whole run.

    The sampling loop is wrapped so that *no* failure -- a vanished
    pid, a corrupt ``/proc`` read, a missing ``/proc`` -- can propagate
    into the sampled campaign; failures increment :attr:`errors` and
    the loop moves on.
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        *,
        include_children: bool = False,
        attribute: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval = interval
        self.include_children = include_children
        self.attribute = attribute
        self.errors = 0
        self._clock = clock
        self._pid = os.getpid()
        self._records: list[dict[str, Any]] = []
        self._rss_log: list[tuple[float, int, int]] = []  # (t, pid, rss)
        self._peak_rss = 0
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------- #

    def start(self) -> "ResourceSampler":
        """Start the daemon sampling thread (idempotent); returns self."""
        global _ACTIVE_SAMPLER
        if self._thread is not None:
            return self
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True
        )
        _ACTIVE_SAMPLER = self
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and take one final sample (idempotent)."""
        global _ACTIVE_SAMPLER
        thread = self._thread
        if thread is None:
            return
        self._stop_event.set()
        thread.join(timeout=max(1.0, self.interval * 10))
        self._thread = None
        if _ACTIVE_SAMPLER is self:
            _ACTIVE_SAMPLER = None
        self._sample_once()  # a final reading so even short runs get one

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.stop()
        return False

    # -- sampling loop -------------------------------------------------- #

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval):
            self._sample_once()

    def _sample_once(self) -> None:
        try:
            self._sample_pid(self._pid, attribute=self.attribute)
            if self.include_children:
                for pid in child_pids(self._pid):
                    self._sample_pid(pid, attribute=False)
        except Exception:  # observation must never break the observed run
            self.errors += 1

    def _sample_pid(self, pid: int, *, attribute: bool) -> None:
        sample = read_resource_sample(pid, clock=self._clock, attribute=attribute)
        if sample is None:
            self.errors += 1
            return
        record = sample.to_record()
        with self._lock:
            self._records.append(record)
            self._rss_log.append((sample.t, sample.pid, sample.rss_bytes))
            if sample.rss_bytes > self._peak_rss:
                self._peak_rss = sample.rss_bytes

    # -- reading -------------------------------------------------------- #

    def take(self) -> list[dict[str, Any]]:
        """Drain and return buffered sample records (may be empty)."""
        with self._lock:
            records = self._records
            self._records = []
        return records

    def peak_rss_bytes(self) -> int:
        """The highest RSS seen so far, across every sampled pid."""
        return self._peak_rss

    def peak_rss_since(self, t: float, *, pid: int | None = None) -> int | None:
        """Peak RSS among samples taken at or after monotonic ``t``.

        None when no qualifying sample exists (e.g. a sub-interval
        window).  The RSS log is not drained by :meth:`take`, so this
        works across unit boundaries.
        """
        target = pid if pid is not None else self._pid
        with self._lock:
            values = [
                rss for when, sample_pid, rss in self._rss_log
                if when >= t and sample_pid == target
            ]
        return max(values) if values else None

    def rss_log(self) -> list[tuple[float, int, int]]:
        """A copy of the full ``(t, pid, rss_bytes)`` series."""
        with self._lock:
            return list(self._rss_log)


# -- trace-side attribution helpers ------------------------------------- #


@dataclasses.dataclass
class ResourceUsage:
    """Aggregated resource attribution for one span name (or phase).

    ``cpu_seconds``/``read_bytes``/``write_bytes`` are deltas between
    consecutive samples of the same pid, credited to the span open when
    the later sample was taken; ``peak_rss_bytes`` is the maximum
    instantaneous RSS among the group's samples.
    """

    samples: int = 0
    peak_rss_bytes: int = 0
    cpu_seconds: float = 0.0
    read_bytes: int = 0
    write_bytes: int = 0


def resource_records(records: Iterable[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Just the resource-sample records from a mixed trace."""
    return [dict(r) for r in records if is_resource_record(r)]


def _span_names(records: Iterable[Mapping[str, Any]]) -> dict[str, str]:
    return {
        r["span_id"]: r.get("name", "?")
        for r in records
        if "start" in r and "end" in r and r.get("span_id")
    }


def _attributed_name(
    sample: Mapping[str, Any], names: Mapping[str, str]
) -> str:
    span_id = sample.get("span_id")
    if span_id and span_id in names:
        return names[span_id]
    return sample.get("span_name") or "(unattributed)"


def _usage_rollup(
    records: Iterable[Mapping[str, Any]],
    key_of: Callable[[str], str],
) -> dict[str, ResourceUsage]:
    records = list(records)
    names = _span_names(records)
    samples = [r for r in records if is_resource_record(r)]
    by_pid: dict[int, list[Mapping[str, Any]]] = {}
    for sample in samples:
        by_pid.setdefault(int(sample.get("pid", 0)), []).append(sample)

    usage: dict[str, ResourceUsage] = {}
    for pid_samples in by_pid.values():
        pid_samples.sort(key=lambda s: float(s.get("t", 0.0)))
        previous: Mapping[str, Any] | None = None
        for sample in pid_samples:
            key = key_of(_attributed_name(sample, names))
            entry = usage.setdefault(key, ResourceUsage())
            entry.samples += 1
            entry.peak_rss_bytes = max(
                entry.peak_rss_bytes, int(sample.get("rss_bytes", 0))
            )
            if previous is not None:
                entry.cpu_seconds += max(
                    0.0,
                    float(sample.get("cpu_seconds", 0.0))
                    - float(previous.get("cpu_seconds", 0.0)),
                )
                for field in ("read_bytes", "write_bytes"):
                    now = sample.get(field)
                    before = previous.get(field)
                    if now is not None and before is not None:
                        delta = max(0, int(now) - int(before))
                        setattr(entry, field, getattr(entry, field) + delta)
            previous = sample
    return usage


def usage_by_span_name(
    records: Iterable[Mapping[str, Any]],
) -> dict[str, ResourceUsage]:
    """Resource attribution per full span name (``node:T1``, ...).

    Sample span ids are resolved against the trace's span records, so
    attribution survives the worker round-trip even when the span name
    was unknown at sample time.
    """
    return _usage_rollup(records, lambda name: name)


def usage_by_phase(
    records: Iterable[Mapping[str, Any]],
) -> dict[str, ResourceUsage]:
    """Resource attribution per phase (span name before the first ``:``)."""
    return _usage_rollup(
        records, lambda name: name.split(":", 1)[0] if name else name
    )


def rss_series_by_span(
    records: Iterable[Mapping[str, Any]],
) -> dict[str, list[tuple[float, int]]]:
    """Per-span-name time-ordered ``(t, rss_bytes)`` series.

    The SLO checker's leak lens: a healthy span family's series is
    flat-ish; a leaking one grows monotonically.
    """
    records = list(records)
    names = _span_names(records)
    series: dict[str, list[tuple[float, int]]] = {}
    for sample in records:
        if not is_resource_record(sample):
            continue
        key = _attributed_name(sample, names)
        series.setdefault(key, []).append(
            (float(sample.get("t", 0.0)), int(sample.get("rss_bytes", 0)))
        )
    for values in series.values():
        values.sort(key=lambda item: item[0])
    return series
