"""Span sinks: where finished trace spans go.

A sink receives one JSON-serialisable span record per finished span (see
:mod:`repro.obs.span` for the record shape).  Three implementations
cover the subsystem's needs:

* :class:`NullSink` -- swallows everything; the disabled-tracing path
  never reaches a sink at all, this exists for explicit plumbing;
* :class:`MemorySink` -- collects records in a list, for tests and for
  worker-side capture buffers;
* :class:`JsonlSink` -- crash-safe on-disk trace log: one JSON object
  per line, flushed per record, so a killed run loses at most the
  in-flight span.  :func:`read_trace` tolerates a truncated final line
  (the crash case) by stopping at the first undecodable line.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any


class NullSink:
    """Discards every record."""

    def emit(self, record: dict[str, Any]) -> None:
        pass

    def close(self) -> None:
        pass


class MemorySink:
    """Collects records in memory (tests, worker capture buffers)."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def emit(self, record: dict[str, Any]) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class JsonlSink:
    """Appends one JSON line per span record to ``path``, flushed eagerly.

    The file is truncated on open: one trace file describes one run.
    Every record is written and flushed as a single line, so a crashed
    process can truncate at most the last line -- which
    :func:`read_trace` skips on load.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._stream = open(self.path, "w", encoding="utf-8")
        self._lock = threading.Lock()
        self.emitted = 0

    def emit(self, record: dict[str, Any]) -> None:
        # Lock-guarded so concurrent request threads (the serve daemon)
        # never interleave two records on one line.
        line = json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n"
        with self._lock:
            self._stream.write(line)
            self._stream.flush()
            self.emitted += 1

    def close(self) -> None:
        if not self._stream.closed:
            self._stream.close()


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Load span records from a JSONL trace file.

    A truncated or corrupt tail (a crashed writer's final line) ends the
    read without raising; everything before it is returned.
    """
    records: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break
            if isinstance(record, dict):
                records.append(record)
    return records
