"""The run-wide metrics registry: counters, timers, and sharded gauges.

:class:`MetricsRegistry` is the single place harness campaigns, the
archive pipeline, and the study-graph scheduler report their numbers.
It generalises the original ``repro.harness.telemetry.Telemetry`` (which
is now a thin alias kept for its import path): counters accumulate
integers, timers accumulate observed durations, and gauges hold floats
*per shard* so that folding snapshots from parallel shards is
deterministic regardless of arrival order.

The old gauge semantics -- last write wins across :meth:`merge` calls --
made merged values depend on completion order under parallel runs
(``workers.utilization`` could come from whichever shard finished last).
Gauges are now keyed by the reporting registry's ``shard`` id and
reduced *last-by-shard-id* (the value of the lexicographically greatest
shard key), so any permutation of the same snapshots merges to the same
value.  :meth:`gauge_max` is the keyed-max reduction for gauges where
the peak is the meaningful aggregate.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from typing import Any, Iterator, Mapping

#: Shard key used by registries that never declared one (and by legacy
#: snapshots that predate sharded gauges).
LOCAL_SHARD = "local"


@dataclasses.dataclass(frozen=True)
class TimerStats:
    """Aggregate statistics for one named timer."""

    count: int
    total: float
    min: float
    max: float

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count


class MetricsRegistry:
    """Named counters, timers, and gauges for one run.

    Counters accumulate integers (``units.executed``, ``units.survived``);
    timers accumulate observed durations (``unit.wall``, ``unit.queue``);
    gauges hold last-written floats per shard (``workers.utilization``).

    Args:
        shard: identity of this registry's gauge shard.  Give each
            parallel reporter a distinct, stable id (``"shard0003"``, a
            worker index, ...) so merged gauges reduce deterministically.
    """

    def __init__(self, *, shard: str = LOCAL_SHARD) -> None:
        self.shard = shard
        self._counters: dict[str, int] = {}
        self._timers: dict[str, list[float]] = {}  # [count, total, min, max]
        self._gauges: dict[str, dict[str, float]] = {}  # name -> shard -> value

    # -- counters ------------------------------------------------------ #

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    # -- timers -------------------------------------------------------- #

    def observe(self, name: str, seconds: float) -> None:
        """Record one observed duration under timer ``name``."""
        stats = self._timers.get(name)
        if stats is None:
            self._timers[name] = [1, seconds, seconds, seconds]
        else:
            stats[0] += 1
            stats[1] += seconds
            stats[2] = min(stats[2], seconds)
            stats[3] = max(stats[3], seconds)

    @contextlib.contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Context manager observing the enclosed block's wall time."""
        started = time.monotonic()
        try:
            yield
        finally:
            self.observe(name, time.monotonic() - started)

    def timer(self, name: str) -> TimerStats:
        """Aggregate stats for timer ``name`` (zeros if never observed)."""
        stats = self._timers.get(name)
        if stats is None:
            return TimerStats(count=0, total=0.0, min=0.0, max=0.0)
        return TimerStats(count=stats[0], total=stats[1], min=stats[2], max=stats[3])

    # -- gauges -------------------------------------------------------- #

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` for this registry's shard (last write wins
        *within* a shard; across shards the reduction is deterministic)."""
        self._gauges.setdefault(name, {})[self.shard] = value

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        """Reduced value of gauge ``name``: last-by-shard-id.

        The value written by the lexicographically greatest shard key --
        identical for any merge order of the same shard snapshots.
        """
        shards = self._gauges.get(name)
        if not shards:
            return default
        return shards[max(shards)]

    def gauge_max(self, name: str, default: float = 0.0) -> float:
        """Keyed-max reduction of gauge ``name`` across shards."""
        shards = self._gauges.get(name)
        if not shards:
            return default
        return max(shards.values())

    def gauge_shards(self, name: str) -> dict[str, float]:
        """Per-shard values recorded for gauge ``name``."""
        return dict(self._gauges.get(name, {}))

    # -- snapshots ----------------------------------------------------- #

    def snapshot(self) -> dict[str, Any]:
        """All metrics as one JSON-serialisable dict.

        ``gauges`` carries the reduced per-gauge values (the shape the
        original Telemetry emitted); ``gauge_shards`` carries the full
        per-shard breakdown that :meth:`merge` folds deterministically.
        """
        return {
            "shard": self.shard,
            "counters": dict(self._counters),
            "timers": {
                name: dataclasses.asdict(self.timer(name)) for name in self._timers
            },
            "gauges": {name: self.gauge_value(name) for name in self._gauges},
            "gauge_shards": {
                name: dict(shards) for name, shards in self._gauges.items()
            },
        }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add; timers combine their aggregates; gauges fold by
        shard key, so merging the same set of shard snapshots in any
        order leaves every :meth:`gauge_value` identical.  Legacy
        snapshots without ``gauge_shards`` fold under their ``shard`` id
        (or :data:`LOCAL_SHARD` when absent).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)
        for name, stats in snapshot.get("timers", {}).items():
            current = self._timers.get(name)
            if current is None:
                self._timers[name] = [
                    stats["count"], stats["total"], stats["min"], stats["max"],
                ]
            else:
                current[0] += stats["count"]
                current[1] += stats["total"]
                current[2] = min(current[2], stats["min"])
                current[3] = max(current[3], stats["max"])
        shard_map = snapshot.get("gauge_shards")
        if shard_map is None:
            source = snapshot.get("shard", LOCAL_SHARD)
            shard_map = {
                name: {source: value}
                for name, value in snapshot.get("gauges", {}).items()
            }
        for name, shards in shard_map.items():
            bucket = self._gauges.setdefault(name, {})
            for shard, value in shards.items():
                bucket[shard] = value

    def summary_lines(self) -> list[str]:
        """Human-readable one-liners for the CLI footer."""
        lines = []
        executed = self.counter("units.executed")
        resumed = self.counter("units.resumed")
        lines.append(
            f"units: {self.counter('units.total')} total, "
            f"{executed} executed, {resumed} resumed from journal"
        )
        wall = self.timer("unit.wall")
        if wall.count:
            lines.append(
                f"unit wall time: mean {wall.mean * 1000:.2f} ms, "
                f"max {wall.max * 1000:.2f} ms"
            )
        queue = self.timer("unit.queue")
        if queue.count:
            lines.append(f"queue latency: mean {queue.mean * 1000:.2f} ms")
        if "workers.utilization" in self._gauges:
            lines.append(
                f"workers: {self.gauge_value('workers.count'):.0f} "
                f"({self.gauge_value('workers.utilization'):.0%} utilized)"
            )
        survived = self.counter("units.survived")
        if executed or survived:
            lines.append(f"survived: {survived}/{self.counter('units.finished')}")
        return lines
