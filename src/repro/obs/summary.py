"""Trace summaries: wall-time attribution from span records.

:func:`summarize_trace` turns a list of span records into the numbers
the ``repro trace summary`` CLI prints: per-phase and per-span-name
wall-time aggregates, *self-time* aggregates (a span's wall time minus
its direct children's -- where the time was actually spent, not just
where it was enclosed), the top-N slowest spans, and *root coverage* --
the fraction of the root span's wall time attributed to its direct
children.  For a study run the root is ``study.run`` and its children
are the ``wave`` spans, so coverage answers "how much of the scheduler's
wall time do named spans account for?" (the acceptance bar is >= 95%).

When the trace carries resource-sample records
(:mod:`repro.obs.resources`), each self-time aggregate also reports the
peak RSS and CPU seconds the sampler attributed to that span name.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable


def _duration(record: dict[str, Any]) -> float:
    return max(0.0, record.get("end", 0.0) - record.get("start", 0.0))


def _phase(name: str) -> str:
    return name.split(":", 1)[0]


@dataclasses.dataclass(frozen=True)
class NameStats:
    """Aggregate wall time for one span name (or phase)."""

    name: str
    count: int
    total_seconds: float
    max_seconds: float


@dataclasses.dataclass(frozen=True)
class SelfTimeStats:
    """Self-time attribution for one span name.

    Attributes:
        name: the span name.
        count: spans with this name.
        self_seconds: total wall time minus time spent in direct
            children -- the time this code itself consumed.
        total_seconds: total (inclusive) wall time.
        peak_rss_bytes: sampler-attributed peak RSS (None without
            resource samples for this name).
        cpu_seconds: sampler-attributed CPU time (None without samples).
    """

    name: str
    count: int
    self_seconds: float
    total_seconds: float
    peak_rss_bytes: int | None = None
    cpu_seconds: float | None = None


#: Synthetic phase adopting spans whose parent record is missing.
ORPHAN_PHASE = "(orphaned)"


@dataclasses.dataclass
class TraceSummary:
    """Everything ``repro trace summary`` renders.

    Attributes:
        spans: total span records in the trace.
        processes: distinct recording pids.
        root: the root span record (no parent; earliest start wins ties),
            or None for an empty trace.
        root_seconds: the root span's wall time.
        coverage: fraction of the root's wall time covered by its direct
            children plus orphaned subtrees (0.0 with no root or a
            zero-length root).
        orphaned: spans whose parent record is missing from the trace
            (a truncated trace); they aggregate under the synthetic
            :data:`ORPHAN_PHASE` phase and still count toward coverage.
        phases: per-phase aggregates (span name before the first ``:``),
            sorted by total time descending.
        names: per-full-name aggregates, sorted by total time descending.
        slowest: the top-N span records by duration, longest first.
        self_times: per-span-name self-time aggregates (with resource
            attribution when the trace carries samples), sorted by self
            time descending.
    """

    spans: int
    processes: int
    root: dict[str, Any] | None
    root_seconds: float
    coverage: float
    orphaned: int
    phases: list[NameStats]
    names: list[NameStats]
    slowest: list[dict[str, Any]]
    self_times: list[SelfTimeStats] = dataclasses.field(default_factory=list)

    def phase_rows(self) -> list[list[Any]]:
        """``[phase, spans, total ms, max ms]`` rows for the CLI."""
        return [
            [s.name, s.count, f"{s.total_seconds * 1000:.1f}",
             f"{s.max_seconds * 1000:.1f}"]
            for s in self.phases
        ]

    def name_rows(self, limit: int | None = None) -> list[list[Any]]:
        """``[name, spans, total ms, max ms]`` rows for the CLI."""
        names = self.names if limit is None else self.names[:limit]
        return [
            [s.name, s.count, f"{s.total_seconds * 1000:.1f}",
             f"{s.max_seconds * 1000:.1f}"]
            for s in names
        ]

    def slowest_rows(self) -> list[list[Any]]:
        """``[name, wall ms, pid, parent]`` rows, longest span first."""
        return [
            [
                record.get("name", "?"),
                f"{_duration(record) * 1000:.1f}",
                record.get("pid", "?"),
                (record.get("parent_id") or "-"),
            ]
            for record in self.slowest
        ]

    def self_time_rows(self, limit: int | None = None) -> list[list[Any]]:
        """``[span, calls, self ms, total ms, peak RSS MB, cpu ms]``
        rows, hottest self-time first; resource columns are ``-`` when
        the trace carried no samples for the name."""
        stats = self.self_times if limit is None else self.self_times[:limit]
        rows: list[list[Any]] = []
        for s in stats:
            rows.append(
                [
                    s.name,
                    s.count,
                    f"{s.self_seconds * 1000:.1f}",
                    f"{s.total_seconds * 1000:.1f}",
                    (
                        f"{s.peak_rss_bytes / (1024 * 1024):.1f}"
                        if s.peak_rss_bytes is not None
                        else "-"
                    ),
                    (
                        f"{s.cpu_seconds * 1000:.1f}"
                        if s.cpu_seconds is not None
                        else "-"
                    ),
                ]
            )
        return rows


def _aggregate(records: list[dict[str, Any]], key) -> list[NameStats]:
    totals: dict[str, list[float]] = {}
    for record in records:
        name = key(record)
        duration = _duration(record)
        stats = totals.setdefault(name, [0, 0.0, 0.0])
        stats[0] += 1
        stats[1] += duration
        stats[2] = max(stats[2], duration)
    return sorted(
        (
            NameStats(name=name, count=int(c), total_seconds=t, max_seconds=m)
            for name, (c, t, m) in totals.items()
        ),
        key=lambda s: s.total_seconds,
        reverse=True,
    )


def _self_times(
    records: list[dict[str, Any]], spans: list[dict[str, Any]]
) -> list[SelfTimeStats]:
    """Per-name self-time aggregates, hottest first.

    A span's self time is its duration minus the summed durations of
    its direct children (clamped at zero: concurrent children -- forked
    workers under one dispatch span -- can overlap past the parent).
    Resource attribution joins in from sample records when present.
    """
    child_seconds: dict[str, float] = {}
    for record in spans:
        parent = record.get("parent_id")
        if parent:
            child_seconds[parent] = child_seconds.get(parent, 0.0) + _duration(record)

    totals: dict[str, list[float]] = {}
    for record in spans:
        name = record.get("name", "?")
        duration = _duration(record)
        own = max(0.0, duration - child_seconds.get(record.get("span_id"), 0.0))
        stats = totals.setdefault(name, [0, 0.0, 0.0])
        stats[0] += 1
        stats[1] += own
        stats[2] += duration

    usage: dict[str, Any] = {}
    if any(r.get("kind") == "resource" for r in records):
        from repro.obs.resources import usage_by_span_name

        usage = usage_by_span_name(records)

    result = []
    for name, (count, self_seconds, total_seconds) in totals.items():
        attributed = usage.get(name)
        result.append(
            SelfTimeStats(
                name=name,
                count=int(count),
                self_seconds=self_seconds,
                total_seconds=total_seconds,
                peak_rss_bytes=attributed.peak_rss_bytes if attributed else None,
                cpu_seconds=(
                    attributed.cpu_seconds
                    if attributed and attributed.cpu_seconds > 0
                    else None
                ),
            )
        )
    result.sort(key=lambda s: s.self_seconds, reverse=True)
    return result


def summarize_trace(
    records: Iterable[dict[str, Any]], *, top: int = 10
) -> TraceSummary:
    """Aggregate span records into a :class:`TraceSummary`.

    Spans whose parent record is missing from the trace (a crashed
    writer truncated the file mid-run) are *orphans*: they aggregate
    under the synthetic :data:`ORPHAN_PHASE` phase and their wall time
    counts toward root coverage, so a truncated trace never silently
    loses whole worker subtrees from the attribution.
    """
    records = list(records)
    spans = [r for r in records if "start" in r and "end" in r]
    roots = [r for r in spans if not r.get("parent_id")]
    root = min(roots, key=lambda r: r["start"]) if roots else None

    present_ids = {r.get("span_id") for r in spans}
    orphan_ids = {
        r.get("span_id")
        for r in spans
        if r.get("parent_id") and r["parent_id"] not in present_ids
    }

    root_seconds = _duration(root) if root else 0.0
    coverage = 0.0
    if root is not None and root_seconds > 0:
        child_total = sum(
            _duration(r)
            for r in spans
            if r.get("parent_id") == root["span_id"]
            or r.get("span_id") in orphan_ids
        )
        coverage = min(1.0, child_total / root_seconds)

    def _phase_key(record: dict[str, Any]) -> str:
        if record.get("span_id") in orphan_ids:
            return ORPHAN_PHASE
        return _phase(record.get("name", "?"))

    return TraceSummary(
        self_times=_self_times(records, spans),
        spans=len(spans),
        processes=len({r.get("pid") for r in spans}),
        root=root,
        root_seconds=root_seconds,
        coverage=coverage,
        orphaned=len(orphan_ids),
        phases=_aggregate(spans, _phase_key),
        names=_aggregate(spans, lambda record: record.get("name", "?")),
        slowest=sorted(spans, key=_duration, reverse=True)[:top],
    )
