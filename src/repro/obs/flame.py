"""Flame output: folded stacks, ASCII icicles, and speedscope export.

Span records already form a caller/callee tree (parent ids link every
span under its dispatching span, across process boundaries).  This
module folds that tree into the three flame representations the
``repro trace`` CLI serves:

* :func:`fold_stacks` / :func:`format_folded` -- Brendan-Gregg folded
  stacks (``root;wave;node:T1 1234``), one line per unique root-to-span
  path with the span's *self* time (wall time not covered by child
  spans) in integer microseconds.  Output is sorted, so the same trace
  always folds to byte-identical text;
* :func:`render_icicle` -- a top-down ASCII icicle for ``repro trace
  summary --flame``: the root span occupies the full configured width
  and every descendant's bar is positioned and sized by its share of
  the root's wall time;
* :func:`speedscope_document` -- the speedscope JSON file format
  (https://www.speedscope.app/file-format-schema.json), one evented
  profile per recording process, loadable at https://speedscope.app.

Orphaned spans -- records whose parent was lost to a truncated trace --
are rooted under a synthetic :data:`ORPHAN_FRAME` so their time stays
visible instead of silently vanishing (mirroring ``summarize_trace``'s
``(orphaned)`` phase).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable

#: Synthetic frame adopting spans whose parent record is missing.
ORPHAN_FRAME = "(orphaned)"


def _duration(record: dict[str, Any]) -> float:
    return max(0.0, record.get("end", 0.0) - record.get("start", 0.0))


@dataclasses.dataclass
class _Node:
    """One span in the reconstructed caller/callee tree."""

    record: dict[str, Any]
    children: list["_Node"] = dataclasses.field(default_factory=list)

    @property
    def name(self) -> str:
        return self.record.get("name", "?")

    @property
    def start(self) -> float:
        return self.record.get("start", 0.0)

    @property
    def end(self) -> float:
        return self.record.get("end", 0.0)

    @property
    def seconds(self) -> float:
        return _duration(self.record)


def build_tree(
    records: Iterable[dict[str, Any]],
) -> tuple[list[_Node], list[_Node]]:
    """Reconstruct the span tree: ``(roots, orphans)``.

    Roots are spans with no parent id; orphans are spans whose parent id
    points at a record missing from the trace (the truncated-trace
    case).  Children are sorted by start time, then span id, so the tree
    -- and everything folded from it -- is deterministic.
    """
    spans = [r for r in records if "start" in r and "end" in r]
    nodes = {r["span_id"]: _Node(r) for r in spans if "span_id" in r}
    roots: list[_Node] = []
    orphans: list[_Node] = []
    for record in spans:
        node = nodes.get(record.get("span_id"))
        if node is None:  # span without an id: treat as its own root
            roots.append(_Node(record))
            continue
        parent_id = record.get("parent_id")
        if not parent_id:
            roots.append(node)
        elif parent_id in nodes:
            nodes[parent_id].children.append(node)
        else:
            orphans.append(node)
    order = lambda n: (n.start, str(n.record.get("span_id", "")))  # noqa: E731
    for node in nodes.values():
        node.children.sort(key=order)
    roots.sort(key=order)
    orphans.sort(key=order)
    return roots, orphans


def fold_stacks(
    records: Iterable[dict[str, Any]],
) -> list[tuple[tuple[str, ...], float]]:
    """Fold span records into ``(stack, self_seconds)`` pairs.

    Each pair is a root-to-span name path and the span's *self* time:
    its wall time minus the wall time of its direct children (clamped at
    zero, so overlapping child clocks never go negative).  Identical
    stacks (same-named siblings, repeated waves) merge by summing.
    Orphaned spans fold under a leading :data:`ORPHAN_FRAME` frame.
    Pairs come back sorted by stack, so folding is deterministic.
    """
    roots, orphans = build_tree(records)
    totals: dict[tuple[str, ...], float] = {}

    def walk(node: _Node, prefix: tuple[str, ...]) -> None:
        stack = prefix + (node.name,)
        child_seconds = sum(child.seconds for child in node.children)
        self_seconds = max(0.0, node.seconds - child_seconds)
        totals[stack] = totals.get(stack, 0.0) + self_seconds
        for child in node.children:
            walk(child, stack)

    for root in roots:
        walk(root, ())
    for orphan in orphans:
        walk(orphan, (ORPHAN_FRAME,))
    return sorted(totals.items())


def format_folded(records: Iterable[dict[str, Any]]) -> str:
    """Folded-stacks text: ``frame;frame;frame <microseconds>`` lines.

    Values are integer microseconds; zero-self-time stacks are kept (a
    pure dispatcher frame is still part of the hierarchy).  The same
    trace always formats to byte-identical text.
    """
    lines = [
        f"{';'.join(stack)} {int(round(seconds * 1_000_000))}"
        for stack, seconds in fold_stacks(records)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def parse_folded(text: str) -> list[tuple[tuple[str, ...], int]]:
    """Parse folded-stacks text back into ``(stack, microseconds)`` pairs.

    The inverse of :func:`format_folded` (used by the round-trip tests
    and anyone feeding the export into flamegraph.pl-style tooling).
    Malformed lines are skipped.
    """
    pairs: list[tuple[tuple[str, ...], int]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack_text, _, value = line.rpartition(" ")
        if not stack_text:
            continue
        try:
            pairs.append((tuple(stack_text.split(";")), int(value)))
        except ValueError:
            continue
    return pairs


def render_icicle(
    records: Iterable[dict[str, Any]],
    *,
    width: int = 80,
    max_depth: int = 6,
) -> str:
    """An ASCII icicle of the span tree, one row per depth.

    The root span's bar spans exactly ``width`` columns -- the full bar
    *is* the root's wall time -- and each descendant occupies the
    columns matching its start/end offsets within the root.  Bars start
    with ``|``, carry the (truncated) span name, and pad with ``-``.
    Sub-column spans collapse into a bare ``|`` tick.
    """
    spans = [r for r in records if "start" in r and "end" in r]
    roots, _ = build_tree(spans)
    if not roots:
        return "(empty trace: nothing to render)"
    root = min(roots, key=lambda n: (n.start, str(n.record.get("span_id", ""))))
    root_seconds = root.seconds
    header = (
        f"icicle: {width} cols = {root_seconds * 1000:.1f} ms "
        f"(root {root.name})"
    )
    if root_seconds <= 0:
        return header + "\n(zero-length root: nothing to render)"

    def column(moment: float) -> int:
        offset = (moment - root.start) / root_seconds
        return max(0, min(width, int(round(offset * width))))

    rows: list[str] = []
    level = [root]
    for _depth in range(max_depth):
        if not level:
            break
        cells = [" "] * width
        cursor = 0
        for node in level:
            lo = max(column(node.start), cursor)
            hi = max(column(node.end), lo + 1)
            if lo >= width:
                break
            hi = min(hi, width)
            label = ("|" + node.name)[: hi - lo]
            bar = label + "-" * (hi - lo - len(label))
            cells[lo:hi] = list(bar)
            cursor = hi
        rows.append("".join(cells).rstrip())
        level = [child for node in level for child in node.children]
    return "\n".join([header] + rows)


def speedscope_document(
    records: Iterable[dict[str, Any]],
    *,
    name: str = "repro trace",
) -> dict[str, Any]:
    """Span records -> a speedscope JSON document.

    One ``evented`` profile per recording process (ordered by pid), all
    sharing one frame table.  Timestamps rebase to the earliest span and
    stay in seconds; child intervals are clamped inside their parent so
    the open/close events are always well nested, which the speedscope
    importer requires.  Spans whose parent lives in another process (the
    cross-process propagation case) open a new top-level stack in their
    own process's profile.
    """
    spans = [r for r in records if "start" in r and "end" in r]
    frame_names = sorted({r.get("name", "?") for r in spans})
    frame_index = {frame: i for i, frame in enumerate(frame_names)}
    document: dict[str, Any] = {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": [{"name": frame} for frame in frame_names]},
        "profiles": [],
        "name": name,
        "activeProfileIndex": 0,
        "exporter": "repro.obs.flame",
    }
    if not spans:
        return document

    epoch = min(r["start"] for r in spans)
    by_pid: dict[int, list[dict[str, Any]]] = {}
    for record in spans:
        by_pid.setdefault(record.get("pid", 0), []).append(record)

    for pid in sorted(by_pid):
        pid_spans = by_pid[pid]
        roots, orphans = build_tree(pid_spans)
        events: list[dict[str, Any]] = []
        end_value = 0.0

        def emit(node: _Node, lo: float, hi: float) -> None:
            nonlocal end_value
            start = min(max(node.start, lo), hi)
            end = min(max(node.end, start), hi)
            end_value = max(end_value, end - epoch)
            index = frame_index[node.name]
            events.append({"type": "O", "frame": index, "at": start - epoch})
            for child in node.children:
                emit(child, start, end)
            events.append({"type": "C", "frame": index, "at": end - epoch})

        for top in sorted(
            roots + orphans,
            key=lambda n: (n.start, str(n.record.get("span_id", ""))),
        ):
            emit(top, top.start, max(top.end, top.start))
        document["profiles"].append(
            {
                "type": "evented",
                "name": f"pid {pid}",
                "unit": "seconds",
                "startValue": 0.0,
                "endValue": end_value,
                "events": events,
            }
        )
    return document
