"""Curated Apache study corpus: 50 faults (Table 1, Figure 1).

Table 1 of the paper: 36 environment-independent, 7
environment-dependent-nontransient, 7 environment-dependent-transient.
All 14 environment-dependent faults below are the ones the paper itemises
in Section 5.1, verbatim in substance.  The five itemised
environment-independent examples are included; the remaining 31
environment-independent faults are synthesized in the same style
(realistic Apache 1.2/1.3-era defects) to fill the paper's per-release
totals for Figure 1: totals grow with newer releases while the
environment-independent proportion stays roughly constant.
"""

from __future__ import annotations

import datetime as _dt
import functools

from repro.bugdb.enums import Application, FaultClass, Severity, Symptom, TriggerKind
from repro.corpus.studyspec import StudyCorpus, StudyFault

_EI = FaultClass.ENV_INDEPENDENT
_EDN = FaultClass.ENV_DEP_NONTRANSIENT
_EDT = FaultClass.ENV_DEP_TRANSIENT

#: Apache production releases covered by the study, with release dates.
RELEASES: tuple[tuple[str, _dt.date], ...] = (
    ("1.2.4", _dt.date(1997, 8, 22)),
    ("1.2.6", _dt.date(1998, 2, 24)),
    ("1.3.0", _dt.date(1998, 6, 6)),
    ("1.3.1", _dt.date(1998, 7, 19)),
    ("1.3.2", _dt.date(1998, 9, 21)),
    ("1.3.3", _dt.date(1998, 10, 9)),
    ("1.3.4", _dt.date(1999, 1, 11)),
)

_RELEASE_DATES = dict(RELEASES)


def _fault(
    number: int,
    fault_class: FaultClass,
    version: str,
    component: str,
    synopsis: str,
    description: str,
    how_to_repeat: str,
    fix_summary: str,
    *,
    symptom: Symptom = Symptom.CRASH,
    trigger: TriggerKind = TriggerKind.NONE,
    workload_timing: bool = False,
    reproducible: bool = True,
    workload_op: str = "",
    days_after_release: int = 30,
) -> StudyFault:
    tag = {_EI: "EI", _EDN: "EDN", _EDT: "EDT"}[fault_class]
    return StudyFault(
        fault_id=f"APACHE-{tag}-{number:02d}",
        application=Application.APACHE,
        component=component,
        version=version,
        date=_RELEASE_DATES[version] + _dt.timedelta(days=days_after_release),
        synopsis=synopsis,
        description=description,
        how_to_repeat=how_to_repeat,
        fix_summary=fix_summary,
        symptom=symptom,
        trigger=trigger,
        fault_class=fault_class,
        workload_dependent_timing=workload_timing,
        reproducible=reproducible,
        workload_op=workload_op or f"apache-op-{tag.lower()}-{number:02d}",
        severity=Severity.CRITICAL if symptom is Symptom.CRASH else Severity.SERIOUS,
    )


# --------------------------------------------------------------------- #
# The 7 environment-dependent-nontransient faults (Section 5.1).
# --------------------------------------------------------------------- #

_EDN_FAULTS = (
    _fault(
        1, _EDN, "1.2.6", "general",
        "httpd degrades and dies under sustained high load",
        "Under high load the server exhibits an unknown resource leak; "
        "memory use climbs until the server stops answering requests. "
        "The leaked resources are part of saved application state and "
        "persist across a state-preserving restart.",
        "Drive the server at peak request rate for several hours and watch "
        "its resident size grow until it fails.",
        "Root cause never isolated; the leak was worked around by periodic "
        "full restarts.",
        symptom=Symptom.RESOURCE_LEAK,
        trigger=TriggerKind.RESOURCE_LEAK,
        workload_op="sustained-load",
        days_after_release=40,
    ),
    _fault(
        2, _EDN, "1.3.0", "os-unix",
        "server fails with too many open files",
        "A lack of file descriptors makes accept() and open() fail; the "
        "server returns errors for every request. A truly generic recovery "
        "mechanism recovers all application resources including its file "
        "descriptors, so the condition persists during recovery.",
        "Lower the descriptor ulimit or let another daemon consume "
        "descriptors until httpd runs out.",
        "Documented minimum descriptor limits; added clearer error logging.",
        symptom=Symptom.ERROR_RETURN,
        trigger=TriggerKind.FILE_DESCRIPTOR_EXHAUSTION,
        workload_op="serve-many-files",
        days_after_release=25,
    ),
    _fault(
        3, _EDN, "1.3.1", "mod_proxy",
        "proxy fails once its disk cache gets full",
        "The disk cache used by the application gets full and the "
        "application cannot store any more temporary files; every proxied "
        "request then fails with an error.",
        "Set ProxyCacheSize near the partition size and fetch large objects "
        "until the cache gets full.",
        "Added cache garbage collection tuning notes; failure mode remains "
        "until space is freed.",
        symptom=Symptom.ERROR_RETURN,
        trigger=TriggerKind.DISK_CACHE_FULL,
        workload_op="proxy-fetch",
        days_after_release=35,
    ),
    _fault(
        4, _EDN, "1.3.2", "logging",
        "httpd dies when the access log hits the 2GB boundary",
        "The size of the log file grows greater than the maximum allowed "
        "file size on the platform, and the write path does not handle the "
        "failure; the server exits.",
        "Run with heavy traffic until access_log reaches the platform file "
        "size limit.",
        "Advised log rotation; large-file support arrived in a later release.",
        symptom=Symptom.CRASH,
        trigger=TriggerKind.FILE_SIZE_LIMIT,
        workload_op="log-append",
        days_after_release=50,
    ),
    _fault(
        5, _EDN, "1.3.3", "core",
        "full file system makes the server fail all requests",
        "A full file system prevents the server from writing logs and "
        "temporary files; requests fail and the condition persists until "
        "an administrator frees disk space.",
        "Fill the partition holding the logs, then issue any request.",
        "None; the environment must be repaired.",
        symptom=Symptom.ERROR_RETURN,
        trigger=TriggerKind.DISK_FULL,
        workload_op="log-append-fs",
        days_after_release=20,
    ),
    _fault(
        6, _EDN, "1.3.4", "os-unix",
        "requests fail after an unknown network resource is exhausted",
        "After days of uptime an unknown network resource is exhausted and "
        "new connections fail. Restarting the application alone does not "
        "clear the condition.",
        "Long-running server under production traffic; exact sequence "
        "unknown.",
        "Never isolated; suspected kernel-side buffer depletion.",
        symptom=Symptom.ERROR_RETURN,
        trigger=TriggerKind.NETWORK_RESOURCE_EXHAUSTION,
        workload_op="accept-connection",
        reproducible=False,
        days_after_release=30,
    ),
    _fault(
        7, _EDN, "1.3.4", "os-unix",
        "server dies when the PCMCIA network card is removed",
        "Removal of the PCMCIA network card from the computer while httpd "
        "is running makes every socket operation fail; the server exits "
        "and cannot restart until the card is reinserted.",
        "Start httpd on a laptop, then eject the PCMCIA network card.",
        "None; hardware must be reinserted.",
        symptom=Symptom.CRASH,
        trigger=TriggerKind.HARDWARE_REMOVAL,
        workload_op="accept-connection-nic",
        days_after_release=45,
    ),
)

# --------------------------------------------------------------------- #
# The 7 environment-dependent-transient faults (Section 5.1).
# --------------------------------------------------------------------- #

_EDT_FAULTS = (
    _fault(
        1, _EDT, "1.2.4", "mod_log",
        "httpd dies when a DNS call returns an error",
        "A call to the Domain Name Service returns an error during "
        "hostname logging and the result is not checked; the child "
        "crashes. This is likely to change when the DNS server is "
        "restarted.",
        "Point the resolver at a DNS server that answers with SERVFAIL and "
        "request any page with hostname logging on.",
        "Check the resolver return value before using the result.",
        symptom=Symptom.CRASH,
        trigger=TriggerKind.DNS_ERROR,
        workload_op="dns-lookup",
        days_after_release=30,
    ),
    _fault(
        2, _EDT, "1.3.0", "core",
        "hung children consume all available slots in the process table",
        "Child processes hang during peak load and consume all available "
        "slots in the kernel's process table; no new work can be forked. "
        "As part of automatic recovery, the recovery system is likely to "
        "kill all processes associated with the application.",
        "Drive peak load until children hang and fork() fails for the "
        "whole machine.",
        "Hang cause fixed in a later release; recovery by killing children.",
        symptom=Symptom.HANG,
        trigger=TriggerKind.PROCESS_TABLE_FULL,
        workload_op="fork-child",
        days_after_release=28,
    ),
    _fault(
        3, _EDT, "1.3.1", "core",
        "child segfaults when the user presses stop mid-download",
        "When the user presses stop on the browser in the midst of a page "
        "download, the child handling the transfer dereferences a freed "
        "buffer and crashes. The fault depends on the exact timing of the "
        "requested workload, which is not likely to be repeated during "
        "recovery.",
        "Start a large download and press stop while the transfer is in "
        "flight; timing dependent.",
        "Guard the connection-abort path against use after free.",
        symptom=Symptom.CRASH,
        trigger=TriggerKind.WORKLOAD_TIMING,
        workload_timing=True,
        workload_op="abort-download",
        days_after_release=33,
    ),
    _fault(
        4, _EDT, "1.3.2", "core",
        "restart fails because hung children hang onto required network ports",
        "Hung child processes hang onto required network ports, so a "
        "restarted parent cannot bind. The hung children will likely be "
        "killed during recovery and the ports will be freed.",
        "Hang a child holding the listening socket, then restart the "
        "parent.",
        "SO_REUSEADDR plus killing stale children.",
        symptom=Symptom.ERROR_RETURN,
        trigger=TriggerKind.PORT_IN_USE,
        workload_op="bind-port",
        days_after_release=31,
    ),
    _fault(
        5, _EDT, "1.3.3", "mod_log",
        "requests time out on slow Domain Name Service responses",
        "A slow Domain Name Service response stalls request processing "
        "until clients give up. The cause of the slow DNS response will "
        "likely be fixed eventually without application-specific recovery, "
        "either by restarting DNS, or by fixing the network.",
        "Add seconds of artificial latency to the resolver and request any "
        "page with hostname logging enabled.",
        "Made hostname lookups optional and asynchronous later.",
        symptom=Symptom.HANG,
        trigger=TriggerKind.DNS_SLOW,
        workload_op="dns-lookup-slow",
        days_after_release=26,
    ),
    _fault(
        6, _EDT, "1.3.4", "core",
        "transfers stall and die over a slow network connection",
        "A slow network connection makes transfers stall until timeouts "
        "kill the children mid-request. The network may be fixed by the "
        "time the server recovers.",
        "Throttle the link below a few kilobits per second and fetch a "
        "large page.",
        "Tuned timeouts; underlying condition is environmental.",
        symptom=Symptom.ERROR_RETURN,
        trigger=TriggerKind.NETWORK_SLOW,
        workload_op="send-response",
        days_after_release=38,
    ),
    _fault(
        7, _EDT, "1.3.4", "mod_ssl",
        "startup blocks on /dev/random without enough entropy",
        "A lack of events to generate sufficient random numbers in "
        "/dev/random blocks key generation; the server appears hung. "
        "During recovery, it is likely that more events will be generated "
        "for /dev/random.",
        "Start the server on an idle headless machine right after boot.",
        "Allowed /dev/urandom as an entropy source.",
        symptom=Symptom.HANG,
        trigger=TriggerKind.ENTROPY_EXHAUSTION,
        workload_op="generate-key",
        days_after_release=42,
    ),
)

# --------------------------------------------------------------------- #
# 36 environment-independent faults.  The first five are the examples the
# paper itemises in Section 5.1; the rest are synthesized in-period
# defects distributed to match Figure 1's per-release totals.
# --------------------------------------------------------------------- #

_EI_SPECS: tuple[tuple[str, str, str, str, str, str, Symptom, str], ...] = (
    # (version, component, synopsis, description, how_to_repeat, fix, symptom, op)
    (
        "1.2.4", "core",
        "dies with a segfault when the submitted URL is very long",
        "The server dies with a segmentation fault whenever a browser "
        "submits a very long URL. The problem is a result of an overflow "
        "in the hash calculation over the request string.",
        "Request a URL of several thousand characters; the child servicing "
        "it crashes every time.",
        "Bounds-checked the hash calculation.",
        Symptom.CRASH, "get-long-url",
    ),
    (
        "1.2.6", "os-solaris",
        "SIGHUP kills apache on Solaris and Unixware",
        "Sending SIGHUP kills apache on Solaris and Unixware. Normally, "
        "this should gracefully restart and rejuvenate the server instead "
        "of terminating it.",
        "kill -HUP the parent process on Solaris; the whole server exits.",
        "Fixed the platform-specific restart handler.",
        Symptom.CRASH, "sighup-restart",
    ),
    (
        "1.3.0", "core",
        "dumps core on Linux/PPC if handed a nonexistent URL",
        "The server dumps core on Linux/PPC if handed a nonexistent URL. "
        "ap_log_rerror() uses a va_list variable twice without an "
        "intervening va_end/va_start combination.",
        "Request any URL that does not exist on a Linux/PPC build.",
        "Added the va_end/va_start pair between the two uses.",
        Symptom.CRASH, "get-missing-url",
    ),
    (
        "1.3.1", "mod_autoindex",
        "crash when listing a directory with zero entries",
        "This error occurs when directory listing is turned on and the "
        "directory has zero entries. The palloc() call used in "
        "index_directory() doesn't handle size zero properly.",
        "Enable indexing and request an empty directory.",
        "Handled the zero-entry case before calling palloc().",
        Symptom.CRASH, "list-empty-dir",
    ),
    (
        "1.3.2", "shmem",
        "shared memory segment grows past 100 Mbytes and HUP freezes the server",
        "The shared memory segment keeps growing and reaches sizes "
        "exceeding 100 Mbytes in less than 5 hours of operation. When a "
        "HUP signal is sent to rotate logs, the server freezes or dies. "
        "This is caused by memory leaks in the application itself, so the "
        "failure repeats deterministically with the workload.",
        "Run the scoreboard workload for a few hours, then send HUP.",
        "Fixed the allocator to release per-request pools.",
        Symptom.RESOURCE_LEAK, "scoreboard-grow",
    ),
    (
        "1.2.4", "mod_cgi",
        "child crashes on CGI output with no Content-Type header",
        "A CGI script that prints a body without any Content-Type header "
        "makes the child dereference a null header table entry and crash.",
        "Install a one-line CGI that echoes text with no headers and "
        "request it.",
        "Defaulted the content type when the script omits it.",
        Symptom.CRASH, "run-cgi",
    ),
    (
        "1.2.6", "mod_include",
        "infinite recursion on self-including SSI page",
        "A server-side-include page that includes itself recurses until "
        "the child exhausts its stack and crashes.",
        "Create page.shtml containing an include of page.shtml and "
        "request it.",
        "Added an include-depth limit.",
        Symptom.CRASH, "ssi-include",
    ),
    (
        "1.2.6", "mod_alias",
        "redirect with trailing percent sign crashes the child",
        "A Redirect target ending in a lone percent character makes the "
        "escaping code read past the end of the string.",
        "Configure Redirect to a URL ending in '%' and request the source "
        "path.",
        "Validated escape sequences during configuration parsing.",
        Symptom.CRASH, "redirect",
    ),
    (
        "1.3.0", "mod_rewrite",
        "RewriteMap with empty value segfaults",
        "A rewrite map entry whose value field is empty causes a null "
        "pointer dereference during substitution.",
        "Add a map line with a key and no value, reference it from a "
        "RewriteRule, request a matching URL.",
        "Rejected empty map values at load time.",
        Symptom.CRASH, "rewrite-url",
    ),
    (
        "1.3.0", "mod_negotiation",
        "type map with zero variants crashes negotiation",
        "Content negotiation over a .var file listing zero variants "
        "divides by the variant count and crashes.",
        "Install an empty type map and request it.",
        "Checked the variant count before scoring.",
        Symptom.CRASH, "negotiate",
    ),
    (
        "1.3.1", "mod_userdir",
        "request for ~ with no username crashes the child",
        "A request for '/~' with no username following makes the userdir "
        "translation index one byte before the path buffer.",
        "Request the literal path '/~/'.",
        "Bounds-checked the username extraction.",
        Symptom.CRASH, "userdir",
    ),
    (
        "1.3.1", "core",
        "merging of Options directives drops symlink checks",
        "Section merging applies Options in the wrong order, silently "
        "re-enabling FollowSymLinks that a narrower section disabled, "
        "letting requests escape the document root.",
        "Disable FollowSymLinks in a subdirectory, place a symlink to / "
        "inside it, request through the link.",
        "Fixed the merge order and added a regression test.",
        Symptom.SECURITY, "follow-symlink",
    ),
    (
        "1.3.1", "mod_status",
        "status page crashes with ExtendedStatus on first request",
        "The extended status handler reads a per-slot request record "
        "before any request has populated it and crashes on the "
        "uninitialized pointer.",
        "Enable ExtendedStatus and fetch /server-status as the very first "
        "request after startup.",
        "Initialized the scoreboard slots at fork time.",
        Symptom.CRASH, "server-status",
    ),
    (
        "1.3.2", "mod_cgi",
        "POST with negative Content-Length hangs the child",
        "A POST whose Content-Length header is negative makes the body "
        "reader loop forever; the child stops responding deterministically.",
        "Send a POST with Content-Length: -1.",
        "Rejected negative lengths during header parsing.",
        Symptom.HANG, "post-cgi",
    ),
    (
        "1.3.2", "core",
        "chunked request with oversized chunk header crashes httpd",
        "A chunked transfer whose chunk-size line exceeds the line buffer "
        "overflows a stack buffer and crashes the child on every request.",
        "Send a chunked POST with a 9000-character chunk-size line.",
        "Bounded the chunk header read.",
        Symptom.CRASH, "chunked-post",
    ),
    (
        "1.3.2", "mod_mime",
        "AddType with empty extension crashes configuration parsing",
        "An AddType directive with an empty extension argument makes the "
        "server dereference a null token during startup, so the server "
        "cannot start at all.",
        "Add 'AddType text/html \"\"' to the configuration and start httpd.",
        "Validated directive arguments.",
        Symptom.CRASH, "load-config-mime",
    ),
    (
        "1.3.2", "mod_imap",
        "imagemap with point outside any area crashes",
        "An imagemap click whose coordinates fall outside every defined "
        "area and with no default entry dereferences a null region record.",
        "Click outside all areas of a map file lacking a default line.",
        "Fell back to a 204 response when no area matches.",
        Symptom.CRASH, "imagemap-click",
    ),
    (
        "1.3.3", "mod_proxy",
        "proxying a URL with embedded whitespace crashes",
        "A proxied request whose URL contains an unescaped space splits "
        "the request line incorrectly and the proxy dereferences a null "
        "host field.",
        "Fetch 'GET http://example.com/a b HTTP/1.0' through the proxy.",
        "Escaped the URL before parsing.",
        Symptom.CRASH, "proxy-fetch-bad-url",
    ),
    (
        "1.3.3", "mod_digest",
        "malformed Authorization header crashes digest auth",
        "A digest Authorization header missing the nonce field makes the "
        "verifier pass NULL to strcmp and crash, on every such request.",
        "Send 'Authorization: Digest username=\"x\"' with no nonce.",
        "Checked all required fields before verification.",
        Symptom.CRASH, "digest-auth",
    ),
    (
        "1.3.3", "core",
        "HTTP/0.9 request for a directory returns corrupted output",
        "A HTTP/0.9 request for a directory mixes the index page with raw "
        "header bytes, corrupting every response to such requests.",
        "Send 'GET /dir' with no protocol version.",
        "Suppressed headers on 0.9 responses.",
        Symptom.DATA_CORRUPTION, "http09-get",
    ),
    (
        "1.3.3", "mod_setenvif",
        "SetEnvIf with unbalanced bracket expression crashes startup",
        "A SetEnvIf regular expression with an unbalanced bracket makes "
        "the bundled regex compiler read past the pattern end and crash "
        "during configuration loading.",
        "Add 'SetEnvIf User-Agent [ broken' and start the server.",
        "Surfaced the regex compile error instead of crashing.",
        Symptom.CRASH, "load-config-setenvif",
    ),
    (
        "1.3.3", "mod_expires",
        "ExpiresByType with bad syntax yields corrupt Expires headers",
        "An ExpiresByType directive with a malformed interval produces "
        "garbage Expires timestamps on every matching response, breaking "
        "client caching.",
        "Configure 'ExpiresByType text/html Z99' and fetch any page.",
        "Rejected malformed intervals at startup.",
        Symptom.DATA_CORRUPTION, "get-page-expires",
    ),
    (
        "1.3.3", "mod_auth",
        "htpasswd file without colon crashes authentication",
        "A password file line lacking the colon separator makes the "
        "authenticator index past the line end and crash on every "
        "protected request.",
        "Create an htpasswd line with no colon and request the protected "
        "area.",
        "Skipped malformed lines with a logged warning.",
        Symptom.CRASH, "basic-auth",
    ),
    (
        "1.3.4", "core",
        "zero-length If-Modified-Since header crashes the child",
        "An If-Modified-Since header with an empty value makes the date "
        "parser dereference the terminator and crash.",
        "Send 'If-Modified-Since:' with no value.",
        "Treated empty date headers as absent.",
        Symptom.CRASH, "conditional-get",
    ),
    (
        "1.3.4", "mod_headers",
        "Header unset of a header set in the same scope corrupts the table",
        "Unsetting a header that was added in the same configuration "
        "scope leaves a dangling table entry; later requests emit a "
        "corrupted header block.",
        "Add and unset the same header in one Directory block, then fetch "
        "twice.",
        "Fixed table entry removal.",
        Symptom.DATA_CORRUPTION, "get-page-headers",
    ),
    (
        "1.3.4", "mod_speling",
        "spelling correction on dotfile-only directory crashes",
        "The spelling-correction scan over a directory containing only "
        "dotfiles underflows its candidate array and crashes.",
        "Enable CheckSpelling, request a misspelled name in a dotfile-only "
        "directory.",
        "Guarded the empty-candidate case.",
        Symptom.CRASH, "get-misspelled",
    ),
    (
        "1.3.4", "mod_info",
        "server-info handler crashes on modules with no directives",
        "The info handler iterates a module's directive table without "
        "checking for the NULL table and crashes when any loaded module "
        "defines no directives.",
        "Load such a module and fetch /server-info.",
        "Checked for NULL directive tables.",
        Symptom.CRASH, "server-info",
    ),
    (
        "1.3.4", "core",
        "Host header with trailing dot bypasses virtual host matching",
        "A Host header ending in a dot fails to match its virtual host "
        "and is served the wrong site's content deterministically.",
        "Send 'Host: www.example.com.' to a name-based virtual host.",
        "Normalized trailing dots before matching.",
        Symptom.ERROR_RETURN, "vhost-get",
    ),
    (
        "1.3.4", "mod_access",
        "deny from partial IP pattern matches wrong addresses",
        "A 'deny from 10.1' pattern is compared by substring, denying "
        "110.1.x.x clients and allowing some 10.1.x.x clients; access "
        "control is wrong for every affected address.",
        "Configure 'deny from 10.1' and connect from 110.1.2.3.",
        "Parsed the pattern as an address prefix.",
        Symptom.SECURITY, "acl-check",
    ),
    (
        "1.3.4", "mod_cgi",
        "environment block overflows with more than 512 variables",
        "A request carrying enough headers to produce more than 512 CGI "
        "environment entries overflows the fixed env array and crashes "
        "the child.",
        "Send a request with 600 X- headers to a CGI resource.",
        "Sized the environment block dynamically.",
        Symptom.CRASH, "run-cgi-many-headers",
    ),
    (
        "1.3.4", "core",
        "keepalive count underflow sends stale responses",
        "The keepalive counter underflows after exactly 256 requests on "
        "one connection, after which responses are served from the wrong "
        "buffer, corrupting output deterministically.",
        "Issue 257 pipelined requests on one connection.",
        "Widened and bounds-checked the counter.",
        Symptom.DATA_CORRUPTION, "keepalive-pipeline",
    ),
    (
        "1.2.6", "mod_dir",
        "DirectoryIndex with absolute path escapes the docroot",
        "A DirectoryIndex entry given as an absolute filesystem path is "
        "served verbatim, exposing files outside the document root on "
        "every matching request.",
        "Set 'DirectoryIndex /etc/passwd' and request the directory.",
        "Restricted index entries to relative paths.",
        Symptom.SECURITY, "dir-index",
    ),
    (
        "1.3.0", "mod_env",
        "PassEnv of an unset variable crashes startup",
        "PassEnv naming a variable absent from the parent environment "
        "dereferences the NULL lookup result during startup, so the "
        "server cannot boot.",
        "Add 'PassEnv NO_SUCH_VAR' and start the server.",
        "Skipped unset variables with a warning.",
        Symptom.CRASH, "load-config-env",
    ),
    (
        "1.3.1", "mod_actions",
        "Action handler loops forever when the handler maps to itself",
        "An Action directive whose target script is handled by the same "
        "action recurses in request processing until the child dies; the "
        "loop is deterministic for the workload.",
        "Map handler x to a script whose extension maps back to x and "
        "request it.",
        "Detected the self-reference and failed the request cleanly.",
        Symptom.CRASH, "action-loop",
    ),
    (
        "1.3.2", "mod_usertrack",
        "cookie parser crashes on cookie without equals sign",
        "A Cookie header containing a token with no '=' makes the tracker "
        "split out a NULL value and crash on strlen.",
        "Send 'Cookie: bare' to a tracked site.",
        "Ignored malformed cookie tokens.",
        Symptom.CRASH, "cookie-get",
    ),
    (
        "1.3.4", "mod_mime_magic",
        "magic detection reads past buffer on 1-byte files",
        "Content-type sniffing of a one-byte file reads a four-byte magic "
        "word past the end of the buffer and crashes reproducibly.",
        "Serve a one-byte file with mime-magic enabled.",
        "Clamped the magic read to the file size.",
        Symptom.CRASH, "get-tiny-file",
    ),
)


@functools.lru_cache(maxsize=1)
def apache_corpus() -> StudyCorpus:
    """The curated Apache corpus (Table 1: 36 / 7 / 7)."""
    ei_faults = tuple(
        _fault(
            index, _EI, version, component, synopsis, description,
            how_to_repeat, fix, symptom=symptom, workload_op=op,
            days_after_release=20 + 3 * index,
        )
        for index, (version, component, synopsis, description, how_to_repeat,
                    fix, symptom, op) in enumerate(_EI_SPECS, start=1)
    )
    return StudyCorpus(
        application=Application.APACHE,
        faults=ei_faults + _EDN_FAULTS + _EDT_FAULTS,
        expected_counts={_EI: 36, _EDN: 7, _EDT: 7},
        raw_report_count=5220,
    )
