"""Noise-report generators: the archive around the study faults.

The paper narrowed big raw archives to small study sets (5220 Apache
reports -> 50; ~500 GNOME reports -> 45; ~44,000 MySQL messages -> 44).
These generators synthesize the surrounding noise so the mining pipeline
has the same narrowing to do.  Every noise report is constructed to fail
at least one of the paper's selection criteria:

* Apache -- below-serious severity, non-production versions, non-impact
  classes (build problems, documentation, enhancement requests), or
  duplicates of a study fault;
* GNOME -- components outside the studied set, low severities, wishlist
  items, or duplicates;
* MySQL -- messages that contain none of the study keywords, replies
  inside study threads, or whole duplicate threads re-reporting a study
  fault (merged by the dedup stage).

Generation is deterministic from a seed.
"""

from __future__ import annotations

import datetime as _dt
import random
from typing import Iterator

from repro.bugdb.enums import Application, Resolution, Severity, Status, Symptom
from repro.bugdb.model import BugReport
from repro.corpus.studyspec import StudyCorpus, StudyFault
from repro.rng import DEFAULT_SEED, make_rng

# Vocabulary is chosen to avoid the MySQL study keywords (crash,
# segmentation, race, died) as whole words, and to avoid the
# trigger-evidence phrases, so noise can never be mistaken for a study
# fault by the downstream stages.

_QUESTION_TOPICS = (
    "how do I configure virtual hosts",
    "what does this warning in the log mean",
    "install fails to find the compiler",
    "documentation typo in the tutorial chapter",
    "build breaks on IRIX with the vendor make",
    "feature request: colored directory listings",
    "performance tuning question for large sites",
    "how to compile with the bundled regex library",
    "license question about bundled libraries",
    "typo in the man page",
    "request: add an option to sort output",
    "startup message is confusing",
    "configure script mis-detects the threading library",
    "makefile ignores CFLAGS from the environment",
    "packaging problem in the binary tarball",
    "wishlist: theme support for the settings dialog",
    "question about upgrading between minor versions",
    "clarify supported platforms in the README",
)

_QUESTION_BODIES = (
    "I looked through the manual but could not find the answer. "
    "Any pointers appreciated.",
    "This is not a defect as far as I can tell, just unclear behavior. "
    "It would help to document it.",
    "The build stops early with a message about a missing header. "
    "Adding the include path by hand works around it.",
    "Everything runs fine, I would simply like the option described "
    "in the subject.",
    "Asking here because the FAQ does not cover this case.",
)

_MINOR_BUG_TOPICS = (
    "cosmetic misalignment in the status output",
    "misleading error message on bad flag",
    "log timestamp uses the wrong timezone abbreviation",
    "help text lists an option twice",
    "trailing whitespace emitted in generated config",
    "progress meter overshoots 100 percent",
    "icon rendered at the wrong size on 8-bit displays",
    "tooltip text truncated in the preferences dialog",
    "version banner shows stale build date",
)

_DEV_VERSION_TOPICS = (
    "current development snapshot fails self-tests",
    "regression in yesterday's development tree",
    "new module in the dev branch returns garbage headers",
)


def _permute_synopsis(synopsis: str, rng: random.Random) -> str:
    """Reword a synopsis the way a second reporter would.

    Keeps the same content words (so duplicate detection by normalized
    token set still matches) but changes the order and adds filler.
    """
    words = synopsis.split()
    rng.shuffle(words)
    return "again: " + " ".join(words)


def _spread_date(base: _dt.date, rng: random.Random) -> _dt.date:
    return base + _dt.timedelta(days=rng.randint(1, 120))


def _noise_count(corpus: StudyCorpus, total_reports: int | None) -> int:
    total = corpus.raw_report_count if total_reports is None else total_reports
    count = total - corpus.total
    if count < 0:
        raise ValueError("total_reports smaller than the study corpus")
    return count


def iter_apache_noise(
    corpus: StudyCorpus,
    *,
    seed: int = DEFAULT_SEED,
    total_reports: int | None = None,
) -> Iterator[BugReport]:
    """Generate Apache noise reports one at a time.

    Yields ``total_reports - len(corpus.faults)`` reports with O(1)
    memory — the streaming archive writers consume this directly, so a
    million-report archive never materializes a report list.
    Deterministic from ``seed``: the RNG call order is identical to the
    legacy list API, so :func:`apache_noise` is exactly
    ``list(iter_apache_noise(...))``.
    """
    rng = make_rng(seed, "apache-noise")
    count = _noise_count(corpus, total_reports)
    versions = corpus.versions()
    for index in range(count):
        kind = rng.random()
        if kind < 0.55:
            yield _question_report(index, Application.APACHE, versions, rng)
        elif kind < 0.80:
            yield _minor_bug_report(index, Application.APACHE, versions, rng)
        elif kind < 0.90:
            yield _dev_version_report(index, Application.APACHE, rng)
        else:
            fault = rng.choice(corpus.faults)
            yield _duplicate_report(index, fault, rng, mark=rng.random() < 0.5)


def apache_noise(
    corpus: StudyCorpus,
    *,
    seed: int = DEFAULT_SEED,
    total_reports: int | None = None,
) -> list[BugReport]:
    """Generate Apache noise reports.

    Args:
        corpus: the curated Apache corpus (duplicates point at its faults).
        seed: deterministic generation seed.
        total_reports: raw archive size including the study faults;
            defaults to the paper's 5220.

    Returns:
        ``total_reports - len(corpus.faults)`` noise reports.
    """
    return list(
        iter_apache_noise(corpus, seed=seed, total_reports=total_reports)
    )


def iter_gnome_noise(
    corpus: StudyCorpus,
    *,
    seed: int = DEFAULT_SEED,
    total_reports: int | None = None,
    study_components: tuple[str, ...] = (),
) -> Iterator[BugReport]:
    """Generate GNOME noise reports one at a time (see
    :func:`iter_apache_noise` for the streaming contract)."""
    rng = make_rng(seed, "gnome-noise")
    count = _noise_count(corpus, total_reports)
    other_components = ("ee", "balsa", "gtop", "gnibbles", "gedit", "esound")
    versions = corpus.versions()
    for index in range(count):
        kind = rng.random()
        if kind < 0.40:
            # High-sounding reports against components outside the study's
            # scope (core + the four applications).
            report = _minor_bug_report(index, Application.GNOME, versions, rng)
            report.component = rng.choice(other_components)
            report.severity = Severity.CRITICAL
            report.symptom = Symptom.CRASH
            report.synopsis = f"{report.component} exits unexpectedly ({index})"
            yield report
        elif kind < 0.70:
            yield _question_report(index, Application.GNOME, versions, rng)
        elif kind < 0.88:
            report = _minor_bug_report(index, Application.GNOME, versions, rng)
            if study_components:
                report.component = rng.choice(study_components)
            yield report
        else:
            fault = rng.choice(corpus.faults)
            yield _duplicate_report(index, fault, rng, mark=rng.random() < 0.5)


def gnome_noise(
    corpus: StudyCorpus,
    *,
    seed: int = DEFAULT_SEED,
    total_reports: int | None = None,
    study_components: tuple[str, ...] = (),
) -> list[BugReport]:
    """Generate GNOME noise reports (components outside the study set,
    low severities, wishlist items, duplicates)."""
    return list(
        iter_gnome_noise(
            corpus,
            seed=seed,
            total_reports=total_reports,
            study_components=study_components,
        )
    )


def _question_report(
    index: int,
    application: Application,
    versions: list[str],
    rng: random.Random,
) -> BugReport:
    topic = rng.choice(_QUESTION_TOPICS)
    return BugReport(
        report_id=f"NOISE-Q-{index:05d}",
        application=application,
        component="general",
        version=rng.choice(versions),
        date=_spread_date(_dt.date(1998, 6, 1), rng),
        reporter=f"user{rng.randint(1, 4000)}@example.net",
        synopsis=topic,
        severity=rng.choice((Severity.ENHANCEMENT, Severity.NON_CRITICAL)),
        status=Status.CLOSED,
        resolution=Resolution.INVALID,
        symptom=None,
        description=rng.choice(_QUESTION_BODIES),
        how_to_repeat="",
    )


def _minor_bug_report(
    index: int,
    application: Application,
    versions: list[str],
    rng: random.Random,
) -> BugReport:
    topic = rng.choice(_MINOR_BUG_TOPICS)
    return BugReport(
        report_id=f"NOISE-M-{index:05d}",
        application=application,
        component="general",
        version=rng.choice(versions),
        date=_spread_date(_dt.date(1998, 6, 1), rng),
        reporter=f"user{rng.randint(1, 4000)}@example.net",
        synopsis=topic,
        severity=Severity.NON_CRITICAL,
        status=Status.CLOSED,
        resolution=Resolution.FIXED,
        symptom=None,
        description="Small annoyance, does not affect operation.",
        how_to_repeat="See synopsis.",
    )


def _dev_version_report(
    index: int,
    application: Application,
    rng: random.Random,
) -> BugReport:
    topic = rng.choice(_DEV_VERSION_TOPICS)
    return BugReport(
        report_id=f"NOISE-D-{index:05d}",
        application=application,
        component="general",
        version="1.3b-dev",
        date=_spread_date(_dt.date(1998, 6, 1), rng),
        reporter=f"dev{rng.randint(1, 400)}@example.net",
        synopsis=topic,
        severity=Severity.CRITICAL,
        status=Status.OPEN,
        symptom=Symptom.CRASH,
        description="Seen only on the development snapshot, not a release.",
        how_to_repeat="Build the current snapshot and run the test suite.",
        is_production_version=False,
    )


def _duplicate_report(
    index: int,
    fault: StudyFault,
    rng: random.Random,
    *,
    mark: bool,
) -> BugReport:
    """A re-report of a study fault.

    Args:
        mark: if True, the triager marked it a duplicate (``duplicate_of``
            set); if False it is unmarked and the dedup stage must catch
            it by synopsis similarity.
    """
    return BugReport(
        report_id=f"NOISE-DUP-{index:05d}",
        application=fault.application,
        component=fault.component,
        version=fault.version,
        date=fault.date + _dt.timedelta(days=rng.randint(2, 60)),
        reporter=f"user{rng.randint(1, 4000)}@example.net",
        synopsis=_permute_synopsis(fault.synopsis, rng),
        severity=fault.severity,
        status=Status.CLOSED,
        resolution=Resolution.DUPLICATE if mark else Resolution.FIXED,
        symptom=fault.symptom,
        description="Looks the same as an earlier report. " + fault.description,
        how_to_repeat=fault.how_to_repeat,
        duplicate_of=fault.fault_id if mark else None,
    )
