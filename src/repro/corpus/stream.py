"""Streaming archive generation: million-report archives, bounded memory.

The legacy renderers (:mod:`repro.corpus.render`) materialize every
report, shuffle the full list, and join one giant string — fine at the
paper's scale, impossible at 1M+ reports.  This module writes the same
archive *formats* record-by-record:

* :func:`iter_apache_reports` / :func:`iter_gnome_reports` /
  :func:`iter_mysql_messages` — generator record streams combining the
  curated study faults with the noise/chatter generators.  Noise
  generation is byte-identical to the legacy list APIs (same RNG call
  order); only the *interleaving* differs, since a true global shuffle
  requires materializing the list.  Study faults land at seeded random
  positions (Apache/GNOME) or threads pass through a seeded block
  shuffle (MySQL), so large archives still interleave signal and noise.
* :func:`write_records` — chunked archive writer: renders each record
  and emits it with the format's separator, producing bytes identical
  to ``render_archive`` of the same record sequence, at O(record)
  memory.
* :func:`write_archive` — the convenience that ties both together, the
  scale benchmark's and CI's way to mint a multi-GB archive.
"""

from __future__ import annotations

import dataclasses
import os
import random
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.bugdb import debbugs, gnats, mbox
from repro.bugdb.enums import Application
from repro.bugdb.model import BugReport
from repro.corpus.noise import iter_apache_noise, iter_gnome_noise
from repro.corpus.render import _chatter_thread, _duplicate_thread, fault_thread
from repro.corpus.studyspec import StudyCorpus
from repro.rng import DEFAULT_SEED, make_rng

#: Per-application (record renderer, separator) pairs.  Joining rendered
#: records with the separator and a trailing newline reproduces
#: ``render_archive`` byte-for-byte.
_WRITERS: dict[Application, tuple[Callable[[Any], str], str]] = {
    Application.APACHE: (gnats.render_pr, "\n" + "=" * 72 + "\n"),
    Application.GNOME: (debbugs.render_report, "\n\n\x0c\n"),
    Application.MYSQL: (mbox.render_message, "\n\n"),
}

DEFAULT_SHUFFLE_BUFFER = 4096


@dataclasses.dataclass(frozen=True)
class ArchiveWriteStats:
    """What one streamed archive write produced."""

    path: Path
    records: int
    bytes: int

    @property
    def megabytes(self) -> float:
        return self.bytes / (1024 * 1024)


def _block_shuffle(
    stream: Iterable[Any], rng: random.Random, buffer_size: int
) -> Iterator[Any]:
    """Shuffle a stream within a bounded buffer (windowed, seeded)."""
    block: list[Any] = []
    for item in stream:
        block.append(item)
        if len(block) >= buffer_size:
            rng.shuffle(block)
            yield from block
            block = []
    if block:
        rng.shuffle(block)
        yield from block


def _interleave_faults(
    faults: list[BugReport],
    noise: Iterator[BugReport],
    total: int,
    rng: random.Random,
) -> Iterator[BugReport]:
    """Yield ``total`` reports with faults at seeded random positions."""
    rng.shuffle(faults)
    positions = sorted(rng.sample(range(total), len(faults))) if faults else []
    slot = 0
    for position in range(total):
        if slot < len(positions) and positions[slot] == position:
            yield faults[slot]
            slot += 1
        else:
            yield next(noise)


def iter_apache_reports(
    corpus: StudyCorpus,
    *,
    seed: int = DEFAULT_SEED,
    total_reports: int | None = None,
) -> Iterator[BugReport]:
    """Stream the Apache raw archive's reports (faults + noise).

    Same report population as :func:`~repro.corpus.render.
    apache_raw_archive` for the same seed; the interleaving is a seeded
    fault-placement rather than a full-list shuffle.
    """
    total = corpus.raw_report_count if total_reports is None else total_reports
    rng = make_rng(seed, "apache-stream-order")
    faults = [fault.to_report(attach_evidence=False) for fault in corpus.faults]
    noise = iter_apache_noise(corpus, seed=seed, total_reports=total_reports)
    yield from _interleave_faults(faults, noise, total, rng)


def iter_gnome_reports(
    corpus: StudyCorpus,
    *,
    seed: int = DEFAULT_SEED,
    total_reports: int | None = None,
    study_components: tuple[str, ...] = (),
) -> Iterator[BugReport]:
    """Stream the GNOME raw archive's reports (faults + noise)."""
    total = corpus.raw_report_count if total_reports is None else total_reports
    rng = make_rng(seed, "gnome-stream-order")
    faults = [fault.to_report(attach_evidence=False) for fault in corpus.faults]
    noise = iter_gnome_noise(
        corpus,
        seed=seed,
        total_reports=total_reports,
        study_components=study_components,
    )
    yield from _interleave_faults(faults, noise, total, rng)


def iter_mysql_messages(
    corpus: StudyCorpus,
    *,
    seed: int = DEFAULT_SEED,
    total_messages: int | None = None,
    shuffle_buffer: int = DEFAULT_SHUFFLE_BUFFER,
) -> Iterator[mbox.MailMessage]:
    """Stream the MySQL mbox archive's messages.

    Thread generation is identical to :func:`~repro.corpus.render.
    mysql_raw_archive` (same RNG label, same call order), so the message
    *population* matches the legacy renderer exactly; ordering passes
    through a seeded block shuffle of ``shuffle_buffer`` messages
    instead of a whole-archive shuffle.
    """
    rng = make_rng(seed, "mysql-archive")
    order_rng = make_rng(seed, "mysql-stream-order")
    total = corpus.raw_report_count if total_messages is None else total_messages

    def generated() -> Iterator[mbox.MailMessage]:
        count = 0
        for fault in corpus.faults:
            thread = fault_thread(fault, rng=rng)
            count += len(thread)
            yield from thread
        duplicate_budget = max(4, corpus.total // 4)
        for index in range(duplicate_budget):
            thread = _duplicate_thread(index, rng.choice(corpus.faults), rng)
            count += len(thread)
            yield from thread
        index = 0
        while count < total:
            thread = _chatter_thread(index, rng)
            count += len(thread)
            yield from thread
            index += 1

    yield from _block_shuffle(generated(), order_rng, shuffle_buffer)


def write_records(
    path: str | os.PathLike,
    application: Application,
    records: Iterable[Any],
) -> ArchiveWriteStats:
    """Write a record stream as an archive file, chunk by chunk.

    Output bytes are identical to ``render_archive`` of the same record
    sequence, but only one rendered record is ever in memory.
    """
    render, separator = _WRITERS[application]
    sep_bytes = separator.encode("utf-8")
    path = Path(path)
    count = 0
    written = 0
    with open(path, "wb") as handle:
        for record in records:
            if count:
                handle.write(sep_bytes)
                written += len(sep_bytes)
            payload = render(record).encode("utf-8")
            handle.write(payload)
            written += len(payload)
            count += 1
        handle.write(b"\n")
        written += 1
    return ArchiveWriteStats(path=path, records=count, bytes=written)


def write_archive(
    path: str | os.PathLike,
    application: Application,
    corpus: StudyCorpus,
    *,
    scale: int | None = None,
    seed: int = DEFAULT_SEED,
    study_components: tuple[str, ...] = (),
    shuffle_buffer: int = DEFAULT_SHUFFLE_BUFFER,
) -> ArchiveWriteStats:
    """Stream-write one application's raw archive at any scale.

    ``scale`` is the total record count (reports for Apache/GNOME,
    approximate messages for MySQL); None uses the corpus's paper-scale
    default.  Memory stays O(record + shuffle buffer) regardless of
    ``scale`` — this is how the benchmarks mint 1M-report archives.
    """
    if application is Application.APACHE:
        stream: Iterable[Any] = iter_apache_reports(
            corpus, seed=seed, total_reports=scale
        )
    elif application is Application.GNOME:
        stream = iter_gnome_reports(
            corpus,
            seed=seed,
            total_reports=scale,
            study_components=study_components,
        )
    elif application is Application.MYSQL:
        stream = iter_mysql_messages(
            corpus, seed=seed, total_messages=scale, shuffle_buffer=shuffle_buffer
        )
    else:
        raise ValueError(f"no streaming writer for {application}")
    return write_records(path, application, stream)
