"""Synthetic study-corpus generator.

Property tests and scalability benchmarks need corpora of arbitrary
shape, not just the paper's 139 faults.  :func:`synthetic_corpus`
produces a :class:`~repro.corpus.studyspec.StudyCorpus` with any per-class
counts; each generated fault's free text is phrased so the evidence
extractor recovers the intended trigger, mirroring how the curated corpus
is written.
"""

from __future__ import annotations

import datetime as _dt
from typing import Iterator

from repro.bugdb.enums import Application, FaultClass, Symptom, TriggerKind
from repro.corpus.studyspec import StudyCorpus, StudyFault
from repro.rng import DEFAULT_SEED, make_rng

# Trigger -> a description phrase the evidence extractor maps back to it.
_TRIGGER_PHRASES: dict[TriggerKind, str] = {
    TriggerKind.RESOURCE_LEAK: "an unknown resource leak builds up under high load",
    TriggerKind.FILE_DESCRIPTOR_EXHAUSTION: "the process runs out of file descriptors",
    TriggerKind.DISK_FULL: "a full file system stops all writes",
    TriggerKind.FILE_SIZE_LIMIT: "the data file grows larger than the maximum allowed file size",
    TriggerKind.DISK_CACHE_FULL: "the disk cache used for temporary objects gets full",
    TriggerKind.NETWORK_RESOURCE_EXHAUSTION: "an unknown network resource is exhausted",
    TriggerKind.HARDWARE_REMOVAL: "the PCMCIA network card was removed while running",
    TriggerKind.HOST_CONFIG_CHANGE: "the hostname of the machine was changed while running",
    TriggerKind.DNS_MISCONFIGURED: "reverse DNS is not configured for the peer host",
    TriggerKind.CORRUPT_EXTERNAL_STATE: "a file carries an illegal value in the owner field",
    TriggerKind.RACE_CONDITION: "a race condition between two threads over shared state",
    TriggerKind.SIGNAL_TIMING: "the masking of a signal loses to its arrival",
    TriggerKind.DNS_ERROR: "a call to the Domain Name Service returns an error",
    TriggerKind.DNS_SLOW: "a slow DNS response stalls the request",
    TriggerKind.NETWORK_SLOW: "a slow network connection stalls the transfer",
    TriggerKind.PROCESS_TABLE_FULL: "children consume all available slots in the process table",
    TriggerKind.PORT_IN_USE: "stale children hang onto required network ports",
    TriggerKind.WORKLOAD_TIMING: "the user presses stop in the midst of a transfer",
    TriggerKind.ENTROPY_EXHAUSTION: "there are too few events feeding /dev/random",
    TriggerKind.UNKNOWN_TRANSIENT: "an unknown condition; the operation works on a retry",
}

_NONTRANSIENT_TRIGGERS = (
    TriggerKind.RESOURCE_LEAK,
    TriggerKind.FILE_DESCRIPTOR_EXHAUSTION,
    TriggerKind.DISK_FULL,
    TriggerKind.FILE_SIZE_LIMIT,
    TriggerKind.DISK_CACHE_FULL,
    TriggerKind.NETWORK_RESOURCE_EXHAUSTION,
    TriggerKind.HARDWARE_REMOVAL,
    TriggerKind.HOST_CONFIG_CHANGE,
    TriggerKind.DNS_MISCONFIGURED,
    TriggerKind.CORRUPT_EXTERNAL_STATE,
)

_TRANSIENT_TRIGGERS = (
    TriggerKind.RACE_CONDITION,
    TriggerKind.SIGNAL_TIMING,
    TriggerKind.DNS_ERROR,
    TriggerKind.DNS_SLOW,
    TriggerKind.NETWORK_SLOW,
    TriggerKind.PROCESS_TABLE_FULL,
    TriggerKind.PORT_IN_USE,
    TriggerKind.WORKLOAD_TIMING,
    TriggerKind.ENTROPY_EXHAUSTION,
    TriggerKind.UNKNOWN_TRANSIENT,
)

_EI_SUBJECTS = (
    "handler mishandles an empty input record",
    "boundary value overflows an internal counter",
    "missing initialization in the request path",
    "off-by-one walking the entry list",
    "null dereference on an absent optional field",
    "recursion without a depth bound on nested input",
)


def iter_synthetic_faults(
    application: Application,
    *,
    env_independent: int,
    nontransient: int,
    transient: int,
    seed: int = DEFAULT_SEED,
    versions: tuple[str, ...] = ("1.0", "1.1", "2.0"),
) -> Iterator[StudyFault]:
    """Generate synthetic study faults one at a time.

    The streaming form of :func:`synthetic_corpus`: identical faults in
    identical order (same RNG call sequence), but O(1) memory — large
    fault populations feed the chunked archive writers without ever
    existing as a list.
    """
    rng = make_rng(seed, f"synthetic-{application.value}")
    base_date = _dt.date(1999, 1, 1)

    def mint(index: int, fault_class: FaultClass, trigger: TriggerKind) -> StudyFault:
        if trigger is TriggerKind.NONE:
            phrase = rng.choice(_EI_SUBJECTS)
            description = (
                f"The application crashes because {phrase}; the failure repeats "
                "deterministically with the same workload."
            )
        else:
            phrase = _TRIGGER_PHRASES[trigger]
            description = f"The application crashes when {phrase}."
        tag = {
            FaultClass.ENV_INDEPENDENT: "EI",
            FaultClass.ENV_DEP_NONTRANSIENT: "EDN",
            FaultClass.ENV_DEP_TRANSIENT: "EDT",
        }[fault_class]
        return StudyFault(
            fault_id=f"SYN-{application.value.upper()}-{tag}-{index:04d}",
            application=application,
            component="core",
            version=versions[index % len(versions)],
            date=base_date + _dt.timedelta(days=rng.randint(0, 365)),
            synopsis=f"synthetic {tag.lower()} fault {index}: {phrase}",
            description=description,
            how_to_repeat="Synthetic reproduction recipe.",
            fix_summary="Synthetic fix." if rng.random() < 0.8 else "",
            symptom=Symptom.CRASH,
            trigger=trigger,
            fault_class=fault_class,
            workload_dependent_timing=trigger is TriggerKind.WORKLOAD_TIMING,
            reproducible=trigger
            not in (TriggerKind.UNKNOWN_TRANSIENT, TriggerKind.RACE_CONDITION),
            workload_op=f"syn-op-{index:04d}",
        )

    index = 0
    for _ in range(env_independent):
        yield mint(index, FaultClass.ENV_INDEPENDENT, TriggerKind.NONE)
        index += 1
    for _ in range(nontransient):
        trigger = rng.choice(_NONTRANSIENT_TRIGGERS)
        yield mint(index, FaultClass.ENV_DEP_NONTRANSIENT, trigger)
        index += 1
    for _ in range(transient):
        trigger = rng.choice(_TRANSIENT_TRIGGERS)
        yield mint(index, FaultClass.ENV_DEP_TRANSIENT, trigger)
        index += 1


def synthetic_corpus(
    application: Application,
    *,
    env_independent: int,
    nontransient: int,
    transient: int,
    seed: int = DEFAULT_SEED,
    versions: tuple[str, ...] = ("1.0", "1.1", "2.0"),
) -> StudyCorpus:
    """Generate a synthetic study corpus with the given per-class counts.

    Args:
        application: nominal application identity of the corpus.
        env_independent: number of environment-independent faults.
        nontransient: number of environment-dependent-nontransient faults.
        transient: number of environment-dependent-transient faults.
        seed: deterministic generation seed.
        versions: release labels to spread faults over.

    Returns:
        A validated corpus whose class counts equal the arguments.
    """
    faults = tuple(
        iter_synthetic_faults(
            application,
            env_independent=env_independent,
            nontransient=nontransient,
            transient=transient,
            seed=seed,
            versions=versions,
        )
    )

    return StudyCorpus(
        application=application,
        faults=faults,
        expected_counts={
            FaultClass.ENV_INDEPENDENT: env_independent,
            FaultClass.ENV_DEP_NONTRANSIENT: nontransient,
            FaultClass.ENV_DEP_TRANSIENT: transient,
        },
        raw_report_count=max(
            10 * (env_independent + nontransient + transient), 1
        ),
    )
