"""Raw-archive renderers: curated faults + noise -> 1999-style archives.

These produce the inputs the mining pipeline consumes:

* :func:`apache_raw_archive` -- a GNATS dump interleaving the 50 study
  faults with thousands of noise reports;
* :func:`gnome_raw_archive` -- a debbugs log, likewise;
* :func:`mysql_raw_archive` -- an mbox of mailing-list threads: one
  thread per study fault (report mail, follow-ups, a fix mail), duplicate
  threads re-reporting study faults, and no-keyword chatter threads.

Evidence is never serialized: the pipeline must recover the trigger from
the free text, as the paper's authors did.
"""

from __future__ import annotations

import datetime as _dt
import random

from repro.bugdb import debbugs, gnats, mbox
from repro.bugdb.model import BugReport
from repro.corpus.noise import apache_noise, gnome_noise, _permute_synopsis
from repro.corpus.studyspec import StudyCorpus, StudyFault
from repro.rng import DEFAULT_SEED, make_rng

# Chatter vocabulary for MySQL noise threads.  Chosen to avoid the study
# keywords (crash, segmentation, race, died) as whole words.
_CHATTER_SUBJECTS = (
    "How to speed up big joins?",
    "ODBC driver configuration on NT",
    "ANNOUNCE: web frontend for table browsing",
    "Replication roadmap question",
    "Best index layout for logging tables",
    "Compile problem on Slackware",
    "Max connections and memory sizing",
    "Converting from mSQL, column type mapping",
    "Backup strategies for live servers",
    "Question about LEFT JOIN syntax",
    "ISP hosting: one instance per customer?",
    "Perl DBI examples wanted",
    "Date arithmetic in SELECT lists",
    "Why is my query slow after an import?",
    "GRANT syntax for read-only users",
)

_CHATTER_BODIES = (
    "I have been reading the manual but the section on this is thin.\n"
    "Has anyone set this up in production?",
    "We are evaluating the server for an internal project and this is\n"
    "the last open question before we commit.",
    "Attached is my config; the numbers look off to me.\n"
    "Thanks in advance.",
    "Works fine otherwise, just wondering what the recommended\n"
    "settings are.",
)

_REPLY_BODIES = (
    "We saw the same thing here. Following the thread.",
    "Try the latest release first, several related fixes went in.",
    "Can you send the exact statement and the table layout?",
    "This is a known limitation, see the manual section on table types.",
)

# A reply that *does* contain a study keyword inside a chatter thread:
# keyword mining that looks at whole threads would be fooled; root-gated
# mining is not.
_KEYWORD_REPLY = (
    "By the way, unrelated to your question: an old 3.21 build once\n"
    "crashed for me under heavy load, but 3.22 has been solid."
)


def apache_raw_archive(
    corpus: StudyCorpus,
    *,
    seed: int = DEFAULT_SEED,
    total_reports: int | None = None,
) -> str:
    """Render the Apache GNATS dump (study faults + noise, shuffled)."""
    rng = make_rng(seed, "apache-archive-order")
    reports: list[BugReport] = [
        fault.to_report(attach_evidence=False) for fault in corpus.faults
    ]
    reports.extend(apache_noise(corpus, seed=seed, total_reports=total_reports))
    rng.shuffle(reports)
    return gnats.render_archive(reports)


def gnome_raw_archive(
    corpus: StudyCorpus,
    *,
    seed: int = DEFAULT_SEED,
    total_reports: int | None = None,
    study_components: tuple[str, ...] = (),
) -> str:
    """Render the GNOME debbugs log (study faults + noise, shuffled)."""
    rng = make_rng(seed, "gnome-archive-order")
    reports: list[BugReport] = [
        fault.to_report(attach_evidence=False) for fault in corpus.faults
    ]
    reports.extend(
        gnome_noise(
            corpus,
            seed=seed,
            total_reports=total_reports,
            study_components=study_components,
        )
    )
    rng.shuffle(reports)
    return debbugs.render_archive(reports)


def fault_thread(fault: StudyFault, *, rng: random.Random) -> list[mbox.MailMessage]:
    """Render one study fault as a mailing-list thread.

    The root message carries the report (symptoms, version, how to
    repeat); follow-ups carry discussion; the final reply carries the fix
    when the paper records one.
    """
    root_id = f"{fault.fault_id}.root@lists.mysql.com"
    body = (
        f"{fault.description}\n\n"
        f"mysql version: {fault.version}\n"
        f"component: {fault.component}\n\n"
        f"How-To-Repeat:\n{fault.how_to_repeat}"
    )
    messages = [
        mbox.MailMessage(
            message_id=root_id,
            sender=f"reporter.{fault.fault_id.lower()}@example.com",
            date=fault.date,
            subject=fault.synopsis,
            body=body,
        )
    ]
    for reply_index in range(rng.randint(1, 3)):
        messages.append(
            mbox.MailMessage(
                message_id=f"{fault.fault_id}.r{reply_index}@lists.mysql.com",
                sender=f"lister{rng.randint(1, 900)}@example.org",
                date=fault.date + _dt.timedelta(days=reply_index + 1),
                subject="Re: " + fault.synopsis,
                body=rng.choice(_REPLY_BODIES),
                in_reply_to=root_id,
            )
        )
    if fault.fix_summary:
        messages.append(
            mbox.MailMessage(
                message_id=f"{fault.fault_id}.fix@lists.mysql.com",
                sender="developer@mysql.com",
                date=fault.date + _dt.timedelta(days=7),
                subject="Re: " + fault.synopsis,
                body="This is now fixed in the source tree.\n\n" + fault.fix_summary,
                in_reply_to=root_id,
            )
        )
    return messages


def _chatter_thread(index: int, rng: random.Random) -> list[mbox.MailMessage]:
    root_id = f"chatter.{index}@lists.mysql.com"
    base_date = _dt.date(1998, 6, 1) + _dt.timedelta(days=rng.randint(0, 420))
    subject = rng.choice(_CHATTER_SUBJECTS)
    messages = [
        mbox.MailMessage(
            message_id=root_id,
            sender=f"user{rng.randint(1, 9000)}@example.net",
            date=base_date,
            subject=f"{subject} ({index})",
            body=rng.choice(_CHATTER_BODIES),
        )
    ]
    for reply_index in range(rng.randint(0, 2)):
        body = rng.choice(_REPLY_BODIES)
        if rng.random() < 0.05:
            body = _KEYWORD_REPLY
        messages.append(
            mbox.MailMessage(
                message_id=f"chatter.{index}.r{reply_index}@lists.mysql.com",
                sender=f"user{rng.randint(1, 9000)}@example.net",
                date=base_date + _dt.timedelta(days=reply_index + 1),
                subject=f"Re: {subject} ({index})",
                body=body,
                in_reply_to=root_id,
            )
        )
    return messages


def _duplicate_thread(
    index: int, fault: StudyFault, rng: random.Random
) -> list[mbox.MailMessage]:
    """A whole thread re-reporting a study fault (dedup must merge it)."""
    root_id = f"dup.{index}@lists.mysql.com"
    return [
        mbox.MailMessage(
            message_id=root_id,
            sender=f"user{rng.randint(1, 9000)}@example.net",
            date=fault.date + _dt.timedelta(days=rng.randint(3, 45)),
            subject=_permute_synopsis(fault.synopsis, rng),
            body=(
                "I think I am hitting the same problem someone mentioned:\n"
                + fault.description
                + f"\n\nmysql version: {fault.version}"
            ),
        )
    ]


def mysql_raw_archive(
    corpus: StudyCorpus,
    *,
    seed: int = DEFAULT_SEED,
    total_messages: int | None = None,
) -> str:
    """Render the MySQL mbox archive.

    Args:
        corpus: the curated MySQL corpus.
        seed: deterministic generation seed.
        total_messages: approximate archive size including study threads;
            defaults to the paper's ~44,000.  The generator fills with
            chatter and duplicate threads until the total is reached.
    """
    rng = make_rng(seed, "mysql-archive")
    total = corpus.raw_report_count if total_messages is None else total_messages
    messages: list[mbox.MailMessage] = []
    for fault in corpus.faults:
        messages.extend(fault_thread(fault, rng=rng))
    duplicate_budget = max(4, corpus.total // 4)
    for index in range(duplicate_budget):
        messages.extend(_duplicate_thread(index, rng.choice(corpus.faults), rng))
    index = 0
    while len(messages) < total:
        messages.extend(_chatter_thread(index, rng))
        index += 1
    rng.shuffle(messages)
    return mbox.render_archive(messages)
