"""Curated MySQL study corpus: 44 faults (Table 3, Figure 3).

Table 3 of the paper: 38 environment-independent, 4
environment-dependent-nontransient, 2 environment-dependent-transient.
The six environment-dependent faults and five itemised
environment-independent examples come from Section 5.3; the remaining 33
environment-independent faults are synthesized in the same style
(ISAM/parser/optimizer-era MySQL 3.21/3.22 defects).

MySQL fault data in the paper came from mailing-list messages matching
the keywords "crash", "segmentation", "race", and "died" -- every curated
fault's text therefore contains at least one of those keywords, so the
keyword-mining stage can find them all.

Figure 3's shape: totals grow with newer releases, and the very last
release has substantially fewer reports because few users run it yet.
"""

from __future__ import annotations

import datetime as _dt
import functools

from repro.bugdb.enums import Application, FaultClass, Severity, Symptom, TriggerKind
from repro.corpus.studyspec import StudyCorpus, StudyFault

_EI = FaultClass.ENV_INDEPENDENT
_EDN = FaultClass.ENV_DEP_NONTRANSIENT
_EDT = FaultClass.ENV_DEP_TRANSIENT

#: MySQL production releases covered by the study, with release dates.
RELEASES: tuple[tuple[str, _dt.date], ...] = (
    ("3.21.33", _dt.date(1998, 5, 12)),
    ("3.22.20", _dt.date(1998, 12, 18)),
    ("3.22.25", _dt.date(1999, 3, 4)),
    ("3.22.27", _dt.date(1999, 5, 20)),
    ("3.22.32", _dt.date(1999, 7, 14)),
    ("3.23.2", _dt.date(1999, 8, 9)),
)

_RELEASE_DATES = dict(RELEASES)


def _fault(
    number: int,
    fault_class: FaultClass,
    version: str,
    component: str,
    synopsis: str,
    description: str,
    how_to_repeat: str,
    fix_summary: str,
    *,
    symptom: Symptom = Symptom.CRASH,
    trigger: TriggerKind = TriggerKind.NONE,
    reproducible: bool = True,
    workload_op: str = "",
    days_after_release: int = 21,
) -> StudyFault:
    tag = {_EI: "EI", _EDN: "EDN", _EDT: "EDT"}[fault_class]
    return StudyFault(
        fault_id=f"MYSQL-{tag}-{number:02d}",
        application=Application.MYSQL,
        component=component,
        version=version,
        date=_RELEASE_DATES[version] + _dt.timedelta(days=days_after_release),
        synopsis=synopsis,
        description=description,
        how_to_repeat=how_to_repeat,
        fix_summary=fix_summary,
        symptom=symptom,
        trigger=trigger,
        fault_class=fault_class,
        reproducible=reproducible,
        workload_op=workload_op or f"mysql-op-{tag.lower()}-{number:02d}",
        severity=Severity.CRITICAL if symptom is Symptom.CRASH else Severity.SERIOUS,
    )


_EDN_FAULTS = (
    _fault(
        1, _EDN, "3.22.20", "mysqld",
        "server died from a shortage of file descriptors",
        "A shortage of file descriptors due to competition between MySQL "
        "and a web server on the same machine makes table opens fail and "
        "the server died under load. A recovery system that preserves all "
        "application state preserves the descriptor pressure too.",
        "Run a descriptor-hungry web server beside mysqld and open many "
        "tables concurrently.",
        "Documented table_cache/ulimit tuning.",
        symptom=Symptom.CRASH,
        trigger=TriggerKind.FILE_DESCRIPTOR_EXHAUSTION,
        workload_op="open-table",
    ),
    _fault(
        2, _EDN, "3.22.25", "mysqld",
        "server crashes on connections from a host with no reverse DNS",
        "The server crashes when it receives a connection request from a "
        "remote machine if reverse DNS is not configured for the remote "
        "host; the condition persists until the administrator fixes the "
        "DNS zone.",
        "Connect from a host whose address has no PTR record.",
        "Checked the failed lookup before using the hostname.",
        symptom=Symptom.CRASH,
        trigger=TriggerKind.DNS_MISCONFIGURED,
        workload_op="accept-connection",
    ),
    _fault(
        3, _EDN, "3.22.27", "isam",
        "server crashes once the database file passes the maximum file size",
        "The size of a database file grows greater than the maximum "
        "allowed file size on the platform, and inserts crash the server "
        "from then on.",
        "Insert rows until the table's data file reaches the platform "
        "limit (2GB on this filesystem).",
        "Raised via RAID table layout later; the limit itself persists.",
        symptom=Symptom.CRASH,
        trigger=TriggerKind.FILE_SIZE_LIMIT,
        workload_op="insert-row",
    ),
    _fault(
        4, _EDN, "3.22.32", "mysqld",
        "full file system prevents all operations on the database",
        "A full file system prevents all operations on the database: "
        "writes block or fail, temporary tables cannot be created, and "
        "queries crash or hang until an administrator frees space.",
        "Fill the data partition, then run any write query.",
        "Made the server wait-and-retry on writes later; space must still "
        "be freed.",
        symptom=Symptom.ERROR_RETURN,
        trigger=TriggerKind.DISK_FULL,
        workload_op="insert-row-full",
    ),
)

_EDT_FAULTS = (
    _fault(
        1, _EDT, "3.22.27", "mysqld",
        "race condition between the masking of a signal and its arrival",
        "A race condition between the masking of a signal and its arrival "
        "kills the server if the signal wins. Race conditions depend on "
        "the exact timing of thread scheduling events, and these are "
        "likely to change during retry.",
        "Heavy concurrent load; crashes intermittently around shutdown "
        "signals.",
        "Reworked the signal-handling thread to mask before spawning "
        "workers.",
        symptom=Symptom.CRASH,
        trigger=TriggerKind.RACE_CONDITION,
        workload_op="signal-shutdown",
    ),
    _fault(
        2, _EDT, "3.22.32", "mysqld",
        "race condition between a new user login and administrator commands",
        "A race condition between a new user login and commands issued by "
        "the administrator (FLUSH PRIVILEGES during the handshake) makes "
        "the server read a half-updated grant table and crash.",
        "Loop logins while the administrator reloads privileges; "
        "intermittent.",
        "Locked the grant tables during reload.",
        symptom=Symptom.CRASH,
        trigger=TriggerKind.RACE_CONDITION,
        workload_op="login",
    ),
)

# (version, component, synopsis, description, how_to_repeat, fix, symptom, op)
_EI_SPECS: tuple[tuple[str, str, str, str, str, str, Symptom, str], ...] = (
    (
        "3.21.33", "isam",
        "UPDATE of an indexed column to a value found later in the scan crashes",
        "Updating an index to a value that will be found later while "
        "scanning the index tree creates duplicate values in the index "
        "and will crash MySQL.",
        "UPDATE t SET k=k+1 on an indexed column where the new value "
        "collides with a later key.",
        "Solved by first scanning for all matching rows and then updating "
        "the found rows.",
        Symptom.CRASH, "update-index-scan",
    ),
    (
        "3.21.33", "optimizer",
        "SELECT of zero records with ORDER BY crashes the server",
        "A query which selects zero records and has an \"order by\" "
        "clause will cause the server to crash. This was due to some "
        "missing initialization statements.",
        "SELECT * FROM t WHERE 0 ORDER BY a; on any table.",
        "Added the missing initialization statements.",
        Symptom.CRASH, "select-empty-orderby",
    ),
    (
        "3.22.20", "optimizer",
        "COUNT on an empty table crashes MySQL",
        "The use of a \"count\" clause on an empty table causes MySQL to "
        "crash. This was caused due to a missing check for empty tables.",
        "CREATE TABLE t (a int); SELECT COUNT(a) FROM t GROUP BY a;",
        "Added the empty-table check.",
        Symptom.CRASH, "count-empty",
    ),
    (
        "3.22.20", "isam",
        "OPTIMIZE TABLE query crashes the server",
        "An \"OPTIMIZE TABLE\" query crashes the server. This was caused "
        "by a missing initialization statement in the repair path.",
        "OPTIMIZE TABLE t; on a table with at least one index.",
        "Initialized the sort buffer descriptor.",
        Symptom.CRASH, "optimize-table",
    ),
    (
        "3.22.25", "mysqld",
        "FLUSH TABLES after LOCK TABLES crashes the server",
        "A \"FLUSH TABLES\" command after a \"LOCK TABLES\" command "
        "crashes the server, every time, for any table.",
        "LOCK TABLES t READ; FLUSH TABLES;",
        "Made FLUSH honour the session's own locks.",
        Symptom.CRASH, "flush-after-lock",
    ),
    (
        "3.21.33", "parser",
        "segmentation fault on SELECT with 300 parenthesised conditions",
        "A WHERE clause nested in several hundred parentheses overflows "
        "the parser stack and the server dies with a segmentation fault.",
        "SELECT 1 FROM t WHERE ((((...1=1...))));",
        "Bounded the parse depth with a clear error.",
        Symptom.CRASH, "deep-parens",
    ),
    (
        "3.21.33", "mysqld",
        "mysqld crashes on a GRANT statement with an empty user name",
        "GRANT to the user '' with a password dereferences a null ACL "
        "entry and crashes the server deterministically.",
        "GRANT SELECT ON db.* TO ''@'%' IDENTIFIED BY 'x';",
        "Rejected empty user names in GRANT.",
        Symptom.CRASH, "grant-empty-user",
    ),
    (
        "3.22.20", "parser",
        "LIKE pattern ending in escape character crashes the matcher",
        "A LIKE pattern whose final character is the escape character "
        "reads one byte past the pattern and the server crashes.",
        "SELECT * FROM t WHERE a LIKE 'x\\\\';",
        "Treated a trailing escape as a literal.",
        Symptom.CRASH, "like-trailing-escape",
    ),
    (
        "3.22.20", "isam",
        "DELETE with a key on a BLOB prefix crashes",
        "Deleting rows located through a BLOB prefix key compares the "
        "full BLOB length against the prefix and crashes in the key "
        "routines.",
        "CREATE INDEX on a BLOB prefix, then DELETE by that key.",
        "Compared only the prefix length.",
        Symptom.CRASH, "delete-blob-key",
    ),
    (
        "3.22.20", "mysqld",
        "server died after SHOW PROCESSLIST during a dying connection",
        "Issuing SHOW PROCESSLIST exactly while another thread frees its "
        "connection structure always crashes when the list walker reads "
        "the freed entry; with the test driver the sequence is "
        "deterministic.",
        "Kill a connection and run SHOW PROCESSLIST in the same tick.",
        "Locked the thread list during iteration.",
        Symptom.CRASH, "show-processlist",
    ),
    (
        "3.22.25", "optimizer",
        "LEFT JOIN on a column compared with itself crashes",
        "A LEFT JOIN whose ON clause compares a column with itself makes "
        "the optimizer collapse the condition to a null pointer and "
        "crash.",
        "SELECT * FROM a LEFT JOIN b ON b.x=b.x;",
        "Kept trivially-true conditions out of the null-rejection pass.",
        Symptom.CRASH, "self-join-condition",
    ),
    (
        "3.22.25", "isam",
        "table with 32 indexes crashes on key cache flush",
        "Flushing the key cache of a table with the maximum 32 indexes "
        "walks one entry past the key descriptor array and crashes.",
        "CREATE TABLE with 32 keys, fill it, FLUSH TABLES.",
        "Fixed the off-by-one loop bound.",
        Symptom.CRASH, "flush-many-keys",
    ),
    (
        "3.22.25", "parser",
        "comment ending at end-of-query crashes the lexer",
        "A query ending exactly inside a /* comment makes the lexer read "
        "past the buffer and the server dies.",
        "SELECT 1 /* unterminated",
        "Checked for end-of-buffer in the comment scanner.",
        Symptom.CRASH, "unterminated-comment",
    ),
    (
        "3.22.25", "mysqld",
        "segmentation fault in GROUP BY on a column alias of a function",
        "Grouping by an alias that names a function call makes the "
        "aggregator reference the unresolved item and die with a "
        "segmentation fault.",
        "SELECT LENGTH(a) AS l FROM t GROUP BY l;",
        "Resolved aliases before setting up aggregation.",
        Symptom.CRASH, "group-by-alias",
    ),
    (
        "3.22.25", "client",
        "mysqldump crashes on a table with no columns permitted",
        "Dumping a table on which the user may see no columns makes "
        "mysqldump format a null field list and crash.",
        "Revoke all column privileges and run mysqldump.",
        "Skipped the table with a warning.",
        Symptom.CRASH, "dump-no-columns",
    ),
    (
        "3.22.25", "isam",
        "CHECK TABLE on a table with deleted rows marks good data corrupt",
        "CHECK TABLE miscounts the deleted-row chain and reports a "
        "healthy table as crashed, leading operators to run repairs that "
        "rewrite good data.",
        "DELETE half the rows of a table, then CHECK TABLE.",
        "Fixed the deleted-chain accounting.",
        Symptom.DATA_CORRUPTION, "check-table",
    ),
    (
        "3.22.27", "optimizer",
        "DISTINCT with a constant expression crashes the server",
        "SELECT DISTINCT over a constant expression plus a column makes "
        "the duplicate-elimination setup divide by a zero field count "
        "and crash.",
        "SELECT DISTINCT 1, a FROM t;",
        "Counted constant fields in the distinct key.",
        Symptom.CRASH, "distinct-constant",
    ),
    (
        "3.22.27", "mysqld",
        "ALTER TABLE renaming a column used by an index crashes",
        "Renaming a column that participates in a multi-column index "
        "leaves the index metadata pointing at the old name; the next "
        "query on that index crashes the server.",
        "ALTER TABLE t CHANGE a b int; then SELECT using the index.",
        "Rewrote index metadata during the rename.",
        Symptom.CRASH, "alter-rename-indexed",
    ),
    (
        "3.22.27", "parser",
        "INSERT with more values than columns crashes instead of erroring",
        "An INSERT listing more values than the table has columns writes "
        "past the field array and crashes the server rather than "
        "returning an error.",
        "INSERT INTO t(a) VALUES (1,2,3);",
        "Validated the value count first.",
        Symptom.CRASH, "insert-too-many-values",
    ),
    (
        "3.22.27", "isam",
        "ISAM log replay dies on a zero-length record",
        "Replaying the update log stops with a crash when it meets a "
        "zero-length record written by an aborted statement, making "
        "point-in-time recovery impossible deterministically for such "
        "logs.",
        "Abort an INSERT mid-statement, then replay the update log.",
        "Skipped zero-length records during replay.",
        Symptom.CRASH, "log-replay",
    ),
    (
        "3.22.27", "mysqld",
        "HAVING referencing a column not in GROUP BY crashes",
        "A HAVING clause that references a bare column absent from the "
        "GROUP BY list dereferences a null group item and crashes.",
        "SELECT a, COUNT(*) FROM t GROUP BY a HAVING b > 0;",
        "Returned the proper error for the invalid reference.",
        Symptom.CRASH, "having-bad-column",
    ),
    (
        "3.22.27", "optimizer",
        "range optimizer crashes on a key compared with an empty IN list",
        "The range optimizer crashes building intervals for an IN "
        "predicate that the parser accepted with zero elements via a "
        "subquery-less extension.",
        "SELECT * FROM t WHERE k IN ();",
        "Rejected the empty list at parse time.",
        Symptom.CRASH, "empty-in-list",
    ),
    (
        "3.22.27", "mysqld",
        "temporary table name collision crashes the second session",
        "Two sessions creating temporary tables that hash to the same "
        "internal name make the second session crash opening the first "
        "session's file; the collision is deterministic for the given "
        "names.",
        "CREATE TEMPORARY TABLE with the two colliding names in two "
        "sessions.",
        "Added the thread id to the temp-file name.",
        Symptom.CRASH, "temp-table-collision",
    ),
    (
        "3.22.27", "client",
        "mysqlimport dies on a line longer than the net buffer",
        "Importing a line longer than max_allowed_packet makes the "
        "client write past the network buffer and die with a "
        "segmentation fault.",
        "mysqlimport a file with a 2MB single line.",
        "Split oversized rows with a clear error.",
        Symptom.CRASH, "import-long-line",
    ),
    (
        "3.22.32", "mysqld",
        "REPLACE on a table with an AUTO_INCREMENT key crashes after delete",
        "REPLACE into a table whose auto-increment counter was rewound by "
        "a delete writes a duplicate key internally and crashes the "
        "server deterministically for that sequence.",
        "DELETE the max row, then REPLACE with the same key.",
        "Re-read the counter after delete.",
        Symptom.CRASH, "replace-after-delete",
    ),
    (
        "3.22.32", "optimizer",
        "ORDER BY RAND() with LIMIT crashes the sort",
        "Sorting by RAND() with a LIMIT smaller than the row count frees "
        "the sort buffer twice and crashes.",
        "SELECT * FROM t ORDER BY RAND() LIMIT 5;",
        "Cleared the buffer pointer after the first free.",
        Symptom.CRASH, "order-by-rand",
    ),
    (
        "3.22.32", "parser",
        "SET with a string value for a numeric variable crashes",
        "Assigning a quoted string to a numeric server variable makes the "
        "converter dereference the missing number and crash the session "
        "thread.",
        "SET SQL_BIG_TABLES='yes';",
        "Coerced or rejected with an error.",
        Symptom.CRASH, "set-bad-type",
    ),
    (
        "3.22.32", "isam",
        "packed table with all-NULL column crashes on read",
        "A column that is NULL in every row of a packed (compressed) "
        "table gets a zero-width encoding the reader cannot decode; any "
        "SELECT crashes.",
        "myisampack a table with an all-NULL column, then SELECT.",
        "Encoded a minimum one-bit width.",
        Symptom.CRASH, "read-packed",
    ),
    (
        "3.22.32", "mysqld",
        "wildcard database grant with underscore matches wrong databases",
        "A grant on db_name with an unescaped underscore matches other "
        "database names too, giving users access they were never granted; "
        "the mismatch is deterministic. The server does not crash; the "
        "access check is silently wrong.",
        "GRANT on 'db_1' and connect to 'dbx1'.",
        "Escaped wildcards in database grants by default.",
        Symptom.SECURITY, "grant-wildcard",
    ),
    (
        "3.22.32", "client",
        "mysql client died printing a NULL in --html mode",
        "The command-line client formats NULL fields through a null "
        "pointer when --html output is selected and died at the first "
        "NULL value.",
        "mysql --html -e 'SELECT NULL;'",
        "Printed NULL as an empty cell.",
        Symptom.CRASH, "client-html-null",
    ),
    (
        "3.22.32", "mysqld",
        "KILL of a thread waiting on a table lock crashes the server",
        "Killing a connection that is waiting for a table lock leaves the "
        "wait queue pointing at the freed thread and the next unlock "
        "crashes; the sequence repeats deterministically under the test "
        "driver.",
        "Block a query on LOCK TABLES, KILL it, then UNLOCK.",
        "Removed the thread from the queue on kill.",
        Symptom.CRASH, "kill-waiting-thread",
    ),
    (
        "3.22.32", "isam",
        "index on a DECIMAL column misorders negative values",
        "Negative DECIMAL keys sort after positive ones in the index, so "
        "range queries silently return wrong rows every time. No crash, "
        "just wrong answers.",
        "CREATE INDEX on a DECIMAL column with negative values, run a "
        "range query.",
        "Fixed the sign handling in key packing.",
        Symptom.DATA_CORRUPTION, "decimal-range",
    ),
    (
        "3.22.32", "mysqld",
        "segmentation fault on SHOW COLUMNS of a merged table union",
        "SHOW COLUMNS against a table union whose member list is empty "
        "dereferences the first-member pointer and dies with a "
        "segmentation fault.",
        "Create a MERGE table with UNION=() and run SHOW COLUMNS.",
        "Handled the empty union in metadata paths.",
        Symptom.CRASH, "show-empty-merge",
    ),
    (
        "3.21.33", "isam",
        "table repair after unclean shutdown crashes on a 255-column table",
        "Repairing a table with the maximum 255 columns makes isamchk "
        "overflow its column-state array and crash, so such tables cannot "
        "be repaired at all.",
        "isamchk -r on a 255-column table.",
        "Sized the state array from the column count.",
        Symptom.CRASH, "repair-wide-table",
    ),
    (
        "3.22.25", "mysqld",
        "segmentation fault on a SELECT INTO OUTFILE with empty field terminator",
        "SELECT INTO OUTFILE with FIELDS TERMINATED BY '' makes the "
        "writer loop with zero progress and then die with a segmentation "
        "fault on buffer exhaustion.",
        "SELECT * INTO OUTFILE '/tmp/x' FIELDS TERMINATED BY '' FROM t;",
        "Required a non-empty terminator.",
        Symptom.CRASH, "outfile-empty-terminator",
    ),
    (
        "3.22.27", "mysqld",
        "UNION of SELECTs with different column counts crashes",
        "A UNION whose branches return different numbers of columns "
        "crashes the result writer instead of returning an error.",
        "SELECT 1 UNION SELECT 1,2;",
        "Validated branch arity before execution.",
        Symptom.CRASH, "union-arity",
    ),
    (
        "3.23.2", "replication",
        "slave thread crashes replaying a LOAD DATA with no file",
        "The replication slave crashes replaying a LOAD DATA INFILE event "
        "whose file block was dropped by the master's rotation logic; "
        "replay of that binlog position always crashes.",
        "Rotate the binlog mid-LOAD on the master, then start a slave.",
        "Carried the file block across rotation.",
        Symptom.CRASH, "replay-load-data",
    ),
    (
        "3.23.2", "mysqld",
        "CREATE TABLE ... SELECT from the table being created crashes",
        "CREATE TABLE t AS SELECT from t itself (via a synonym path the "
        "parser accepted) opens the half-created table and crashes the "
        "server.",
        "CREATE TABLE t SELECT * FROM t;",
        "Rejected self-referential create-select.",
        Symptom.CRASH, "create-select-self",
    ),
)


@functools.lru_cache(maxsize=1)
def mysql_corpus() -> StudyCorpus:
    """The curated MySQL corpus (Table 3: 38 / 4 / 2)."""
    ei_faults = tuple(
        _fault(
            index, _EI, version, component, synopsis, description,
            how_to_repeat, fix, symptom=symptom, workload_op=op,
            days_after_release=14 + 2 * index,
        )
        for index, (version, component, synopsis, description, how_to_repeat,
                    fix, symptom, op) in enumerate(_EI_SPECS, start=1)
    )
    return StudyCorpus(
        application=Application.MYSQL,
        faults=ei_faults + _EDN_FAULTS + _EDT_FAULTS,
        expected_counts={_EI: 38, _EDN: 4, _EDT: 2},
        raw_report_count=44000,
    )
