"""Study-graph adapters for the curated corpora (the graph's roots).

One node per application: its payload fingerprints the curated corpus
(a content digest over every fault's full serialized form), so any edit
to a curated fault -- a date, a trigger, a synopsis -- changes the root
artifact's digest and invalidates exactly the downstream cone of
memoized experiment results.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Mapping, TYPE_CHECKING

from repro.bugdb.enums import Application
from repro.studygraph.artifact import canonical_json, jsonable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.studygraph.context import StudyContext


def corpus_fingerprint(corpus: Any) -> str:
    """SHA-256 over a corpus's canonical serialized content."""
    content = {
        "application": corpus.application.value,
        "raw_report_count": corpus.raw_report_count,
        "expected_counts": jsonable(corpus.expected_counts),
        "faults": [jsonable(dataclasses.asdict(fault)) for fault in corpus.faults],
    }
    return hashlib.sha256(canonical_json(content).encode("utf-8")).hexdigest()


def corpus_artifact(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Root artifact: one application's curated corpus, fingerprinted.

    Params:
        application: ``apache | gnome | mysql``.
    """
    application = Application(params["application"])
    corpus = ctx.study.corpus(application)
    return {
        "application": application.value,
        "total": corpus.total,
        "raw_report_count": corpus.raw_report_count,
        "class_counts": jsonable(corpus.class_counts()),
        "content_digest": corpus_fingerprint(corpus),
    }
