"""Study corpora: the paper's 139 faults, plus archive noise.

The paper's raw data -- 1999-era bug archives -- no longer exists in the
form the authors mined.  This package substitutes a **curated corpus**
that encodes every fault the paper itemises (all 26 environment-dependent
faults verbatim, the itemised environment-independent examples, and
synthesized environment-independent reports filling the exact per-class,
per-release counts of Tables 1-3 and Figures 1-3), together with
generators for the *noise* surrounding them (thousands of non-study
reports/messages), and renderers that serialize everything into the three
raw archive formats so the mining pipeline has the same narrowing job the
authors had (5220 -> 50 for Apache, ~500 -> 45 for GNOME,
~44,000 messages -> 44 for MySQL; we scale the MySQL archive down by
default for test speed, keeping the ratio).
"""

from repro.corpus.studyspec import StudyFault, StudyCorpus
from repro.corpus.apache import apache_corpus
from repro.corpus.gnome import gnome_corpus
from repro.corpus.mysql import mysql_corpus
from repro.corpus.loader import full_study, StudyData
from repro.corpus.stream import (
    ArchiveWriteStats,
    iter_apache_reports,
    iter_gnome_reports,
    iter_mysql_messages,
    write_archive,
    write_records,
)
from repro.corpus.synthetic import iter_synthetic_faults, synthetic_corpus

__all__ = [
    "ArchiveWriteStats",
    "StudyCorpus",
    "StudyData",
    "StudyFault",
    "apache_corpus",
    "full_study",
    "gnome_corpus",
    "iter_apache_reports",
    "iter_gnome_reports",
    "iter_mysql_messages",
    "iter_synthetic_faults",
    "mysql_corpus",
    "synthetic_corpus",
    "write_archive",
    "write_records",
]
