"""Curated study-fault records and corpus-level invariants.

A :class:`StudyFault` is one of the paper's 139 unique, high-impact
faults, carrying both the raw-report material (synopsis, description,
"How To Repeat", fix) and the curated ground truth (trigger kind and
fault class as the paper assigned them).  A :class:`StudyCorpus` bundles
one application's faults and validates the invariants the paper states:
exact per-class counts, unique identifiers, environment-dependent faults
all carrying a trigger, environment-independent faults carrying none.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt

from repro.bugdb.enums import (
    Application,
    FaultClass,
    Resolution,
    Severity,
    Status,
    Symptom,
    TriggerKind,
)
from repro.bugdb.model import BugReport, Comment, TriggerEvidence
from repro.errors import CorpusError


@dataclasses.dataclass(frozen=True)
class StudyFault:
    """One curated fault from the paper's study set.

    Attributes:
        fault_id: stable study identifier (e.g. ``"APACHE-EDT-03"``).
        application: which application the fault belongs to.
        component: sub-component the report was filed against.
        version: release the fault was reported against.
        date: report date (drives the Figure 1-3 distributions).
        synopsis: one-line summary, written in the report's voice.
        description: failure description (free text).
        how_to_repeat: the "How To Repeat" field contents.
        fix_summary: how developers fixed the bug, when the paper says.
        symptom: high-impact symptom category.
        trigger: curated environmental trigger (``NONE`` for
            environment-independent faults).
        fault_class: the paper's ground-truth class for this fault.
        workload_dependent_timing: Section 3 workload-timing flag.
        reproducible: whether developers could repeat the failure.
        workload_op: operation key used by the recovery-replay driver to
            trigger the injected defect in the mini applications.
        severity: tracker severity (study faults are serious/critical).
    """

    fault_id: str
    application: Application
    component: str
    version: str
    date: _dt.date
    synopsis: str
    description: str
    how_to_repeat: str
    fix_summary: str
    symptom: Symptom
    trigger: TriggerKind
    fault_class: FaultClass
    workload_dependent_timing: bool = False
    reproducible: bool = True
    workload_op: str = ""
    severity: Severity = Severity.CRITICAL

    def __post_init__(self) -> None:
        env_dependent = self.fault_class is not FaultClass.ENV_INDEPENDENT
        has_trigger = self.trigger is not TriggerKind.NONE
        if env_dependent and not (has_trigger or self.workload_dependent_timing):
            raise CorpusError(
                f"{self.fault_id}: environment-dependent fault needs a trigger"
            )
        if not env_dependent and (has_trigger or self.workload_dependent_timing):
            raise CorpusError(
                f"{self.fault_id}: environment-independent fault must not name a trigger"
            )

    @property
    def evidence(self) -> TriggerEvidence:
        """The curated trigger evidence for this fault."""
        return TriggerEvidence(
            trigger=self.trigger,
            reproducible_on_developer_machine=self.reproducible,
            workload_dependent_timing=self.workload_dependent_timing,
            notes=self.synopsis,
        )

    def to_report(self, *, attach_evidence: bool = True) -> BugReport:
        """Materialise this fault as a bug report.

        Args:
            attach_evidence: attach the curated evidence (ground truth).
                Renderers writing raw archives pass False so the pipeline
                must recover the evidence from text.
        """
        fixed = bool(self.fix_summary)
        comments = []
        if fixed:
            comments.append(
                Comment(
                    author="dev@" + self.application.value + ".org",
                    date=self.date + _dt.timedelta(days=14),
                    text=self.fix_summary,
                )
            )
        return BugReport(
            report_id=self.fault_id,
            application=self.application,
            component=self.component,
            version=self.version,
            date=self.date,
            reporter="user@" + self.application.value + "-users.org",
            synopsis=self.synopsis,
            severity=self.severity,
            status=Status.CLOSED if fixed else Status.ANALYZED,
            resolution=Resolution.FIXED if fixed else Resolution.UNRESOLVED,
            symptom=self.symptom,
            description=self.description,
            how_to_repeat=self.how_to_repeat,
            environment=f"{self.application.display_name} {self.version} on Linux 2.2",
            comments=comments,
            fix_summary=self.fix_summary,
            evidence=self.evidence if attach_evidence else None,
        )


@dataclasses.dataclass(frozen=True)
class StudyCorpus:
    """One application's curated study faults plus the paper's targets.

    Attributes:
        application: the application studied.
        faults: the curated faults.
        expected_counts: the paper's Table 1/2/3 per-class counts.
        raw_report_count: size of the raw archive the paper narrowed from
            (5220 Apache reports, ~500 GNOME reports, ~44,000 MySQL
            messages).
    """

    application: Application
    faults: tuple[StudyFault, ...]
    expected_counts: dict[FaultClass, int]
    raw_report_count: int

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check corpus invariants against the paper's published counts.

        Raises:
            CorpusError: on any violation.
        """
        seen: set[str] = set()
        for fault in self.faults:
            if fault.application is not self.application:
                raise CorpusError(
                    f"{fault.fault_id}: belongs to {fault.application.value}, "
                    f"not {self.application.value}"
                )
            if fault.fault_id in seen:
                raise CorpusError(f"duplicate fault id {fault.fault_id}")
            seen.add(fault.fault_id)
        actual = self.class_counts()
        if actual != self.expected_counts:
            raise CorpusError(
                f"{self.application.value}: class counts {actual} do not match "
                f"the paper's {self.expected_counts}"
            )

    def class_counts(self) -> dict[FaultClass, int]:
        """Per-class fault counts (all classes present, zero-filled)."""
        counts = {fault_class: 0 for fault_class in FaultClass}
        for fault in self.faults:
            counts[fault.fault_class] += 1
        return counts

    @property
    def total(self) -> int:
        """Number of study faults."""
        return len(self.faults)

    def ground_truth(self) -> dict[str, FaultClass]:
        """Mapping fault_id -> ground-truth class."""
        return {fault.fault_id: fault.fault_class for fault in self.faults}

    def by_class(self, fault_class: FaultClass) -> list[StudyFault]:
        """All faults of one class."""
        return [fault for fault in self.faults if fault.fault_class is fault_class]

    def versions(self) -> list[str]:
        """Distinct versions, in first-appearance order."""
        seen: dict[str, None] = {}
        for fault in self.faults:
            seen.setdefault(fault.version, None)
        return list(seen)

    def to_reports(self, *, attach_evidence: bool = True) -> list[BugReport]:
        """Materialise every fault as a bug report."""
        return [fault.to_report(attach_evidence=attach_evidence) for fault in self.faults]
