"""Bundled access to the full study (all three applications).

:func:`full_study` returns a :class:`StudyData` holding the three curated
corpora, with aggregate views matching Section 5.4 of the paper: 139
faults total, 14 environment-dependent-nontransient (10%), 12
environment-dependent-transient (9%).
"""

from __future__ import annotations

import dataclasses
import functools

from repro.bugdb.database import BugDatabase
from repro.bugdb.enums import Application, FaultClass
from repro.corpus.apache import apache_corpus
from repro.corpus.gnome import gnome_corpus
from repro.corpus.mysql import mysql_corpus
from repro.corpus.studyspec import StudyCorpus, StudyFault


@dataclasses.dataclass(frozen=True)
class StudyData:
    """The full three-application study.

    Attributes:
        corpora: mapping application -> curated corpus.
    """

    corpora: dict[Application, StudyCorpus]

    @property
    def total_faults(self) -> int:
        """Total study faults across applications (the paper's 139)."""
        return sum(corpus.total for corpus in self.corpora.values())

    def corpus(self, application: Application) -> StudyCorpus:
        """One application's corpus."""
        return self.corpora[application]

    def all_faults(self) -> list[StudyFault]:
        """Every study fault, Apache then GNOME then MySQL."""
        faults: list[StudyFault] = []
        for application in Application:
            faults.extend(self.corpora[application].faults)
        return faults

    def aggregate_counts(self) -> dict[FaultClass, int]:
        """Per-class counts across all applications (Section 5.4)."""
        counts = {fault_class: 0 for fault_class in FaultClass}
        for corpus in self.corpora.values():
            for fault_class, count in corpus.class_counts().items():
                counts[fault_class] += count
        return counts

    def ground_truth(self) -> dict[str, FaultClass]:
        """fault_id -> class for every study fault."""
        truth: dict[str, FaultClass] = {}
        for corpus in self.corpora.values():
            truth.update(corpus.ground_truth())
        return truth

    def to_database(self, *, attach_evidence: bool = True) -> BugDatabase:
        """All study faults as one indexed bug database."""
        db = BugDatabase()
        for corpus in self.corpora.values():
            db.add_all(corpus.to_reports(attach_evidence=attach_evidence))
        return db


@functools.lru_cache(maxsize=1)
def _cached_study() -> StudyData:
    return _build_study()


def _build_study() -> StudyData:
    return StudyData(
        corpora={
            Application.APACHE: apache_corpus(),
            Application.GNOME: gnome_corpus(),
            Application.MYSQL: mysql_corpus(),
        }
    )


def full_study(*, fresh: bool = False) -> StudyData:
    """The curated full study (Apache 50, GNOME 45, MySQL 44).

    Memoized: benchmarks and the CLI call this once per command (or per
    work unit), and the three curated corpora are deterministic, so
    repeat calls return the same instance instead of re-building ~139
    faults each time.

    Args:
        fresh: build (and return) a new, uncached instance -- for callers
            that mutate corpora in place or need isolation from the
            shared instance.  The memoized instance is left untouched.
    """
    if fresh:
        return _build_study()
    return _cached_study()
