"""Bundled access to the full study (all three applications).

:func:`full_study` returns a :class:`StudyData` holding the three curated
corpora, with aggregate views matching Section 5.4 of the paper: 139
faults total, 14 environment-dependent-nontransient (10%), 12
environment-dependent-transient (9%).

The shared instance is explicit module state managed by
:func:`default_study` / :func:`set_default_study` (not a hidden
``lru_cache``), so the study-graph layer can thread the same data
through an explicit :class:`~repro.studygraph.context.StudyContext`
while direct callers keep the memoized convenience path.
"""

from __future__ import annotations

import dataclasses
import threading
import types
from typing import Mapping

from repro.bugdb.database import BugDatabase
from repro.bugdb.enums import Application, FaultClass
from repro.corpus.apache import apache_corpus
from repro.corpus.gnome import gnome_corpus
from repro.corpus.mysql import mysql_corpus
from repro.corpus.studyspec import StudyCorpus, StudyFault


@dataclasses.dataclass(frozen=True)
class StudyData:
    """The full three-application study.

    Attributes:
        corpora: read-only mapping application -> curated corpus.  The
            instance returned by :func:`full_study` is shared
            process-wide, so the mapping is wrapped in a
            ``MappingProxyType`` -- callers cannot corrupt the memo by
            assigning into it (build a fresh instance via
            ``full_study(fresh=True)`` to customise).
    """

    corpora: Mapping[Application, StudyCorpus]

    def __post_init__(self) -> None:
        object.__setattr__(self, "corpora", types.MappingProxyType(dict(self.corpora)))

    def __reduce__(self):
        # MappingProxyType is not picklable; rebuild from a plain dict.
        return (StudyData, (dict(self.corpora),))

    @property
    def total_faults(self) -> int:
        """Total study faults across applications (the paper's 139)."""
        return sum(corpus.total for corpus in self.corpora.values())

    def corpus(self, application: Application) -> StudyCorpus:
        """One application's corpus."""
        return self.corpora[application]

    def all_faults(self) -> list[StudyFault]:
        """Every study fault, Apache then GNOME then MySQL."""
        faults: list[StudyFault] = []
        for application in Application:
            faults.extend(self.corpora[application].faults)
        return faults

    def aggregate_counts(self) -> dict[FaultClass, int]:
        """Per-class counts across all applications (Section 5.4)."""
        counts = {fault_class: 0 for fault_class in FaultClass}
        for corpus in self.corpora.values():
            for fault_class, count in corpus.class_counts().items():
                counts[fault_class] += count
        return counts

    def ground_truth(self) -> dict[str, FaultClass]:
        """fault_id -> class for every study fault."""
        truth: dict[str, FaultClass] = {}
        for corpus in self.corpora.values():
            truth.update(corpus.ground_truth())
        return truth

    def to_database(self, *, attach_evidence: bool = True) -> BugDatabase:
        """All study faults as one indexed bug database."""
        db = BugDatabase()
        for corpus in self.corpora.values():
            db.add_all(corpus.to_reports(attach_evidence=attach_evidence))
        return db


def _build_study() -> StudyData:
    return StudyData(
        corpora={
            Application.APACHE: apache_corpus(),
            Application.GNOME: gnome_corpus(),
            Application.MYSQL: mysql_corpus(),
        }
    )


# The process-wide shared instance; built lazily on first use.  The lock
# makes first use safe under concurrent requests (the `repro serve`
# daemon): exactly one thread builds, everyone else blocks until the
# fully-constructed immutable instance is published -- no double build,
# no half-set memo.
_DEFAULT_STUDY: StudyData | None = None
_DEFAULT_STUDY_LOCK = threading.Lock()


def default_study() -> StudyData:
    """The shared study instance, building it on first use.

    Thread-safe: concurrent first calls build the study exactly once
    (double-checked under a lock) and every caller receives the same
    fully-constructed, immutable :class:`StudyData` atomically.
    """
    global _DEFAULT_STUDY
    study = _DEFAULT_STUDY
    if study is None:
        with _DEFAULT_STUDY_LOCK:
            study = _DEFAULT_STUDY
            if study is None:
                study = _build_study()
                _DEFAULT_STUDY = study
    return study


def set_default_study(study: StudyData | None) -> None:
    """Replace (or with None, drop) the shared study instance.

    Tests and embedding applications can install a customised study;
    ``None`` forces the next :func:`default_study` call to rebuild.
    """
    global _DEFAULT_STUDY
    with _DEFAULT_STUDY_LOCK:
        _DEFAULT_STUDY = study


def full_study(*, fresh: bool = False) -> StudyData:
    """The curated full study (Apache 50, GNOME 45, MySQL 44).

    Memoized: benchmarks and the CLI call this once per command (or per
    work unit), and the three curated corpora are deterministic, so
    repeat calls return the same instance instead of re-building ~139
    faults each time.

    Args:
        fresh: build (and return) a new, uncached instance -- for
            callers that need isolation from the shared instance.  The
            shared instance is left untouched.
    """
    if fresh:
        return _build_study()
    return default_study()
