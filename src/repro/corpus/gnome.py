"""Curated GNOME study corpus: 45 faults (Table 2, Figure 2).

Table 2 of the paper: 39 environment-independent, 3
environment-dependent-nontransient, 3 environment-dependent-transient.
The six environment-dependent faults and five itemised
environment-independent examples come from Section 5.2; the remaining 34
environment-independent faults are synthesized in the same style against
the components the paper studied (the core files and libraries plus
panel, gnome-pim, gnumeric, and gmc).

Figure 2 plots faults over *time* rather than releases, "because of the
nature of GNOME"; the curated dates reproduce its shape: a high
environment-independent proportion throughout, a dip in reports for a
short interval, then an increase.
"""

from __future__ import annotations

import datetime as _dt
import functools

from repro.bugdb.enums import Application, FaultClass, Severity, Symptom, TriggerKind
from repro.corpus.studyspec import StudyCorpus, StudyFault

_EI = FaultClass.ENV_INDEPENDENT
_EDN = FaultClass.ENV_DEP_NONTRANSIENT
_EDT = FaultClass.ENV_DEP_TRANSIENT

#: Components in the paper's scope: core files and libraries plus four
#: commonly used applications.
STUDY_COMPONENTS: tuple[str, ...] = (
    "gnome-core",
    "gnome-libs",
    "panel",
    "gnome-pim",
    "gnumeric",
    "gmc",
)


def _fault(
    number: int,
    fault_class: FaultClass,
    date: _dt.date,
    component: str,
    synopsis: str,
    description: str,
    how_to_repeat: str,
    fix_summary: str,
    *,
    symptom: Symptom = Symptom.CRASH,
    trigger: TriggerKind = TriggerKind.NONE,
    reproducible: bool = True,
    workload_op: str = "",
) -> StudyFault:
    tag = {_EI: "EI", _EDN: "EDN", _EDT: "EDT"}[fault_class]
    return StudyFault(
        fault_id=f"GNOME-{tag}-{number:02d}",
        application=Application.GNOME,
        component=component,
        version="1.0",
        date=date,
        synopsis=synopsis,
        description=description,
        how_to_repeat=how_to_repeat,
        fix_summary=fix_summary,
        symptom=symptom,
        trigger=trigger,
        fault_class=fault_class,
        reproducible=reproducible,
        workload_op=workload_op or f"gnome-op-{tag.lower()}-{number:02d}",
        severity=Severity.CRITICAL if symptom is Symptom.CRASH else Severity.SERIOUS,
    )


_EDN_FAULTS = (
    _fault(
        1, _EDN, _dt.date(1998, 11, 12), "gnome-libs",
        "session applications die after the machine's name is changed",
        "The hostname of the machine was changed while the application was "
        "running; display connections authenticated against the old name "
        "fail from then on, and the failure persists until the old name is "
        "restored or the session restarts with the new one.",
        "Run any session application, change the machine hostname, then "
        "open a new window.",
        "None in the application; the environment must be restored.",
        symptom=Symptom.CRASH,
        trigger=TriggerKind.HOST_CONFIG_CHANGE,
        workload_op="open-window",
    ),
    _fault(
        2, _EDN, _dt.date(1999, 1, 20), "gnome-core",
        "sound utilities exhaust descriptors with sockets left open on exit",
        "Open sockets are left around by the sound utilities while "
        "exiting. Each open socket consumes a file descriptor and the "
        "application eventually runs out of file descriptors; a recovery "
        "system that preserves application state preserves the leaked "
        "descriptors too.",
        "Start and stop sound events repeatedly, then open any dialog that "
        "needs a descriptor.",
        "Closed the event sockets in the exit path.",
        symptom=Symptom.ERROR_RETURN,
        trigger=TriggerKind.FILE_DESCRIPTOR_EXHAUSTION,
        workload_op="play-sound",
    ),
    _fault(
        3, _EDN, _dt.date(1999, 6, 8), "gmc",
        "gmc crashes editing a file with an illegal owner field",
        "A file has an illegal value in the owner field. The application "
        "crashes when trying to edit the file or its properties, and the "
        "bad metadata persists on disk across recovery.",
        "Set a file's owner to an id with no passwd entry and open its "
        "properties dialog.",
        "Displayed unknown owners numerically instead of dereferencing the "
        "missing entry.",
        symptom=Symptom.CRASH,
        trigger=TriggerKind.CORRUPT_EXTERNAL_STATE,
        workload_op="edit-properties",
    ),
)

_EDT_FAULTS = (
    _fault(
        1, _EDT, _dt.date(1998, 12, 3), "gnome-core",
        "unknown startup failure which works on a retry",
        "An unknown failure of the application at startup, which works on "
        "a retry. Developers could not reproduce the failure on their "
        "machines.",
        "Not known; the reporter saw it once and a retry succeeded.",
        "Never isolated.",
        symptom=Symptom.CRASH,
        trigger=TriggerKind.UNKNOWN_TRANSIENT,
        reproducible=False,
        workload_op="startup",
    ),
    _fault(
        2, _EDT, _dt.date(1999, 5, 17), "gmc",
        "race condition between the image viewer and the property editor",
        "A race condition between an image viewer and a property editor "
        "over the same file's metadata crashes whichever loses the race. "
        "Race conditions depend on the exact timing of thread scheduling "
        "events, and these are likely to change during retry.",
        "Open the same image in the viewer and the property editor and "
        "close both quickly; crashes intermittently.",
        "Took a reference on the metadata object before handing it to the "
        "second window.",
        symptom=Symptom.CRASH,
        trigger=TriggerKind.RACE_CONDITION,
        workload_op="view-and-edit",
    ),
    _fault(
        3, _EDT, _dt.date(1999, 7, 22), "panel",
        "race condition between an applet action request and its removal",
        "A race condition between a request for action from an applet and "
        "its removal from the panel: if the removal wins, the action is "
        "delivered to a destroyed object and the panel crashes.",
        "Right-click an applet and remove it at the same moment from "
        "another panel; intermittent.",
        "Validated the applet handle before dispatching the action.",
        symptom=Symptom.CRASH,
        trigger=TriggerKind.RACE_CONDITION,
        workload_op="applet-action",
    ),
)

# (date, component, synopsis, description, how_to_repeat, fix, symptom, op)
_EI_SPECS: tuple[tuple[_dt.date, str, str, str, str, str, Symptom, str], ...] = (
    (
        _dt.date(1998, 10, 6), "panel",
        "clicking the tasklist tab in gnome-pager settings kills the pager",
        "Clicking on the \"tasklist\" tab in the gnome-pager settings "
        "dialog causes the pager to die, every time.",
        "Open pager settings and click the tasklist tab.",
        "Initialized the tasklist page widgets before showing the tab.",
        Symptom.CRASH, "pager-settings-tab",
    ),
    (
        _dt.date(1998, 10, 14), "gnome-pim",
        "prev button in the calendar year view crashes gnomecal",
        "Clicking on the \"prev\" button in the \"year\" view of the "
        "calendar application causes it to crash. This was due to "
        "assigning a value to a local copy of the variable instead of the "
        "global copy.",
        "Switch the calendar to year view and click prev.",
        "Assigned the new year to the global variable.",
        Symptom.CRASH, "calendar-prev-year",
    ),
    (
        _dt.date(1998, 11, 2), "gnumeric",
        "gnumeric crashes on tab in the define-name dialog",
        "The spreadsheet application crashes if a tab is pressed in the "
        "\"define name\" dialog or in the \"File/Summary\" dialog. This "
        "was caused by initializing a variable to an incorrect value.",
        "Open the define-name dialog and press tab.",
        "Initialized the focus chain variable correctly.",
        Symptom.CRASH, "dialog-tab",
    ),
    (
        _dt.date(1998, 11, 19), "gmc",
        "double-clicking a tar.gz icon on the desktop crashes gmc",
        "Double-clicking on a \"tar.gz\" file that is lying as an icon on "
        "the desktop crashes gmc, the file manager. This was caused due to "
        "the declaration of a variable as \"long\" instead of \"unsigned "
        "long\".",
        "Place a tar.gz on the desktop and double-click it.",
        "Declared the offset variable unsigned long.",
        Symptom.CRASH, "open-archive",
    ),
    (
        _dt.date(1998, 12, 9), "gnome-core",
        "clicking the desktop to dismiss the main menu freezes the desktop",
        "After clicking the main button once to pop up the main menu, a "
        "click again on the desktop in order to remove the menu freezes "
        "the desktop, deterministically.",
        "Click the main menu button, then click the desktop background.",
        "Released the pointer grab when the menu is dismissed.",
        Symptom.HANG, "dismiss-menu",
    ),
    (
        _dt.date(1998, 10, 27), "gnome-libs",
        "gnome_config crashes on a key with an empty section name",
        "Reading a configuration key whose section component is empty "
        "makes the config parser dereference a null section record.",
        "Call gnome_config_get_string(\"/app//key\").",
        "Rejected empty section names.",
        Symptom.CRASH, "read-config",
    ),
    (
        _dt.date(1998, 11, 25), "panel",
        "panel crashes when the last applet is moved right",
        "Moving the only applet on a panel toward the right edge walks off "
        "the end of the applet list and crashes the panel.",
        "Add a single applet and drag it to the far right.",
        "Clamped the target position to the list length.",
        Symptom.CRASH, "move-applet",
    ),
    (
        _dt.date(1998, 12, 16), "gnumeric",
        "pasting a cell range into itself corrupts the sheet",
        "Pasting a copied range onto a region that overlaps the source "
        "corrupts cell contents deterministically.",
        "Copy A1:B10 and paste at A5.",
        "Buffered the source range before writing the destination.",
        Symptom.DATA_CORRUPTION, "paste-overlap",
    ),
    (
        _dt.date(1998, 12, 22), "gnome-pim",
        "deleting a recurring appointment's first instance crashes gnomecal",
        "Deleting the first instance of a recurring appointment leaves the "
        "recurrence anchor dangling; the next redraw crashes.",
        "Create a weekly appointment and delete its first occurrence.",
        "Re-anchored the recurrence on the next instance.",
        Symptom.CRASH, "delete-recurrence",
    ),
    (
        _dt.date(1999, 1, 7), "gmc",
        "renaming a file to an empty string crashes gmc",
        "Accepting the rename dialog with an empty name passes a "
        "zero-length string to the move operation, which crashes.",
        "Select a file, choose rename, clear the field, press enter.",
        "Disabled the OK button for empty names.",
        Symptom.CRASH, "rename-empty",
    ),
    (
        _dt.date(1999, 1, 13), "gnumeric",
        "circular reference in a formula hangs recalculation",
        "A formula referring to its own cell sends the recalculation "
        "engine into an unbounded loop; the application stops responding.",
        "Enter =A1+1 into cell A1.",
        "Added cycle detection to the dependency walker.",
        Symptom.HANG, "recalc-cycle",
    ),
    (
        _dt.date(1999, 1, 26), "panel",
        "panel dies loading a session file with an unknown applet id",
        "A session file naming an applet that is not installed makes the "
        "panel dereference the failed lookup and die at login, every "
        "login.",
        "Remove an applet package and log in with a session referencing it.",
        "Skipped unknown applets with a warning dialog.",
        Symptom.CRASH, "load-session",
    ),
    (
        _dt.date(1999, 2, 4), "gnome-libs",
        "gdk-pixbuf crashes on a zero-width XPM",
        "Loading an XPM image whose header declares zero width makes the "
        "scaler divide by zero and crash any application that renders it.",
        "Open a zero-width XPM in any image-using application.",
        "Validated image dimensions at load time.",
        Symptom.CRASH, "load-image",
    ),
    (
        _dt.date(1999, 2, 10), "gnome-pim",
        "importing a vCard without a name field crashes gnomecard",
        "A vCard lacking the N: field makes the importer format a null "
        "name pointer and crash.",
        "Import a vCard containing only an EMAIL line.",
        "Substituted an empty name when the field is missing.",
        Symptom.CRASH, "import-vcard",
    ),
    (
        _dt.date(1999, 2, 17), "gnumeric",
        "sorting a selection containing merged cells crashes",
        "Sorting a range that intersects a merged cell region reads a "
        "stale span record and crashes reproducibly.",
        "Merge B2:B3, select A1:C5, sort ascending.",
        "Refused to sort across merges with a clear message.",
        Symptom.CRASH, "sort-merged",
    ),
    (
        _dt.date(1999, 2, 23), "gmc",
        "gmc crashes entering a directory whose name contains %s",
        "A directory name containing a percent-s sequence is passed to a "
        "printf-style formatter as the format string, crashing gmc.",
        "mkdir '%s' and double-click it.",
        "Passed names as arguments, never as format strings.",
        Symptom.CRASH, "open-dir-format",
    ),
    (
        _dt.date(1999, 3, 3), "gnome-core",
        "help browser crashes on a man page with no sections",
        "Rendering a manual page that contains no section headers "
        "dereferences an empty section list.",
        "View a man page consisting of a single paragraph.",
        "Handled the empty-section case in the renderer.",
        Symptom.CRASH, "view-manpage",
    ),
    (
        _dt.date(1999, 3, 16), "panel",
        "drawer inside a drawer crashes the panel on open",
        "Opening a drawer applet that itself lives inside a drawer "
        "recurses with the wrong parent pointer and crashes.",
        "Add a drawer to a drawer and click the inner one.",
        "Fixed the parent assignment for nested drawers.",
        Symptom.CRASH, "open-drawer",
    ),
    (
        _dt.date(1999, 3, 29), "gnumeric",
        "CSV import with a quoted field over 1024 bytes crashes",
        "Importing a CSV row whose quoted field exceeds the fixed parse "
        "buffer overflows it and crashes the importer every time.",
        "Import a CSV with a 2000-character quoted cell.",
        "Grew the parse buffer dynamically.",
        Symptom.CRASH, "import-csv",
    ),
    (
        _dt.date(1999, 4, 8), "gnome-pim",
        "setting an alarm for a past time hangs gnomecal",
        "An appointment alarm set for a time already past makes the alarm "
        "scheduler loop rearming it forever; the application stops "
        "responding.",
        "Create an appointment with an alarm five minutes in the past.",
        "Skipped alarms whose time already passed.",
        Symptom.HANG, "set-alarm",
    ),
    (
        _dt.date(1999, 4, 21), "gnome-libs",
        "ORBit stub crashes on a reply with an empty string sequence",
        "Demarshalling a CORBA reply containing an empty sequence of "
        "strings reads the element count from the wrong offset and "
        "crashes the client, deterministically for that reply shape.",
        "Invoke any method returning an empty string sequence.",
        "Corrected the demarshalling offset.",
        Symptom.CRASH, "corba-call",
    ),
    (
        _dt.date(1999, 5, 5), "gmc",
        "dragging a file onto its own icon deletes the file",
        "Dropping a file onto itself triggers the move path with "
        "identical source and target, which removes the file after the "
        "copy is skipped; data is lost every time.",
        "Drag a file and drop it on its own icon.",
        "Made same-file moves a no-op.",
        Symptom.DATA_CORRUPTION, "drag-self",
    ),
    (
        _dt.date(1999, 5, 11), "panel",
        "logout dialog crashes when no window manager is running",
        "Requesting logout with no window manager running dereferences "
        "the null session-manager connection and crashes the panel.",
        "Kill the window manager, then click logout.",
        "Checked the connection before use.",
        Symptom.CRASH, "logout",
    ),
    (
        _dt.date(1999, 5, 19), "gnumeric",
        "defining a name that shadows a function crashes evaluation",
        "Defining the name SUM and then using SUM() in a formula makes "
        "the evaluator call the name record as a function and crash.",
        "Define name SUM=1 and type =SUM(A1:A3).",
        "Namespaced user names away from builtins.",
        Symptom.CRASH, "define-shadow-name",
    ),
    (
        _dt.date(1999, 5, 26), "gnome-core",
        "screenshot capture of a 0x0 window crashes the capture utility",
        "Capturing a window that has been resized to zero area makes the "
        "capture code allocate a zero-byte image and crash writing to it.",
        "Shade a window to zero height and take a window screenshot.",
        "Rejected zero-area captures.",
        Symptom.CRASH, "capture-window",
    ),
    (
        _dt.date(1999, 6, 2), "gnome-pim",
        "todo list crashes when sorting an empty list by priority",
        "Sorting an empty todo list by priority passes a null list head "
        "to the comparator setup and crashes.",
        "Open the todo list with no entries and click the priority column.",
        "Guarded the empty-list case.",
        Symptom.CRASH, "sort-todo",
    ),
    (
        _dt.date(1999, 6, 15), "gnumeric",
        "printing a sheet with a chart crashes gnumeric",
        "Printing any sheet containing a chart object passes the screen "
        "rendering context to the print path, which crashes.",
        "Insert a chart and choose print.",
        "Created a print-specific rendering context.",
        Symptom.CRASH, "print-chart",
    ),
    (
        _dt.date(1999, 6, 22), "gmc",
        "ftp URL without a host crashes the virtual filesystem",
        "Opening the location 'ftp://' with no host makes the VFS layer "
        "index an empty host string and crash.",
        "Type ftp:// into the location bar and press enter.",
        "Validated the URL before connecting.",
        Symptom.CRASH, "open-url",
    ),
    (
        _dt.date(1999, 6, 29), "panel",
        "clock applet crashes on a locale with no AM/PM strings",
        "The clock applet formats twelve-hour time using the locale's "
        "AM/PM strings; locales defining none return null and the applet "
        "crashes at the first repaint.",
        "Run with LC_TIME set to such a locale and add the clock applet.",
        "Fell back to 24-hour format.",
        Symptom.CRASH, "clock-repaint",
    ),
    (
        _dt.date(1999, 7, 6), "gnome-libs",
        "recently-used list crashes after exactly 64 entries",
        "Adding a 65th entry to the recently-used file list overflows the "
        "fixed menu array and crashes whichever application updates it.",
        "Open 65 distinct documents in any libs-using application.",
        "Made the list length dynamic.",
        Symptom.CRASH, "recent-files",
    ),
    (
        _dt.date(1999, 7, 13), "gnumeric",
        "undo after deleting a sheet restores cells to the wrong sheet",
        "Undoing a sheet deletion rebinds the restored cells to the "
        "current sheet index, corrupting both sheets' contents "
        "deterministically.",
        "Delete sheet 2 of 3, then undo.",
        "Recorded the sheet identity in the undo record.",
        Symptom.DATA_CORRUPTION, "undo-sheet-delete",
    ),
    (
        _dt.date(1999, 7, 20), "gnome-core",
        "session save with more than 32 clients truncates the session",
        "Saving a session with more than 32 registered clients writes past "
        "the client array, corrupting the saved session file every time.",
        "Register 33 session clients and log out saving the session.",
        "Sized the client table dynamically.",
        Symptom.DATA_CORRUPTION, "save-session",
    ),
    (
        _dt.date(1999, 7, 27), "gmc",
        "gmc crashes unpacking an archive entry with an absolute path",
        "Extracting an archive member whose stored name is absolute makes "
        "the extraction path logic strip the name to an empty string and "
        "crash.",
        "Open an archive containing the member /etc/motd and extract it.",
        "Sanitized member names before extraction.",
        Symptom.CRASH, "extract-archive",
    ),
    (
        _dt.date(1999, 2, 26), "gnome-core",
        "applet adding dialog crashes when the applet list is filtered to none",
        "Filtering the add-applet dialog to an empty result and pressing "
        "OK dereferences the empty selection and crashes the dialog "
        "process.",
        "Type a non-matching filter string and press OK.",
        "Disabled OK on empty selection.",
        Symptom.CRASH, "add-applet",
    ),
    (
        _dt.date(1998, 10, 20), "gnumeric",
        "gnumeric crashes autofitting a column of empty cells",
        "Autofitting the width of a column that contains no values takes "
        "the maximum of an empty extent list and crashes.",
        "Select an empty column and choose autofit width.",
        "Used the default width for empty columns.",
        Symptom.CRASH, "autofit-empty",
    ),
    (
        _dt.date(1999, 1, 29), "gmc",
        "find-file dialog crashes on a pattern of only wildcards",
        "A search pattern consisting solely of '*' characters collapses "
        "to an empty compiled pattern and the matcher dereferences it.",
        "Open find file, enter '***', press start.",
        "Normalized the pattern before compiling.",
        Symptom.CRASH, "find-files",
    ),
    (
        _dt.date(1999, 6, 17), "panel",
        "swallowed application with an empty title crashes the panel",
        "Swallowing an application window whose title is empty matches "
        "every window and the panel crashes embedding its own window.",
        "Add a swallow applet with an empty title field.",
        "Required a non-empty title for swallowing.",
        Symptom.CRASH, "swallow-app",
    ),
    (
        _dt.date(1999, 7, 8), "gnome-pim",
        "exporting an empty address book writes a corrupt file",
        "Exporting an address book with no entries writes the vCard "
        "trailer with no header, producing output the importer can never "
        "read back.",
        "Export an empty address book and re-import the result.",
        "Wrote a well-formed empty document.",
        Symptom.DATA_CORRUPTION, "export-empty",
    ),
    (
        _dt.date(1999, 3, 22), "gnome-libs",
        "metadata store crashes on keys longer than 255 bytes",
        "Storing a metadata key longer than 255 bytes truncates it into "
        "the length byte and corrupts the store, crashing the next "
        "reader.",
        "Set metadata with a 300-byte key, then read any key.",
        "Hashed long keys instead of truncating.",
        Symptom.CRASH, "metadata-set",
    ),
)


@functools.lru_cache(maxsize=1)
def gnome_corpus() -> StudyCorpus:
    """The curated GNOME corpus (Table 2: 39 / 3 / 3)."""
    ei_faults = tuple(
        _fault(
            index, _EI, date, component, synopsis, description,
            how_to_repeat, fix, symptom=symptom, workload_op=op,
        )
        for index, (date, component, synopsis, description, how_to_repeat,
                    fix, symptom, op) in enumerate(_EI_SPECS, start=1)
    )
    return StudyCorpus(
        application=Application.GNOME,
        faults=ei_faults + _EDN_FAULTS + _EDT_FAULTS,
        expected_counts={_EI: 39, _EDN: 3, _EDT: 3},
        raw_report_count=500,
    )
