"""Study-graph adapters for the classification layer (C1 + ablation).

C1 is the methodology-fidelity check: the mechanical text classifier
must recover the paper's hand labels for all 139 faults.  The
recovery-model ablation moves the transient/nontransient boundary the
paper says "depends upon the recovery system in place" and verifies the
environment-independent majority never moves.
"""

from __future__ import annotations

from typing import Any, Mapping, TYPE_CHECKING

from repro.bugdb.enums import FaultClass
from repro.classify.evaluation import evaluate_classifier
from repro.classify.recovery_model import (
    ELASTIC_ENVIRONMENT,
    PAPER_DEFAULT,
    RESTART_FRESH,
    RecoveryModel,
)
from repro.classify.rules import RuleClassifier
from repro.classify.text import TextClassifier
from repro.reports.tableformat import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.studygraph.context import StudyContext

#: Section 5.4 recovery-model ablation points.
RECOVERY_MODELS: tuple[tuple[str, RecoveryModel], ...] = (
    ("paper-default", PAPER_DEFAULT),
    ("restart-fresh", RESTART_FRESH),
    ("elastic-environment", ELASTIC_ENVIRONMENT),
    (
        "pessimal",
        RecoveryModel(kills_application_processes=False, expects_external_repair=False),
    ),
)


def classifier_fidelity(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Experiment C1: text-classifier accuracy vs. the paper's labels."""
    classifier = TextClassifier()
    reports = []
    truth = {}
    for corpus in ctx.study.corpora.values():
        reports.extend(corpus.to_reports(attach_evidence=False))
        truth.update(corpus.ground_truth())
    matrix = evaluate_classifier(classifier, reports, truth)
    rows = [
        [
            fault_class.value,
            f"{matrix.precision(fault_class):.0%}",
            f"{matrix.recall(fault_class):.0%}",
        ]
        for fault_class in FaultClass
    ]
    rows.append(["accuracy", f"{matrix.accuracy:.0%}", f"n={matrix.total}"])
    text = format_table(
        ["class", "precision", "recall"],
        rows,
        title="Classifier fidelity vs. ground truth (C1)",
    )
    return {
        "total": matrix.total,
        "accuracy": matrix.accuracy,
        "misclassified": matrix.misclassified(),
        "text": text,
    }


def _recovery_model_counts(ctx: "StudyContext", label: str) -> dict[str, int]:
    """Class counts for one recovery model over the full study."""
    model = dict(RECOVERY_MODELS)[label]
    classifier = RuleClassifier(model)
    counts = {fault_class: 0 for fault_class in FaultClass}
    for fault in ctx.study.all_faults():
        counts[classifier.classify_evidence(fault.evidence).fault_class] += 1
    return {fault_class.value: count for fault_class, count in counts.items()}


def _ablation_text(counts_by_model: Mapping[str, Mapping[str, int]]) -> str:
    """The classic §5.4 ablation table (shared, byte-stable render)."""
    rows = [
        [
            label,
            counts_by_model[label][FaultClass.ENV_INDEPENDENT.value],
            counts_by_model[label][FaultClass.ENV_DEP_NONTRANSIENT.value],
            counts_by_model[label][FaultClass.ENV_DEP_TRANSIENT.value],
        ]
        for label, _ in RECOVERY_MODELS
    ]
    return format_table(
        ["recovery model", "EI", "EDN", "EDT"],
        rows,
        title="Recovery-model ablation: the boundary moves, the EI majority does not",
    )


def ablate_recovery_model(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Section 5.4 ablation: reclassify under four recovery models.

    The classic monolithic producer -- kept as the byte-identity oracle
    for the grid-expanded path (:func:`ablate_recovery_model_from_points`
    must render exactly this text from per-model point payloads).
    """
    counts_by_model = {
        label: _recovery_model_counts(ctx, label) for label, _ in RECOVERY_MODELS
    }
    return {"counts": counts_by_model, "text": _ablation_text(counts_by_model)}


def recovery_model_point(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """One recovery-model grid point: class counts under one model."""
    label = params["model"]
    counts = _recovery_model_counts(ctx, label)
    return {
        "model": label,
        "counts": counts,
        "text": f"{label}: " + ", ".join(
            f"{name}={count}" for name, count in sorted(counts.items())
        ),
    }


def ablate_recovery_model_from_points(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Aggregation node: the §5.4 ablation table from grid points.

    Byte-identical to :func:`ablate_recovery_model` -- the points carry
    the per-model counts; this node only reassembles and renders.
    """
    by_model = {payload["model"]: payload["counts"] for payload in inputs.values()}
    counts_by_model = {label: dict(by_model[label]) for label, _ in RECOVERY_MODELS}
    return {"counts": counts_by_model, "text": _ablation_text(counts_by_model)}
