"""Study-graph adapters for the classification layer (C1 + ablation).

C1 is the methodology-fidelity check: the mechanical text classifier
must recover the paper's hand labels for all 139 faults.  The
recovery-model ablation moves the transient/nontransient boundary the
paper says "depends upon the recovery system in place" and verifies the
environment-independent majority never moves.
"""

from __future__ import annotations

from typing import Any, Mapping, TYPE_CHECKING

from repro.bugdb.enums import FaultClass
from repro.classify.evaluation import evaluate_classifier
from repro.classify.recovery_model import (
    ELASTIC_ENVIRONMENT,
    PAPER_DEFAULT,
    RESTART_FRESH,
    RecoveryModel,
)
from repro.classify.rules import RuleClassifier
from repro.classify.text import TextClassifier
from repro.reports.tableformat import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.studygraph.context import StudyContext

#: Section 5.4 recovery-model ablation points.
RECOVERY_MODELS: tuple[tuple[str, RecoveryModel], ...] = (
    ("paper-default", PAPER_DEFAULT),
    ("restart-fresh", RESTART_FRESH),
    ("elastic-environment", ELASTIC_ENVIRONMENT),
    (
        "pessimal",
        RecoveryModel(kills_application_processes=False, expects_external_repair=False),
    ),
)


def classifier_fidelity(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Experiment C1: text-classifier accuracy vs. the paper's labels."""
    classifier = TextClassifier()
    reports = []
    truth = {}
    for corpus in ctx.study.corpora.values():
        reports.extend(corpus.to_reports(attach_evidence=False))
        truth.update(corpus.ground_truth())
    matrix = evaluate_classifier(classifier, reports, truth)
    rows = [
        [
            fault_class.value,
            f"{matrix.precision(fault_class):.0%}",
            f"{matrix.recall(fault_class):.0%}",
        ]
        for fault_class in FaultClass
    ]
    rows.append(["accuracy", f"{matrix.accuracy:.0%}", f"n={matrix.total}"])
    text = format_table(
        ["class", "precision", "recall"],
        rows,
        title="Classifier fidelity vs. ground truth (C1)",
    )
    return {
        "total": matrix.total,
        "accuracy": matrix.accuracy,
        "misclassified": matrix.misclassified(),
        "text": text,
    }


def ablate_recovery_model(
    ctx: "StudyContext", inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Section 5.4 ablation: reclassify under four recovery models."""
    faults = ctx.study.all_faults()
    rows = []
    counts_by_model: dict[str, dict[str, int]] = {}
    for label, model in RECOVERY_MODELS:
        classifier = RuleClassifier(model)
        counts = {fault_class: 0 for fault_class in FaultClass}
        for fault in faults:
            counts[classifier.classify_evidence(fault.evidence).fault_class] += 1
        counts_by_model[label] = {
            fault_class.value: count for fault_class, count in counts.items()
        }
        rows.append(
            [
                label,
                counts[FaultClass.ENV_INDEPENDENT],
                counts[FaultClass.ENV_DEP_NONTRANSIENT],
                counts[FaultClass.ENV_DEP_TRANSIENT],
            ]
        )
    text = format_table(
        ["recovery model", "EI", "EDN", "EDT"],
        rows,
        title="Recovery-model ablation: the boundary moves, the EI majority does not",
    )
    return {"counts": counts_by_model, "text": text}
