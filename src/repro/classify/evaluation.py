"""Classifier evaluation against curated ground truth.

The curated study corpus carries the paper's own per-fault labels; this
module measures how faithfully the automatic classifiers recover them
(confusion matrix, accuracy, per-class precision and recall).  The paper
did the classification by hand; matching its labels mechanically is the
methodology-fidelity check for this reproduction.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Iterable, Protocol

from repro.bugdb.enums import FaultClass
from repro.bugdb.model import BugReport
from repro.classify.rules import Classification

_CLASSES = tuple(FaultClass)


class _Classifier(Protocol):
    def classify_report(self, report: BugReport) -> Classification: ...


@dataclasses.dataclass(frozen=True)
class ConfusionMatrix:
    """A 3x3 confusion matrix over the paper's fault classes.

    Attributes:
        counts: mapping ``(truth, predicted) -> count``.
    """

    counts: dict[tuple[FaultClass, FaultClass], int]

    @property
    def total(self) -> int:
        """Number of classified faults."""
        return sum(self.counts.values())

    @property
    def accuracy(self) -> float:
        """Fraction of faults assigned their ground-truth class."""
        if self.total == 0:
            return 0.0
        correct = sum(
            count for (truth, predicted), count in self.counts.items() if truth is predicted
        )
        return correct / self.total

    def precision(self, fault_class: FaultClass) -> float:
        """Precision for one class (1.0 when the class was never predicted)."""
        predicted = sum(
            count for (_, pred), count in self.counts.items() if pred is fault_class
        )
        if predicted == 0:
            return 1.0
        correct = self.counts.get((fault_class, fault_class), 0)
        return correct / predicted

    def recall(self, fault_class: FaultClass) -> float:
        """Recall for one class (1.0 when the class never occurs in truth)."""
        actual = sum(
            count for (truth, _), count in self.counts.items() if truth is fault_class
        )
        if actual == 0:
            return 1.0
        correct = self.counts.get((fault_class, fault_class), 0)
        return correct / actual

    def misclassified(self) -> int:
        """Number of faults assigned a wrong class."""
        return self.total - sum(
            count for (truth, pred), count in self.counts.items() if truth is pred
        )


def evaluate_classifier(
    classifier: _Classifier,
    reports: Iterable[BugReport],
    ground_truth: dict[str, FaultClass],
) -> ConfusionMatrix:
    """Run ``classifier`` over ``reports`` and compare to ground truth.

    Args:
        classifier: anything with a ``classify_report(report)`` method.
        reports: the reports to classify.
        ground_truth: mapping ``report_id -> FaultClass``; reports without
            an entry are skipped (they are noise, not study faults).

    Returns:
        The confusion matrix of truth vs. prediction.
    """
    counter: Counter[tuple[FaultClass, FaultClass]] = Counter()
    for report in reports:
        truth = ground_truth.get(report.report_id)
        if truth is None:
            continue
        predicted = classifier.classify_report(report).fault_class
        counter[(truth, predicted)] += 1
    return ConfusionMatrix(counts=dict(counter))


def class_distribution(classifications: Iterable[Classification]) -> dict[FaultClass, int]:
    """Count classifications per fault class (all classes present, zero-filled)."""
    distribution = {fault_class: 0 for fault_class in _CLASSES}
    for classification in classifications:
        distribution[classification.fault_class] += 1
    return distribution
