"""Rule classifier over structured trigger evidence.

This encodes the paper's Section 3 decision procedure:

1. If no operating-environment condition is implicated, the fault is
   **environment-independent** (deterministic given the workload).
2. Otherwise, ask whether the implicated condition is likely to clear on
   retry *under the assumed recovery system*
   (:class:`~repro.classify.recovery_model.RecoveryModel`): if yes the
   fault is **environment-dependent-transient**, if no
   **environment-dependent-nontransient**.

One subtlety from Section 3: the paper counts *workload request timing*
(the user's typing speed, pressing stop mid-download) as part of the
environment, while the *sequence* of requests is part of the program.
Evidence therefore carries a ``workload_dependent_timing`` flag that
forces environment dependence even when no OS-level resource is named.
"""

from __future__ import annotations

import dataclasses

from repro.bugdb.enums import FaultClass, TriggerKind
from repro.bugdb.model import BugReport, TriggerEvidence
from repro.classify.recovery_model import PAPER_DEFAULT, RecoveryModel
from repro.errors import ClassificationError


@dataclasses.dataclass(frozen=True)
class Classification:
    """The outcome of classifying one fault.

    Attributes:
        fault_class: the assigned three-way class.
        trigger: the environmental trigger the decision was based on.
        rationale: a human-readable explanation of the decision, in the
            style of the paper's per-fault discussions.
    """

    fault_class: FaultClass
    trigger: TriggerKind
    rationale: str

    @property
    def survivable_by_generic_recovery(self) -> bool:
        """Whether retry under generic recovery is likely to succeed."""
        return self.fault_class is FaultClass.ENV_DEP_TRANSIENT


class RuleClassifier:
    """Classifies faults from :class:`~repro.bugdb.model.TriggerEvidence`.

    Args:
        recovery_model: the assumed recovery system; defaults to the
            paper's assumptions.
    """

    def __init__(self, recovery_model: RecoveryModel = PAPER_DEFAULT):
        self.recovery_model = recovery_model

    def classify_evidence(self, evidence: TriggerEvidence) -> Classification:
        """Classify from structured evidence alone."""
        trigger = evidence.trigger
        if trigger is TriggerKind.NONE and evidence.workload_dependent_timing:
            # Timing of requests is environmental (Section 3); retry is
            # unlikely to reproduce the exact timing.
            trigger = TriggerKind.WORKLOAD_TIMING

        if trigger is TriggerKind.NONE:
            return Classification(
                fault_class=FaultClass.ENV_INDEPENDENT,
                trigger=TriggerKind.NONE,
                rationale=(
                    "No operating-environment condition is implicated; the "
                    "fault fires deterministically for the given workload."
                ),
            )

        if self.recovery_model.condition_clears_on_retry(trigger):
            return Classification(
                fault_class=FaultClass.ENV_DEP_TRANSIENT,
                trigger=trigger,
                rationale=(
                    f"Triggered by {trigger.value}; under the assumed recovery "
                    "system this condition is likely to be fixed during retry."
                ),
            )
        return Classification(
            fault_class=FaultClass.ENV_DEP_NONTRANSIENT,
            trigger=trigger,
            rationale=(
                f"Triggered by {trigger.value}; under the assumed recovery "
                "system this condition is likely to persist during retry."
            ),
        )

    def classify_report(self, report: BugReport) -> Classification:
        """Classify a report that carries structured evidence.

        Raises:
            ClassificationError: if the report has no evidence attached
                (run :func:`repro.classify.evidence.extract_evidence` or use
                :class:`~repro.classify.text.TextClassifier` for raw reports).
        """
        if report.evidence is None:
            raise ClassificationError(
                f"report {report.report_id} has no trigger evidence; "
                "extract evidence from its text first"
            )
        return self.classify_evidence(report.evidence)
