"""End-to-end text classifier: raw report -> evidence -> class.

This is the pipeline a user runs on freshly mined reports that carry no
curated evidence: extract structured trigger evidence from the free text
(:mod:`repro.classify.evidence`) and feed it to the rule classifier
(:mod:`repro.classify.rules`).
"""

from __future__ import annotations

from repro.bugdb.model import BugReport
from repro.classify.evidence import extract_evidence
from repro.classify.recovery_model import PAPER_DEFAULT, RecoveryModel
from repro.classify.rules import Classification, RuleClassifier


class TextClassifier:
    """Classifies raw bug reports from their free text alone.

    Args:
        recovery_model: the assumed recovery system; defaults to the
            paper's assumptions.
    """

    def __init__(self, recovery_model: RecoveryModel = PAPER_DEFAULT):
        self._rules = RuleClassifier(recovery_model)

    @property
    def recovery_model(self) -> RecoveryModel:
        """The recovery model this classifier assumes."""
        return self._rules.recovery_model

    def classify_report(self, report: BugReport) -> Classification:
        """Classify one report, preferring curated evidence when present."""
        if report.evidence is not None:
            return self._rules.classify_report(report)
        return self._rules.classify_evidence(extract_evidence(report))

    def classify_all(self, reports: list[BugReport]) -> list[Classification]:
        """Classify many reports, preserving order."""
        return [self.classify_report(report) for report in reports]
