"""Parameterised model of the assumed generic-recovery system.

Section 5.4 of the paper: "classifying bugs between
environment-dependent-transient and environment-dependent-nontransient
classes is subjective and depends upon the recovery system in place."
This module encodes exactly which assumptions the paper makes, as
explicit booleans, so the boundary can be moved and its effect measured
(the recovery-model ablation benchmark).

The default instance reproduces the paper's assumptions:

* recovery preserves *all* application state (checkpointing/logging), so
  leaked resources survive recovery (Section 2: "a truly generic recovery
  mechanism must preserve all application state");
* recovery kills all processes related to the application, freeing
  process-table slots and ports held by hung children (Section 3);
* the system does **not** automatically grow storage, so full-disk and
  file-size-limit conditions persist (Section 3: "most current systems do
  not fix this condition automatically");
* external services (DNS, the network) are expected to be repaired
  eventually without application-specific help (Section 5.1).
"""

from __future__ import annotations

import dataclasses

from repro.bugdb.enums import TriggerKind


@dataclasses.dataclass(frozen=True)
class RecoveryModel:
    """The environmental side-effects assumed of the recovery system.

    Attributes:
        preserves_all_state: recovery restores every byte of application
            state, so application-held leaks (memory, descriptors) persist.
            Setting this False models restart-from-scratch recovery, which
            is no longer "truly generic" (it loses state) but clears leaks.
        kills_application_processes: recovery kills all processes related
            to the application, freeing process slots and ports.
        auto_extends_storage: the system can automatically grow disks /
            raise file-size limits (Section 3 notes full-disk would be
            re-classified transient "if this becomes common").
        reclaims_leaked_os_resources: the system garbage-collects unused
            OS resources such as idle file descriptors (Section 6.2's
            proposed mitigation).
        expects_external_repair: slow/failed external services (DNS, the
            network) are expected to be fixed during recovery by forces
            outside the application (restarting DNS, fixing the network).
    """

    preserves_all_state: bool = True
    kills_application_processes: bool = True
    auto_extends_storage: bool = False
    reclaims_leaked_os_resources: bool = False
    expects_external_repair: bool = True

    def condition_clears_on_retry(self, trigger: TriggerKind) -> bool:
        """Whether this recovery system makes ``trigger`` likely to clear on retry.

        Only meaningful for environment-dependent triggers; calling it
        with ``TriggerKind.NONE`` raises ``ValueError`` because
        environment-independent faults have no environmental condition to
        clear.
        """
        if trigger is TriggerKind.NONE:
            raise ValueError("environment-independent faults have no trigger condition")

        if trigger in (TriggerKind.RESOURCE_LEAK,):
            return not self.preserves_all_state
        if trigger is TriggerKind.FILE_DESCRIPTOR_EXHAUSTION:
            return self.reclaims_leaked_os_resources or not self.preserves_all_state
        if trigger is TriggerKind.NETWORK_RESOURCE_EXHAUSTION:
            return self.reclaims_leaked_os_resources or not self.preserves_all_state
        if trigger in (
            TriggerKind.DISK_FULL,
            TriggerKind.FILE_SIZE_LIMIT,
            TriggerKind.DISK_CACHE_FULL,
        ):
            return self.auto_extends_storage
        if trigger in (
            TriggerKind.HARDWARE_REMOVAL,
            TriggerKind.DNS_MISCONFIGURED,
            TriggerKind.CORRUPT_EXTERNAL_STATE,
        ):
            # Requires administrator action; no recovery system fixes these.
            return False
        if trigger is TriggerKind.HOST_CONFIG_CHANGE:
            # The stale identity (e.g. cached display authentication) is
            # application state: preserved -> the mismatch persists;
            # a restart-from-scratch adopts the new name and clears it.
            return not self.preserves_all_state
        if trigger in (TriggerKind.PROCESS_TABLE_FULL, TriggerKind.PORT_IN_USE):
            # A restart-from-scratch necessarily discards the old
            # incarnation's children too, so either effect frees the slots.
            return self.kills_application_processes or not self.preserves_all_state
        if trigger in (
            TriggerKind.DNS_ERROR,
            TriggerKind.DNS_SLOW,
            TriggerKind.NETWORK_SLOW,
        ):
            return self.expects_external_repair
        if trigger in (
            TriggerKind.RACE_CONDITION,
            TriggerKind.SIGNAL_TIMING,
            TriggerKind.WORKLOAD_TIMING,
            TriggerKind.ENTROPY_EXHAUSTION,
            TriggerKind.UNKNOWN_TRANSIENT,
        ):
            # Pure timing: retry draws a fresh interleaving / fresh events.
            return True
        raise ValueError(f"unhandled trigger kind: {trigger!r}")


#: The recovery system the paper assumes throughout Section 5.
PAPER_DEFAULT = RecoveryModel()

#: A restart-from-scratch system that loses application state (not truly
#: generic); clears application-held leaks, so some nontransient faults
#: become survivable.
RESTART_FRESH = RecoveryModel(preserves_all_state=False)

#: An idealised "elastic" system that grows storage and garbage-collects
#: OS resources (Section 6.2's proposed mitigations all deployed).
ELASTIC_ENVIRONMENT = RecoveryModel(
    auto_extends_storage=True,
    reclaims_leaked_os_resources=True,
)
