"""Trigger-evidence extraction from free-form report text.

The paper's authors read the "How To Repeat" field and developer
comments to decide what triggers each fault.  This module mechanises that
reading: an ordered list of trigger patterns (most specific first) is
matched against the report's full text, producing a structured
:class:`~repro.bugdb.model.TriggerEvidence` that the rule classifier can
consume.  Patterns are deliberately generic phrases -- "race condition",
"file descriptor", "full file system" -- the same vocabulary the paper's
per-fault descriptions use.
"""

from __future__ import annotations

import re

from repro.bugdb.enums import TriggerKind
from repro.bugdb.model import BugReport, TriggerEvidence

# Ordered most-specific-first; the first matching pattern wins.
_TRIGGER_PATTERNS: list[tuple[TriggerKind, re.Pattern[str]]] = [
    (
        TriggerKind.RACE_CONDITION,
        re.compile(r"race condition|race between|thread interleav|scheduling of threads"),
    ),
    (
        TriggerKind.SIGNAL_TIMING,
        re.compile(r"masking of (a |the )?signal|signal .*arriv|signal delivery timing"),
    ),
    (
        TriggerKind.DNS_MISCONFIGURED,
        re.compile(r"reverse dns .*not configured|dns .*misconfigured|no reverse dns"),
    ),
    (TriggerKind.DNS_SLOW, re.compile(r"slow (domain name service|dns)|dns .*slow")),
    (
        TriggerKind.DNS_ERROR,
        re.compile(r"(domain name service|dns)( call| lookup)? returns? an error|dns (lookup )?fail"),
    ),
    (TriggerKind.NETWORK_SLOW, re.compile(r"slow network|network .*slow")),
    (
        TriggerKind.NETWORK_RESOURCE_EXHAUSTION,
        re.compile(r"network resource.*exhaust|unknown network resource"),
    ),
    (
        TriggerKind.PROCESS_TABLE_FULL,
        re.compile(r"process table|out of process(es| slots)|slots in the .*process table"),
    ),
    (
        TriggerKind.PORT_IN_USE,
        re.compile(r"hang onto .*ports|ports? (already )?in use|hold(ing)? .*network ports"),
    ),
    (
        TriggerKind.FILE_DESCRIPTOR_EXHAUSTION,
        re.compile(r"file descriptor|out of descriptors|too many open files"),
    ),
    (TriggerKind.DISK_CACHE_FULL, re.compile(r"disk cache .*full|cache .*gets? full")),
    (
        TriggerKind.FILE_SIZE_LIMIT,
        re.compile(r"maximum allowed file size|file size limit|larger than the maximum"),
    ),
    (
        TriggerKind.DISK_FULL,
        re.compile(r"full file ?system|file ?system .*full|disk (is |was )?full|out of disk space|no space left"),
    ),
    (
        TriggerKind.RESOURCE_LEAK,
        re.compile(r"resource leak|leak(s|ing)? .*under (high |peak )?load|unknown .*leak"),
    ),
    (
        TriggerKind.HARDWARE_REMOVAL,
        re.compile(r"pcmcia|card (is |was )?removed|removal of .*(card|device)|device .*removed"),
    ),
    (
        TriggerKind.HOST_CONFIG_CHANGE,
        re.compile(r"hostname .*changed|changed .*hostname|host configuration changed"),
    ),
    (
        TriggerKind.CORRUPT_EXTERNAL_STATE,
        re.compile(r"illegal value in the owner field|illegal .*(field|value) in .*file|corrupt(ed)? .*(file|entry) on disk"),
    ),
    (TriggerKind.ENTROPY_EXHAUSTION, re.compile(r"/dev/random|entropy|lack of events .*random")),
    (
        TriggerKind.WORKLOAD_TIMING,
        re.compile(r"press(es|ed)? stop|stops? the (browser|download)|midst of a .*download|exact timing of the request"),
    ),
    (
        TriggerKind.UNKNOWN_TRANSIENT,
        re.compile(r"works (fine )?on (a )?retry|succeed(s|ed)? (when|on) retr|went away on retry"),
    ),
]

_NOT_REPRODUCIBLE = re.compile(
    r"(could|can|cannot|couldn't|can't) ?(not)? (repeat|reproduce|duplicate)"
)


def match_trigger(text: str) -> TriggerKind:
    """Return the first trigger kind whose pattern matches ``text``.

    Matching is case-insensitive; ``TriggerKind.NONE`` when nothing matches.
    """
    lowered = text.lower()
    for trigger, pattern in _TRIGGER_PATTERNS:
        if pattern.search(lowered):
            return trigger
    return TriggerKind.NONE


def match_all_triggers(text: str) -> list[TriggerKind]:
    """All trigger kinds whose patterns match ``text``, in priority order.

    The classifier uses only the first match; this function exposes the
    full set so corpus authors and auditors can detect *ambiguous* report
    texts -- texts that implicate more than one environmental condition
    and therefore depend on the pattern priority.  The paper calls its
    own boundary judgments "subjective"; this is the mechanised version
    of double-checking them.
    """
    lowered = text.lower()
    return [trigger for trigger, pattern in _TRIGGER_PATTERNS if pattern.search(lowered)]


def ambiguity_report(report: BugReport) -> list[TriggerKind]:
    """Trigger kinds beyond the first that also match a report's text.

    An empty list means the text is unambiguous (zero or one pattern
    fires).
    """
    return match_all_triggers(report.full_text)[1:]


def extract_evidence(report: BugReport) -> TriggerEvidence:
    """Extract structured trigger evidence from a report's free text.

    The extraction reads the same fields the paper's authors did: the
    synopsis, description, "How To Repeat" field, fix summary, and
    developer comments.

    Returns:
        A fresh :class:`~repro.bugdb.model.TriggerEvidence`; the report is
        not modified.
    """
    text = report.full_text
    lowered = text.lower()
    trigger = match_trigger(text)
    reproducible = not _NOT_REPRODUCIBLE.search(lowered)
    # "The developers ... provide information on ... whether they could
    # repeat the failure": failure to repeat with no named condition is
    # itself evidence of environmental dependence.
    if trigger is TriggerKind.NONE and not reproducible:
        trigger = TriggerKind.UNKNOWN_TRANSIENT
    workload_timing = trigger is TriggerKind.WORKLOAD_TIMING
    return TriggerEvidence(
        trigger=trigger,
        reproducible_on_developer_machine=reproducible,
        workload_dependent_timing=workload_timing,
        resource=_resource_name(trigger),
        notes=report.synopsis,
    )


def _resource_name(trigger: TriggerKind) -> str:
    names = {
        TriggerKind.FILE_DESCRIPTOR_EXHAUSTION: "file_descriptors",
        TriggerKind.PROCESS_TABLE_FULL: "process_slots",
        TriggerKind.DISK_FULL: "disk_space",
        TriggerKind.DISK_CACHE_FULL: "disk_cache",
        TriggerKind.FILE_SIZE_LIMIT: "max_file_size",
        TriggerKind.PORT_IN_USE: "network_ports",
        TriggerKind.ENTROPY_EXHAUSTION: "entropy",
        TriggerKind.NETWORK_RESOURCE_EXHAUSTION: "network_buffers",
        TriggerKind.RESOURCE_LEAK: "application_memory",
    }
    return names.get(trigger, "")
