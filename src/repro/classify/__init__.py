"""Fault taxonomy and classification (the paper's core contribution).

The paper classifies each fault by its dependence on the *operating
environment* (Section 3):

* **environment-independent** -- the fault fires for a given workload
  regardless of environment; completely deterministic;
* **environment-dependent-nontransient** -- an environmental condition
  triggers the fault and is likely to *persist* on retry;
* **environment-dependent-transient** -- an environmental condition
  triggers the fault and is likely to be *fixed* on retry.

The transient/nontransient boundary "depends upon the recovery system in
place" (Section 5.4); :class:`~repro.classify.recovery_model.RecoveryModel`
makes that dependence explicit and parameterisable.  Two classifiers are
provided: a rule classifier over structured trigger evidence
(:mod:`repro.classify.rules`) and a text pipeline that first extracts
evidence from free-form report text (:mod:`repro.classify.text`).
"""

from repro.bugdb.enums import FaultClass, TriggerKind
from repro.classify.evidence import extract_evidence
from repro.classify.recovery_model import RecoveryModel
from repro.classify.rules import RuleClassifier, Classification
from repro.classify.text import TextClassifier
from repro.classify.evaluation import ConfusionMatrix, evaluate_classifier

__all__ = [
    "Classification",
    "ConfusionMatrix",
    "FaultClass",
    "RecoveryModel",
    "RuleClassifier",
    "TextClassifier",
    "TriggerKind",
    "evaluate_classifier",
    "extract_evidence",
]
