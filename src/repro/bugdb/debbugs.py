"""debbugs report-log format (GNOME's ``bugs.gnome.org``).

The GNOME bug tracker of the study period ran debbugs (the Debian bug
system).  A report is an initial mail whose body starts with
``Package:`` / ``Version:`` / ``Severity:`` pseudo-headers, followed by
follow-up mails, and control messages (``close``, ``merge``) that change
report state.  This module renders and parses a simplified but faithful
log format: one ``Report #NNN`` block per bug with its mails and control
records.
"""

from __future__ import annotations

import datetime as _dt
import re
from typing import Iterable

from repro.bugdb.enums import Application, Resolution, Severity, Status, Symptom
from repro.bugdb.model import BugReport, Comment
from repro.errors import ParseError

_REPORT_HEADER = re.compile(r"^Report #(?P<id>[\w.-]+) -- (?P<synopsis>.*)$")
_MAIL_HEADER = re.compile(
    r"^Message from (?P<author>.+?) on (?P<date>\d{4}-\d{2}-\d{2}):$"
)
_CONTROL = re.compile(r"^Control: (?P<command>\w+)(?: (?P<argument>.*))?$")

_SEVERITY_TO_DEBBUGS = {
    Severity.ENHANCEMENT: "wishlist",
    Severity.NON_CRITICAL: "normal",
    Severity.SERIOUS: "important",
    Severity.CRITICAL: "grave",
}
_DEBBUGS_TO_SEVERITY = {text: sev for sev, text in _SEVERITY_TO_DEBBUGS.items()}

_SYMPTOM_TO_TAG = {
    Symptom.CRASH: "crash",
    Symptom.HANG: "hang",
    Symptom.ERROR_RETURN: "error",
    Symptom.SECURITY: "security",
    Symptom.RESOURCE_LEAK: "leak",
    Symptom.DATA_CORRUPTION: "corruption",
}
_TAG_TO_SYMPTOM = {tag: sym for sym, tag in _SYMPTOM_TO_TAG.items()}


def render_report(report: BugReport) -> str:
    """Render one report as a debbugs log block."""
    lines = [
        f"Report #{report.report_id} -- {report.synopsis}",
        "",
        f"Message from {report.reporter} on {report.date.isoformat()}:",
        f"  Package: {report.component}",
        f"  Version: {report.version}",
        f"  Severity: {_SEVERITY_TO_DEBBUGS[report.severity]}",
    ]
    if report.symptom is not None:
        lines.append(f"  Tags: {_SYMPTOM_TO_TAG[report.symptom]}")
    if not report.is_production_version:
        lines.append("  Tags: unreleased")
    if report.environment:
        lines.append(f"  Environment: {_oneline(report.environment)}")
    lines.append("")
    lines.extend("  " + line for line in report.description.splitlines())
    if report.how_to_repeat:
        lines.append("")
        lines.append("  To reproduce:")
        lines.extend("  " + line for line in report.how_to_repeat.splitlines())
    for comment in report.comments:
        lines.append("")
        lines.append(f"Message from {comment.author} on {comment.date.isoformat()}:")
        lines.extend("  " + line for line in comment.text.splitlines())
    if report.duplicate_of:
        lines.append("")
        lines.append(f"Control: merge {report.duplicate_of}")
    if report.status is Status.CLOSED:
        lines.append("")
        lines.append(f"Control: close {report.resolution.value}")
        if report.fix_summary:
            lines.extend("  " + line for line in report.fix_summary.splitlines())
    return "\n".join(lines)


def render_archive(reports: Iterable[BugReport]) -> str:
    """Render many reports as one debbugs log archive."""
    return "\n\n\x0c\n".join(render_report(report) for report in reports) + "\n"


def split_archive(text: str) -> list[str]:
    """Split a debbugs log into per-report chunks without parsing them.

    Record boundaries are the form-feed separators, so the split is one
    cheap string scan; the chunks can then be parsed independently (in
    parallel shards, by :mod:`repro.pipeline`).
    """
    return [
        stripped
        for block in text.split("\x0c")
        if (stripped := block.strip("\n")).strip()
    ]


def parse_archive(text: str, *, source: str = "debbugs") -> list[BugReport]:
    """Parse a debbugs log archive.

    Raises:
        ParseError: on malformed blocks.
    """
    return [parse_report(block, source=source) for block in split_archive(text)]


def parse_report(text: str, *, source: str = "debbugs") -> BugReport:
    """Parse one debbugs log block.

    Raises:
        ParseError: if the header or initial pseudo-headers are missing.
    """
    lines = text.splitlines()
    if not lines:
        raise ParseError("empty report block", source=source)
    header = _REPORT_HEADER.match(lines[0])
    if header is None:
        raise ParseError(f"bad report header: {lines[0]!r}", source=source, line_number=1)

    mails = _split_mails(lines[1:], source=source)
    if not mails:
        raise ParseError("report has no initial message", source=source)

    first = mails[0]
    pseudo, body = _split_pseudo_headers(first.text)
    for required in ("Package", "Version", "Severity"):
        if required not in pseudo:
            raise ParseError(f"missing pseudo-header {required}:", source=source)

    severity_text = pseudo["Severity"]
    try:
        severity = _DEBBUGS_TO_SEVERITY[severity_text]
    except KeyError:
        raise ParseError(f"unknown severity {severity_text!r}", source=source) from None

    tags = pseudo.get("Tags", "").split()
    symptom = next((_TAG_TO_SYMPTOM[tag] for tag in tags if tag in _TAG_TO_SYMPTOM), None)

    description, how_to_repeat = _split_repro(body)

    status = Status.OPEN
    resolution = Resolution.UNRESOLVED
    duplicate_of: str | None = None
    fix_summary = ""
    comments: list[Comment] = []
    for mail in mails[1:]:
        comments.append(mail)
    for command, argument, trailing in _controls(lines):
        if command == "merge":
            duplicate_of = argument
        elif command == "close":
            status = Status.CLOSED
            try:
                resolution = Resolution(argument)
            except ValueError:
                raise ParseError(f"unknown resolution {argument!r}", source=source) from None
            fix_summary = trailing

    return BugReport(
        report_id=header.group("id"),
        application=Application.GNOME,
        component=pseudo["Package"],
        version=pseudo["Version"],
        date=first.date,
        reporter=first.author,
        synopsis=header.group("synopsis"),
        severity=severity,
        status=status,
        resolution=resolution,
        symptom=symptom,
        description=description,
        how_to_repeat=how_to_repeat,
        environment=pseudo.get("Environment", ""),
        comments=comments,
        fix_summary=fix_summary,
        duplicate_of=duplicate_of,
        is_production_version="unreleased" not in tags,
    )


def _oneline(text: str) -> str:
    return " ".join(text.split())


def _split_mails(lines: list[str], *, source: str) -> list[Comment]:
    mails: list[Comment] = []
    author = ""
    date: _dt.date | None = None
    body: list[str] = []

    def flush() -> None:
        if date is not None:
            text = "\n".join(line[2:] if line.startswith("  ") else line for line in body)
            mails.append(Comment(author=author, date=date, text=text.strip("\n")))

    for line in lines:
        match = _MAIL_HEADER.match(line)
        if match:
            flush()
            author = match.group("author")
            try:
                date = _dt.date.fromisoformat(match.group("date"))
            except ValueError as exc:
                raise ParseError(f"bad message date: {exc}", source=source) from exc
            body = []
        elif _CONTROL.match(line):
            flush()
            date = None
            body = []
        elif date is not None:
            body.append(line)
    flush()
    return mails


def _split_pseudo_headers(body: str) -> tuple[dict[str, str], str]:
    pseudo: dict[str, str] = {}
    remaining: list[str] = []
    in_headers = True
    for line in body.splitlines():
        stripped = line.strip()
        if in_headers and ":" in stripped:
            name, _, value = stripped.partition(":")
            if name in ("Package", "Version", "Severity", "Tags", "Environment"):
                if name == "Tags" and "Tags" in pseudo:
                    pseudo["Tags"] += " " + value.strip()
                else:
                    pseudo[name] = value.strip()
                continue
        if stripped or remaining:
            in_headers = False
            remaining.append(line)
    return pseudo, "\n".join(remaining).strip("\n")


def _split_repro(body: str) -> tuple[str, str]:
    marker = "To reproduce:"
    if marker in body:
        description, _, repro = body.partition(marker)
        return description.strip("\n"), repro.strip("\n")
    return body, ""


def _controls(lines: list[str]) -> list[tuple[str, str, str]]:
    found: list[tuple[str, str, str]] = []
    for index, line in enumerate(lines):
        match = _CONTROL.match(line)
        if match:
            trailing_lines = []
            for follow in lines[index + 1:]:
                if _CONTROL.match(follow) or _MAIL_HEADER.match(follow):
                    break
                trailing_lines.append(follow[2:] if follow.startswith("  ") else follow)
            trailing = "\n".join(trailing_lines).strip("\n")
            found.append((match.group("command"), match.group("argument") or "", trailing))
    return found
