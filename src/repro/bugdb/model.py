"""Structured bug-report records.

The fields mirror the information the paper extracts from on-line bug
archives (Section 4): symptoms, results of the fault, the operating
environment and workload that induce it, the "How To Repeat" field, and
developer comments describing the fix and whether the failure could be
repeated on the developers' machines.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
from typing import Iterable

from repro.bugdb.enums import (
    Application,
    Resolution,
    Severity,
    Status,
    Symptom,
    TriggerKind,
)


@dataclasses.dataclass(frozen=True)
class Comment:
    """A developer or reporter comment attached to a bug report.

    Attributes:
        author: email-ish author identifier.
        date: when the comment was posted.
        text: the comment body.
    """

    author: str
    date: _dt.date
    text: str


@dataclasses.dataclass(frozen=True)
class TriggerEvidence:
    """Structured evidence about what triggers a fault.

    This captures, in machine-readable form, what the paper's authors read
    out of the "How To Repeat" field and developer comments: whether the
    trigger lies in the operating environment, which environmental
    condition it is, and whether developers could reproduce the failure
    deterministically.

    Attributes:
        trigger: the environmental condition implicated (``TriggerKind.NONE``
            when the trigger lies entirely inside the application).
        reproducible_on_developer_machine: whether developers reported the
            failure repeats deterministically given the workload.
        workload_dependent_timing: whether the trigger involves the exact
            timing of workload requests (e.g. the user pressing stop
            mid-download), which the paper treats as part of the
            environment.
        resource: optional name of the exhausted/implicated resource.
        notes: free-text summary of the trigger, quoted from the report.
    """

    trigger: TriggerKind = TriggerKind.NONE
    reproducible_on_developer_machine: bool = True
    workload_dependent_timing: bool = False
    resource: str = ""
    notes: str = ""

    @property
    def environment_dependent(self) -> bool:
        """Whether any operating-environment condition is implicated."""
        return self.trigger is not TriggerKind.NONE


@dataclasses.dataclass
class BugReport:
    """One bug report from an on-line archive.

    Attributes:
        report_id: tracker-assigned identifier, unique within an application
            archive (e.g. ``"PR#3487"`` for Apache GNATS).
        application: which studied application the report belongs to.
        component: sub-component (e.g. ``"mod_cgi"``, ``"gnumeric"``).
        version: release the fault was reported against (e.g. ``"1.3.4"``).
        date: report submission date.
        reporter: reporter identifier.
        synopsis: one-line summary.
        severity: reporter/triager-assigned severity.
        status: lifecycle state.
        resolution: resolution if closed.
        symptom: high-impact symptom category, if any.
        description: full free-text description of the failure.
        how_to_repeat: the "How To Repeat" field -- the key field used for
            classification in the paper.
        environment: reporter-supplied operating-environment string
            (OS, hardware, peer software).
        comments: developer/reporter discussion, including fix information.
        fix_summary: how the underlying bug was fixed, when known.
        duplicate_of: report_id of the primary report if this is a duplicate.
        evidence: structured trigger evidence (curated corpus only; parsed
            archives start with ``None`` until evidence extraction runs).
        is_production_version: whether the version is a production (stable)
            release, as opposed to alpha/beta/dev snapshots.
    """

    report_id: str
    application: Application
    component: str
    version: str
    date: _dt.date
    reporter: str
    synopsis: str
    severity: Severity
    status: Status = Status.OPEN
    resolution: Resolution = Resolution.UNRESOLVED
    symptom: Symptom | None = None
    description: str = ""
    how_to_repeat: str = ""
    environment: str = ""
    comments: list[Comment] = dataclasses.field(default_factory=list)
    fix_summary: str = ""
    duplicate_of: str | None = None
    evidence: TriggerEvidence | None = None
    is_production_version: bool = True

    def __post_init__(self) -> None:
        if not self.report_id:
            raise ValueError("report_id must be non-empty")
        if not self.version:
            raise ValueError("version must be non-empty")

    @property
    def is_high_impact(self) -> bool:
        """Whether the report describes a high-impact fault (Section 4)."""
        return self.symptom is not None

    @property
    def is_duplicate(self) -> bool:
        """Whether this report duplicates another."""
        return self.duplicate_of is not None

    @property
    def full_text(self) -> str:
        """All free text of the report, concatenated for keyword search."""
        parts = [self.synopsis, self.description, self.how_to_repeat, self.fix_summary]
        parts.extend(comment.text for comment in self.comments)
        return "\n".join(part for part in parts if part)

    def add_comment(self, comment: Comment) -> None:
        """Append a comment to the discussion."""
        self.comments.append(comment)

    def matches_keywords(self, keywords: Iterable[str]) -> bool:
        """Whether any keyword appears (case-insensitively) in the report text."""
        text = self.full_text.lower()
        return any(keyword.lower() in text for keyword in keywords)
