"""mbox mailing-list archive format (MySQL's geocrawler archives).

MySQL fault data in the paper came from the ``mysql`` mailing-list
archives, not from a structured tracker: "we use all the messages from
the archives that matched one of the following keywords: 'crash',
'segmentation', 'race', and 'died'" (Section 4).  This module provides a
:class:`MailMessage` record and an mbox writer/parser.  Turning message
threads into :class:`~repro.bugdb.model.BugReport` records is mining
logic and lives in :mod:`repro.mining.mysql`.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
import re
from typing import Iterable

from repro.errors import ParseError

_MONTHS = {
    "jan": 1, "feb": 2, "mar": 3, "apr": 4, "may": 5, "jun": 6,
    "jul": 7, "aug": 8, "sep": 9, "oct": 10, "nov": 11, "dec": 12,
}


def parse_mail_date(value: str) -> _dt.date:
    """Parse a Date header: ISO (1999-06-10) or RFC-822 style.

    Accepts the common 1999-era forms ``Thu, 10 Jun 1999 12:01:02 +0200``
    and ``10 Jun 1999``; time-of-day and zone are ignored (the study
    works at day granularity).

    Two-digit years are accepted only in the 70-99 window (1970-1999, the
    archives' era).  00-69 would silently mean 1900-1969 under the old
    pivot while almost certainly being 2000-era mail, so they are
    rejected instead of mis-filed.

    Raises:
        ValueError: when neither form parses, or a two-digit year falls
            outside the 70-99 window.
    """
    text = value.strip()
    try:
        return _dt.date.fromisoformat(text)
    except ValueError:
        pass
    if "," in text:
        text = text.split(",", 1)[1].strip()
    parts = text.split()
    if len(parts) >= 3:
        day_text, month_text, year_text = parts[0], parts[1], parts[2]
        month = _MONTHS.get(month_text[:3].lower())
        if month is not None:
            try:
                year = int(year_text)
                day = int(day_text)
            except ValueError:
                raise ValueError(f"unparseable mail date: {value!r}") from None
            if year < 100:
                if not 70 <= year <= 99:
                    raise ValueError(
                        f"ambiguous two-digit year {year:02d} "
                        f"(outside the 1970-1999 window) in mail date: {value!r}"
                    )
                year += 1900
            try:
                return _dt.date(year, month, day)
            except ValueError:
                raise ValueError(f"unparseable mail date: {value!r}") from None
    raise ValueError(f"unparseable mail date: {value!r}")


@dataclasses.dataclass(frozen=True)
class MailMessage:
    """One message in a mailing-list archive.

    Attributes:
        message_id: globally unique message identifier.
        sender: ``From:`` header value.
        date: message date.
        subject: ``Subject:`` header value.
        body: message body text.
        in_reply_to: message_id of the parent message, when a reply.
    """

    message_id: str
    sender: str
    date: _dt.date
    subject: str
    body: str
    in_reply_to: str | None = None

    @property
    def normalized_subject(self) -> str:
        """Subject with any number of leading ``Re:`` prefixes stripped."""
        subject = self.subject.strip()
        lowered = subject.lower()
        while lowered.startswith("re:"):
            subject = subject[3:].strip()
            lowered = subject.lower()
        return subject

    @property
    def is_reply(self) -> bool:
        """Whether this message replies to another."""
        return self.in_reply_to is not None or self.subject.lower().lstrip().startswith("re:")


def render_message(message: MailMessage) -> str:
    """Render one message in mbox form (with ``From `` separator line)."""
    lines = [
        f"From {message.sender} {message.date.isoformat()}",
        f"Message-ID: <{message.message_id}>",
        f"From: {message.sender}",
        f"Date: {message.date.isoformat()}",
        f"Subject: {message.subject}",
    ]
    if message.in_reply_to:
        lines.append(f"In-Reply-To: <{message.in_reply_to}>")
    lines.append("")
    for line in message.body.splitlines():
        # mbox "From-stuffing": escape body lines that look like separators.
        lines.append(">" + line if line.startswith("From ") else line)
    return "\n".join(lines)


def render_archive(messages: Iterable[MailMessage]) -> str:
    """Render many messages as one mbox archive."""
    return "\n\n".join(render_message(message) for message in messages) + "\n"


# A message starts at any line beginning "From " (the mbox separator);
# true body lines that look like separators are From-stuffed on render.
_MESSAGE_BOUNDARY = re.compile(r"^From ", re.MULTILINE)


def split_archive(text: str, *, source: str = "mbox") -> list[str]:
    """Split an mbox archive into per-message chunks without parsing them.

    The record-boundary scan is a single regex pass, so large archives
    can be cut into chunks cheaply and the chunks parsed independently
    (in parallel shards, by :mod:`repro.pipeline`).  Concatenating the
    chunks reproduces the archive text exactly from the first separator.

    Raises:
        ParseError: on non-blank content before the first separator.
    """
    boundaries = [match.start() for match in _MESSAGE_BOUNDARY.finditer(text)]
    preamble = text[: boundaries[0]] if boundaries else text
    for line in preamble.splitlines():
        if line.strip():
            raise ParseError(f"content before first separator: {line!r}", source=source)
    if not boundaries:
        return []
    return [
        text[start:end]
        for start, end in zip(boundaries, boundaries[1:] + [len(text)])
    ]


def parse_message(chunk: str, *, source: str = "mbox") -> MailMessage:
    """Parse one message chunk (as produced by :func:`split_archive`).

    Raises:
        ParseError: on missing required headers.
    """
    return _parse_message(chunk.splitlines(), source=source)


def parse_archive(text: str, *, source: str = "mbox") -> list[MailMessage]:
    """Parse an mbox archive into messages.

    Raises:
        ParseError: on messages missing required headers.
    """
    return [
        parse_message(chunk, source=source)
        for chunk in split_archive(text, source=source)
    ]


def _parse_message(lines: list[str], *, source: str) -> MailMessage:
    headers: dict[str, str] = {}
    body_start = len(lines)
    for index, line in enumerate(lines[1:], start=1):
        if not line.strip():
            body_start = index + 1
            break
        name, separator, value = line.partition(":")
        if not separator:
            raise ParseError(f"malformed header line: {line!r}", source=source)
        headers[name.strip().lower()] = value.strip()

    def require(name: str) -> str:
        try:
            return headers[name]
        except KeyError:
            raise ParseError(f"missing header {name}:", source=source) from None

    try:
        date = parse_mail_date(require("date"))
    except ValueError as exc:
        raise ParseError(f"bad Date header: {exc}", source=source) from exc

    body_lines = [
        line[1:] if line.startswith(">From ") else line
        for line in lines[body_start:]
    ]
    in_reply_to = headers.get("in-reply-to")
    return MailMessage(
        message_id=_strip_brackets(require("message-id")),
        sender=require("from"),
        date=date,
        subject=require("subject"),
        body="\n".join(body_lines).strip("\n"),
        in_reply_to=_strip_brackets(in_reply_to) if in_reply_to else None,
    )


def _strip_brackets(value: str) -> str:
    value = value.strip()
    if value.startswith("<") and value.endswith(">"):
        return value[1:-1]
    return value
