"""GNATS problem-report format (Apache's ``bugs.apache.org``).

The Apache bug database of the study period was a GNATS installation.
A problem report (PR) is a flat text record of ``>Field:`` headers
followed by multi-line sections.  This module renders
:class:`~repro.bugdb.model.BugReport` records into that format and parses
them back, including the audit trail that carries developer comments and
the eventual fix.

The round-trip is lossy by design: structured
:class:`~repro.bugdb.model.TriggerEvidence` is a curated-corpus artifact
and is *not* serialized -- the study pipeline must recover it from the
free text, exactly as the paper's authors did.
"""

from __future__ import annotations

import datetime as _dt
import re
from typing import Iterable

from repro.bugdb.enums import Application, Resolution, Severity, Status, Symptom
from repro.bugdb.model import BugReport, Comment
from repro.errors import ParseError

_PR_SEPARATOR = "=" * 72

_SEVERITY_TO_GNATS = {
    Severity.ENHANCEMENT: "enhancement",
    Severity.NON_CRITICAL: "non-critical",
    Severity.SERIOUS: "serious",
    Severity.CRITICAL: "critical",
}
_GNATS_TO_SEVERITY = {text: sev for sev, text in _SEVERITY_TO_GNATS.items()}

_STATUS_TO_GNATS = {
    Status.OPEN: "open",
    Status.ANALYZED: "analyzed",
    Status.FEEDBACK: "feedback",
    Status.SUSPENDED: "suspended",
    Status.CLOSED: "closed",
}
_GNATS_TO_STATUS = {text: status for status, text in _STATUS_TO_GNATS.items()}

_RESOLUTION_TO_GNATS = {
    Resolution.UNRESOLVED: "unresolved",
    Resolution.FIXED: "fixed",
    Resolution.DUPLICATE: "duplicate",
    Resolution.WORKS_FOR_ME: "works-for-me",
    Resolution.WONT_FIX: "wont-fix",
    Resolution.INVALID: "invalid",
}
_GNATS_TO_RESOLUTION = {text: res for res, text in _RESOLUTION_TO_GNATS.items()}

_SYMPTOM_TO_CLASS = {
    None: "sw-bug",
    Symptom.CRASH: "sw-bug/crash",
    Symptom.HANG: "sw-bug/hang",
    Symptom.ERROR_RETURN: "sw-bug/error",
    Symptom.SECURITY: "sw-bug/security",
    Symptom.RESOURCE_LEAK: "sw-bug/leak",
    Symptom.DATA_CORRUPTION: "sw-bug/corruption",
}
_CLASS_TO_SYMPTOM = {text: sym for sym, text in _SYMPTOM_TO_CLASS.items()}

_COMMENT_HEADER = re.compile(
    r"^From: (?P<author>.+?) \((?P<date>\d{4}-\d{2}-\d{2})\)$"
)


def render_pr(report: BugReport) -> str:
    """Render one report as a GNATS problem report."""
    lines = [
        f">Number:         {report.report_id}",
        f">Category:       {report.component}",
        f">Synopsis:       {report.synopsis}",
        f">Confidential:   no",
        f">Severity:       {_SEVERITY_TO_GNATS[report.severity]}",
        f">Priority:       medium",
        f">Responsible:    apache",
        f">State:          {_STATUS_TO_GNATS[report.status]}",
        f">Resolution:     {_RESOLUTION_TO_GNATS[report.resolution]}",
        f">Class:          {_SYMPTOM_TO_CLASS[report.symptom]}",
        f">Submitter-Id:   apache",
        f">Arrival-Date:   {report.date.isoformat()}",
        f">Originator:     {report.reporter}",
        f">Release:        {report.version}",
        f">Production:     {'yes' if report.is_production_version else 'no'}",
    ]
    if report.duplicate_of:
        lines.append(f">Duplicate-Of:   {report.duplicate_of}")
    lines.append(">Environment:")
    lines.extend(_indent(report.environment))
    lines.append(">Description:")
    lines.extend(_indent(report.description))
    lines.append(">How-To-Repeat:")
    lines.extend(_indent(report.how_to_repeat))
    lines.append(">Fix:")
    lines.extend(_indent(report.fix_summary))
    lines.append(">Audit-Trail:")
    for comment in report.comments:
        lines.append(f"From: {comment.author} ({comment.date.isoformat()})")
        lines.extend(_indent(comment.text))
    lines.append(">Unformatted:")
    return "\n".join(lines)


def render_archive(reports: Iterable[BugReport]) -> str:
    """Render many reports as one GNATS archive dump."""
    blocks = [render_pr(report) for report in reports]
    return f"\n{_PR_SEPARATOR}\n".join(blocks) + "\n"


def split_archive(text: str) -> list[str]:
    """Split a GNATS dump into per-PR chunks without parsing them.

    Record boundaries are the ``=`` separator lines, so the split is one
    cheap string scan; the chunks can then be parsed independently (in
    parallel shards, by :mod:`repro.pipeline`).
    """
    return [
        stripped
        for block in text.split(_PR_SEPARATOR)
        if (stripped := block.strip("\n")).strip()
    ]


def parse_archive(text: str, *, source: str = "gnats") -> list[BugReport]:
    """Parse a GNATS archive dump into reports.

    Raises:
        ParseError: on malformed records.
    """
    return [parse_pr(block, source=source) for block in split_archive(text)]


def parse_pr(text: str, *, source: str = "gnats") -> BugReport:
    """Parse one GNATS problem report.

    Raises:
        ParseError: if required fields are missing or malformed.
    """
    fields: dict[str, str] = {}
    sections: dict[str, list[str]] = {}
    current_section: str | None = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.startswith(">"):
            name, _, rest = line[1:].partition(":")
            name = name.strip()
            rest = rest.strip()
            if name in ("Environment", "Description", "How-To-Repeat", "Fix",
                        "Audit-Trail", "Unformatted"):
                current_section = name
                sections[name] = []
            else:
                current_section = None
                fields[name] = rest
        elif current_section is not None:
            sections[current_section].append(line)
        elif line.strip():
            raise ParseError(
                f"content outside any section: {line!r}",
                source=source,
                line_number=lineno,
            )

    def require(name: str) -> str:
        try:
            return fields[name]
        except KeyError:
            raise ParseError(f"missing required field >{name}:", source=source) from None

    try:
        severity = _GNATS_TO_SEVERITY[require("Severity")]
        status = _GNATS_TO_STATUS[require("State")]
        resolution = _GNATS_TO_RESOLUTION[fields.get("Resolution", "unresolved")]
        symptom = _CLASS_TO_SYMPTOM[fields.get("Class", "sw-bug")]
        date = _dt.date.fromisoformat(require("Arrival-Date"))
    except (KeyError, ValueError) as exc:
        raise ParseError(f"bad field value: {exc}", source=source) from exc

    return BugReport(
        report_id=require("Number"),
        application=Application.APACHE,
        component=require("Category"),
        version=require("Release"),
        date=date,
        reporter=fields.get("Originator", ""),
        synopsis=require("Synopsis"),
        severity=severity,
        status=status,
        resolution=resolution,
        symptom=symptom,
        description=_dedent(sections.get("Description", [])),
        how_to_repeat=_dedent(sections.get("How-To-Repeat", [])),
        environment=_dedent(sections.get("Environment", [])),
        comments=_parse_audit_trail(sections.get("Audit-Trail", []), source=source),
        fix_summary=_dedent(sections.get("Fix", [])),
        duplicate_of=fields.get("Duplicate-Of") or None,
        is_production_version=fields.get("Production", "yes") == "yes",
    )


def _indent(text: str) -> list[str]:
    if not text:
        return []
    return ["  " + line for line in text.splitlines()]


def _dedent(lines: list[str]) -> str:
    stripped = [line[2:] if line.startswith("  ") else line for line in lines]
    return "\n".join(stripped).strip("\n")


def _parse_audit_trail(lines: list[str], *, source: str) -> list[Comment]:
    comments: list[Comment] = []
    author = ""
    date: _dt.date | None = None
    body: list[str] = []

    def flush() -> None:
        if date is not None:
            comments.append(Comment(author=author, date=date, text=_dedent(body)))

    for line in lines:
        match = _COMMENT_HEADER.match(line)
        if match:
            flush()
            author = match.group("author")
            try:
                date = _dt.date.fromisoformat(match.group("date"))
            except ValueError as exc:
                raise ParseError(f"bad audit-trail date: {exc}", source=source) from exc
            body = []
        else:
            body.append(line)
    flush()
    return comments
