"""Bug-report data model, databases, and archive formats.

This package is the substrate the fault study runs on: a structured
:class:`~repro.bugdb.model.BugReport` record matching the fields the paper
relies on (severity, version, symptoms, the "How To Repeat" field,
developer comments, fix information), an indexed in-memory
:class:`~repro.bugdb.database.BugDatabase` with a small query engine, and
writers/parsers for the three on-line archive formats the paper mined:

* GNATS-style bug dumps (Apache, ``bugs.apache.org``),
* debbugs-style report logs (GNOME, ``bugs.gnome.org``),
* RFC-822 mbox mailing-list archives (MySQL, geocrawler archives).
"""

from repro.bugdb.enums import (
    Application,
    FaultClass,
    Resolution,
    Severity,
    Status,
    Symptom,
    TriggerKind,
)
from repro.bugdb.model import BugReport, Comment, TriggerEvidence
from repro.bugdb.database import BugDatabase
from repro.bugdb.query import Query
from repro.bugdb.textindex import TextIndex
from repro.bugdb.segments import (
    CompactionStats,
    SegmentedTextIndex,
    SegmentInfo,
    segment_from_index,
    segmented_equal_to_monolithic,
)
from repro.bugdb.jsonstore import dump_database, load_database

__all__ = [
    "CompactionStats",
    "SegmentInfo",
    "SegmentedTextIndex",
    "segment_from_index",
    "segmented_equal_to_monolithic",
    "TextIndex",
    "dump_database",
    "load_database",
    "Application",
    "BugDatabase",
    "BugReport",
    "Comment",
    "FaultClass",
    "Query",
    "Resolution",
    "Severity",
    "Status",
    "Symptom",
    "TriggerEvidence",
    "TriggerKind",
]
